"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks the ``wheel`` package needed
for PEP 660 editable wheels (pip falls back to the legacy develop install
via this file with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
