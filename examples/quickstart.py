"""Quickstart: complete fault coverage for a scan circuit in ~20 lines.

Loads a benchmark circuit, classifies its faults, and runs the paper's
flow: try (L_A, L_B, N) combinations in increasing cost order until the
randomly-inserted limited scan operations cover every detectable fault.

Run:  python examples/quickstart.py [circuit-name]
"""

import sys

from repro import LimitedScanBist, load_circuit


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s208"
    circuit = load_circuit(name)
    print(f"circuit: {circuit.name}  (pi={circuit.num_inputs}, "
          f"po={circuit.num_outputs}, ff={circuit.num_state_vars}, "
          f"gates={circuit.num_gates})")

    bist = LimitedScanBist(circuit)
    print(f"fault classification: {bist.classification.summary()}")

    report = bist.first_complete(max_combos=8)
    result = report.result
    print(f"\nfirst complete combination: LA,LB,N = {report.combo.label()} "
          f"(tried {report.combos_tried})")
    print(f"  TS0 alone:        {result.det_initial}/{result.num_targets} "
          f"faults in {result.ncyc0} cycles")
    print(f"  + limited scan:   {result.det_total}/{result.num_targets} "
          f"faults in {result.ncyc_total} cycles "
          f"({result.app} stored (I, D1) pairs)")
    if result.ls_average is not None:
        print(f"  ls = {result.ls_average:.2f}  (a limited scan every "
              f"{1 / result.ls_average:.1f} time units on average)")
    print(f"  coverage: {100 * result.fault_coverage:.2f}%"
          f" ({'complete' if result.complete else 'incomplete'})")

    print("\nselected (I, D1) pairs:")
    for pair in result.pairs:
        print(f"  I={pair.iteration:<3} D1={pair.d1:<3} "
              f"-> +{pair.newly_detected} faults, {pair.nsh} shift cycles")


if __name__ == "__main__":
    main()
