"""The paper's Section 2 worked example on the real s27 (Tables 1 & 2).

Simulates the test tau = (SI, T) with SI = 001 and
T = (0111, 1001, 0111, 1001, 0100), finds a fault that the plain test
misses, then inserts a single-bit limited scan operation at time unit 3
and shows the fault being detected -- including the timing-accurate view
where the shift occupies its own clock cycle and delays the vector.

Run:  python examples/s27_walkthrough.py
"""

from repro.experiments import table1


def main() -> None:
    result = table1.run()
    print(result.render())
    print()
    if result.fault is not None:
        print(f"=> fault {result.fault} is UNDETECTED by the plain test")
        print("   (identical outputs and final states), but DETECTED once")
        print("   the state is shifted by one position at time unit 3.")


if __name__ == "__main__":
    main()
