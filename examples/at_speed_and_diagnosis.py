"""At-speed transition-fault testing, MISR compaction, and diagnosis.

Three extensions layered on the paper's scheme, end to end:

1. **Transition faults** -- the reason the paper insists on multi-vector
   at-speed sequences: single-vector full-scan tests detect *zero*
   transition faults (no consecutive at-speed cycles to launch one),
   while the paper's multi-vector tests detect most of them.
2. **MISR signatures** -- a real BIST datapath compacts responses into a
   signature instead of comparing every output; we show the good/faulty
   signatures separating.
3. **Fault diagnosis** -- the same fault simulator builds a pass/fail
   dictionary, and a simulated defective device is diagnosed back to its
   injected fault.

Run:  python examples/at_speed_and_diagnosis.py [circuit-name]
"""

import sys

from repro import load_circuit
from repro.core.config import BistConfig
from repro.core.test_set import generate_ts0
from repro.faults import (
    FaultSimulator,
    TransitionFaultSimulator,
    build_dictionary,
    collapse_faults,
    diagnose,
    generate_transition_faults,
)
from repro.faults.dictionary import simulate_defect
from repro.faults.model import FaultGraph
from repro.rpg.misr import signature_of_trace
from repro.simulation.compiled import Injections
from repro.simulation.sequential import simulate_test


def transition_demo(circuit) -> None:
    print("== transition (at-speed) faults ==")
    sim = TransitionFaultSimulator(circuit)
    faults = generate_transition_faults(circuit)
    cfg = BistConfig(la=8, lb=16, n=32)
    multi = generate_ts0(circuit, cfg)
    # Same functional-cycle budget, single-vector tests.
    from repro.faults.fault_sim import ScanTest
    from repro.rpg.prng import make_source

    src = make_source(cfg.base_seed)
    total_cycles = sum(t.length for t in multi)
    single = [
        ScanTest(
            si=src.bits(circuit.num_state_vars),
            vectors=[src.bits(circuit.num_inputs)],
        )
        for _ in range(total_cycles)
    ]
    d_multi = sim.simulate(multi, faults)
    d_single = sim.simulate(single, faults)
    print(f"  {len(faults)} transition faults")
    print(f"  multi-vector (at-speed) tests: {len(d_multi)} detected")
    print(f"  single-vector tests (same cycle count): {len(d_single)} detected")


def misr_demo(circuit) -> None:
    print("\n== MISR signature compaction ==")
    graph = FaultGraph(circuit)
    cfg = BistConfig(la=8, lb=16, n=4)
    test = generate_ts0(circuit, cfg)[0]
    good = simulate_test(graph.model, test.si, test.vectors)
    good_sig = signature_of_trace(good)
    print(f"  fault-free signature: 0x{good_sig:08x}")
    shown = 0
    for fault in collapse_faults(circuit):
        inj = Injections.build_whole_word(
            [(graph.signal_of(fault), 0, fault.value)],
            graph.model.level_of_signal,
        )
        bad = simulate_test(
            graph.model, test.si, test.vectors, injections=inj
        )
        bad_sig = signature_of_trace(bad)
        if bad_sig != good_sig and shown < 3:
            print(f"  {str(fault):<24} signature 0x{bad_sig:08x}  (FAIL)")
            shown += 1
    print("  (any observable difference perturbs the signature; aliasing "
          "probability ~ 2^-32)")


def diagnosis_demo(circuit) -> None:
    print("\n== cause-effect diagnosis ==")
    faults = collapse_faults(circuit)
    cfg = BistConfig(la=6, lb=12, n=8)
    tests = generate_ts0(circuit, cfg)[:16]
    dictionary = build_dictionary(circuit, tests, faults)
    print(f"  dictionary: {len(faults)} faults x {dictionary.num_tests} tests, "
          f"diagnostic resolution {dictionary.diagnostic_resolution():.0%}")
    # Simulate a defective device with a known fault and diagnose it.
    defect = next(f for f in faults if any(dictionary.signatures[f]))
    observed = simulate_defect(dictionary, defect)
    ranked = diagnose(dictionary, observed, top_k=3)
    print(f"  injected defect: {defect}")
    for i, cand in enumerate(ranked, 1):
        mark = " <= correct" if cand.fault == defect else ""
        print(f"  rank {i}: {str(cand.fault):<24} "
              f"explains {cand.explained} failing tests{mark}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s298"
    circuit = load_circuit(name)
    transition_demo(circuit)
    misr_demo(circuit)
    diagnosis_demo(circuit)


if __name__ == "__main__":
    main()
