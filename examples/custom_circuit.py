"""Using the library on your own circuit.

Builds a small sequential circuit three ways -- the programmatic API, an
ISCAS-89 ``.bench`` string, and the synthetic generator -- then runs the
full flow on it: fault collapsing, detectability classification,
Procedure 2 with limited scan, and a partial-scan variant.

Run:  python examples/custom_circuit.py
"""

from repro import BistConfig, LimitedScanBist, parse_bench
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.core.partial_scan import PartialScanBist, select_scan_flops


def build_programmatically() -> Circuit:
    """A 4-bit shift-and-compare pipeline."""
    c = Circuit("demo")
    for name in ("d", "en", "clr"):
        c.add_input(name)
    c.add_output("match")

    # 4-stage shift register with enable and clear.
    prev = "d"
    for i in range(4):
        q = f"q{i}"
        c.add_gate(f"sel{i}", GateType.AND, ["en", prev])
        c.add_gate(f"hold{i}", GateType.AND, [q, f"nen{i}"])
        c.add_gate(f"nen{i}", GateType.NOT, ["en"])
        c.add_gate(f"next{i}", GateType.OR, [f"sel{i}", f"hold{i}"])
        c.add_gate(f"d{i}", GateType.NOR, [f"nclr{i}", f"nnext{i}"])
        c.add_gate(f"nclr{i}", GateType.BUF, ["clr"])
        c.add_gate(f"nnext{i}", GateType.NOT, [f"next{i}"])
        c.add_flop(q, f"d{i}")
        prev = q

    # Random-pattern-resistant observation: all stages must be 1.
    c.add_gate("match", GateType.AND, ["q0", "q1", "q2", "q3"])
    return c


BENCH_TEXT = """
# the same idea, as a .bench file
INPUT(d)
INPUT(en)
OUTPUT(y)
q0 = DFF(n1)
q1 = DFF(q0)
n0 = NOT(en)
n1 = AND(d, en)
y  = AND(q0, q1)
"""


def run_flow(circuit: Circuit) -> None:
    print(f"\n=== {circuit.name} ===")
    bist = LimitedScanBist(circuit, config=BistConfig(la=4, lb=8, n=16))
    print("classification:", bist.classification.summary())
    result = bist.run()
    print(result.summary())

    if circuit.num_state_vars >= 2:
        chain = select_scan_flops(circuit, 0.5)
        ps = PartialScanBist(circuit, chain, config=BistConfig(la=4, lb=8, n=16))
        ps_result = ps.run(bist.target_faults)
        print(
            f"partial scan ({len(chain)}/{circuit.num_state_vars} flops): "
            f"{ps_result.det_total}/{ps_result.num_targets} detected"
        )


def main() -> None:
    run_flow(build_programmatically())
    run_flow(parse_bench(BENCH_TEXT, name="bench-demo"))


if __name__ == "__main__":
    main()
