"""Comparing the proposed scheme against classical random scan BIST.

The paper's Section 4 compares against the at-speed scan-BIST schemes of
[5]/[6], which allocate 500,000 clock cycles and still report incomplete
coverage.  This example runs our implementations of the comparable
baselines on one circuit:

- TS0 only (the initial random test set, no limited scan),
- multi-seed repetition of TS0 under the 500K budget,
- classical single-vector full-scan random BIST under the same budget,
- complete-scan insertion at the same time units (why *limited* scan),
- the proposed random limited-scan scheme.

Run:  python examples/baseline_comparison.py [circuit-name]
"""

import sys

from repro.experiments.ablations import baseline_comparison, full_scan_cost


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s208"
    print(f"Baselines on {name} (budget 500,000 cycles):\n")
    for result in baseline_comparison(name):
        print(" ", result.summary())

    print("\nWhy *limited* scan (same insertion points, one TS(I, D1)):")
    limited, widened = full_scan_cost(name)
    print(" ", limited.summary())
    print(" ", widened.summary())
    ratio = widened.cycles / max(1, limited.cycles)
    print(f"  -> complete-scan insertion costs {ratio:.1f}x the cycles")


if __name__ == "__main__":
    main()
