"""Coverage-versus-cycles: the proposed scheme against classical BIST.

Produces the data series behind the paper's argument: the single-vector
random scheme saturates below 100%, while the limited-scan scheme climbs
to complete coverage of the detectable faults.  Writes a CSV you can
plot with any tool.

Run:  python examples/coverage_curves.py [circuit-name] [out.csv]
"""

import sys

from repro import LimitedScanBist, load_circuit
from repro.core.coverage_curve import (
    proposed_scheme_curve,
    single_vector_curve,
    write_curves_csv,
)


def render_ascii(curve, width: int = 50) -> None:
    """A quick terminal rendering of the curve."""
    if not curve.points:
        return
    max_cycles = curve.points[-1][0]
    print(f"  {curve.label} (targets: {curve.num_targets})")
    for cycles, detected in curve.points:
        bar = "#" * int(width * detected / max(1, curve.num_targets))
        print(f"  {cycles:>9} cycles |{bar:<{width}}| {detected}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s208"
    out = sys.argv[2] if len(sys.argv) > 2 else "coverage_curves.csv"

    bist = LimitedScanBist(load_circuit(name))
    result = bist.run()
    targets = bist.target_faults

    proposed = proposed_scheme_curve(
        bist.circuit, result, targets, simulator=bist.simulator
    )
    classic = single_vector_curve(
        bist.circuit,
        targets,
        cycle_budget=max(result.ncyc_total, 10_000),
        simulator=bist.simulator,
    )

    render_ascii(proposed)
    print()
    render_ascii(classic)

    write_curves_csv([proposed, classic], out)
    print(f"\nwrote {out}")
    t90_p = proposed.cycles_to_reach(0.9)
    t90_c = classic.cycles_to_reach(0.9)
    print(f"cycles to 90% coverage: proposed {t90_p}, single-vector {t90_c}")
    print(
        f"final coverage: proposed {proposed.final_coverage:.2%}, "
        f"single-vector {classic.final_coverage:.2%}"
    )


if __name__ == "__main__":
    main()
