"""Exploring the (L_A, L_B, N) trade-off (the paper's Tables 3-5).

Shows: (1) the exact closed-form ordering of parameter combinations by
the cost of the initial test set (Table 5 -- reproduced digit for digit);
(2) a Procedure 2 grid for one circuit where larger combinations need
fewer stored (I, D1) pairs but more clock cycles (Tables 3 and 8).

Run:  python examples/parameter_tradeoff.py [circuit-name]
"""

import sys

from repro import load_circuit
from repro.core.parameter_selection import first_combinations
from repro.core.session import LimitedScanBist
from repro.experiments.grid import run_grid


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s208"
    circuit = load_circuit(name)
    n_sv = circuit.num_state_vars

    print(f"First 10 combinations by Ncyc0 for N_SV = {n_sv}:")
    for combo in first_combinations(n_sv, 10):
        print(f"  LA={combo.la:<4} LB={combo.lb:<4} N={combo.n:<4} "
              f"Ncyc0={combo.ncyc0}")

    print(f"\nProcedure 2 grid for {name} (dash = 100% not reached):")
    bist = LimitedScanBist(circuit)
    grid = run_grid(
        bist, la_values=(8, 16), lb_values=(16, 32, 64), n_values=(64,)
    )
    print(grid.render())


if __name__ == "__main__":
    main()
