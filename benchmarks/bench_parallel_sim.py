"""Serial vs. fault-sharded parallel simulation throughput.

Measures wall-clock time of the same fault-simulation workload on the
serial simulator and on ``sharded(n_jobs)`` front-ends, checks the
detected sets are identical, and saves a table of the measured speedups
under ``results/``.  The sharding layer's benefit scales with available
cores: on a single-core host the parallel path is expected to measure
near (or below) 1.0x because the shards serialize behind one CPU; the
table records the host's core count next to the numbers so readers can
interpret them.

``REPRO_BENCH_LARGE=1`` adds s5378 (and s35932 with
``REPRO_BENCH_HUGE=1``) to the circuit list.
"""

from __future__ import annotations

import os
import time

from conftest import save_result

from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.test_set import generate_ts0
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator
from repro.faults.sharding import resolve_n_jobs

JOB_COUNTS = (2, 4)


def _workload(name):
    circuit = load_circuit(name)
    cfg = BistConfig(la=8, lb=16, n=32)
    ts0 = generate_ts0(circuit, cfg)
    tests = build_limited_scan_test_set(
        ts0, 1, 1, cfg, circuit.num_state_vars
    )
    return circuit, tests, collapse_faults(circuit)


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_sharded_speedup():
    names = ["s1423"]
    if os.environ.get("REPRO_BENCH_LARGE"):
        names.append("s5378")
    if os.environ.get("REPRO_BENCH_HUGE"):
        names.append("s35932")

    lines = [
        "Fault-sharded parallel simulation: wall-clock vs. the serial path",
        f"host cores: {os.cpu_count()} (resolve_n_jobs(-1) = {resolve_n_jobs(-1)})",
        "",
        f"{'circuit':>8} {'faults':>7} {'serial[s]':>10} "
        + " ".join(f"{f'n_jobs={j}[s]':>13} {'speedup':>8}" for j in JOB_COUNTS),
    ]
    for name in names:
        circuit, tests, faults = _workload(name)
        sim = FaultSimulator(circuit)
        serial, t_serial = _time(
            lambda: sim.simulate_grouped(tests, faults)
        )
        cells = []
        for jobs in JOB_COUNTS:
            with sim.sharded(jobs) as psim:
                parallel, t_par = _time(
                    lambda: psim.simulate_grouped(tests, faults)
                )
            # Identical detected sets -- zero coverage difference.
            assert set(parallel) == set(serial)
            cells.append(f"{t_par:>13.3f} {t_serial / t_par:>7.2f}x")
        lines.append(
            f"{name:>8} {len(faults):>7} {t_serial:>10.3f} " + " ".join(cells)
        )

    text = "\n".join(lines)
    print("\n" + text)
    save_result("parallel-sim-speedup", text)
