"""Compile-cache and capacity benchmark on the full-size ISCAS-89 set.

Two measurement families, written together as ``BENCH_scale.json``:

* **compile rows** -- for each large-tier catalog circuit: parse/ingest
  time, cache-cold compile time (decompose + fanout branches + levelize
  + kernel build + cache store), cache-warm compile time (fingerprint
  lookup + unpickle), and a byte-identity probe showing the warm graph
  simulates bit-for-bit like the cold one.  This is the committed
  evidence that the content-addressed compile cache actually hits and
  that hitting it is safe.

* **procedure2 rows** -- complete Procedure 2 on a real-silicon circuit
  (s13207, collapsed targets, reduced-but-honest config): serial with a
  cold cache, serial with a warm cache, and the persistent pool at
  ``n_jobs=2``.  Every row's result must be byte-identical to the serial
  reference (execution metadata normalized out, as in ``bench_pool``).
  ``ru_maxrss`` is sampled after each row: consecutive runs in one
  process must not grow peak memory, the guard against the compiled
  form leaking object graphs per run.

Modes::

    python benchmarks/bench_scale.py            # full set (committed)
    python benchmarks/bench_scale.py --smoke    # seconds-scale (CI)

The committed ``BENCH_scale.json`` at the repository root is the full
set.  ``--smoke`` compiles only the smallest large-tier circuit and runs
Procedure 2 on s1423, sized for the regression test.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pickle
import resource
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.bench_circuits import load_circuit
from repro.circuit.cache import CompileCache
from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2
from repro.core.test_set import generate_ts0
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator
from repro.faults.model import FaultGraph

#: Schema tag checked by the regression test; bump on layout changes.
SCHEMA = "bench-scale/v1"

FULL_COMPILE_CIRCUITS = ["s9234", "s13207", "s15850", "s38417", "s38584"]
SMOKE_COMPILE_CIRCUITS = ["s9234"]

#: (circuit, BistConfig kwargs) for the Procedure 2 rows.  The full row
#: is a real-silicon circuit with an honest-but-bounded schedule search;
#: two iterations are enough to exercise TS0 simulation, candidate
#: batching and pair selection at 27k-fault scale without an hour-long
#: benchmark run.
FULL_PROC = ("s13207", dict(la=8, lb=16, n=16, n_same_fc=1, max_iterations=2))
SMOKE_PROC = ("s1423", dict(la=4, lb=8, n=8, n_same_fc=1, max_iterations=3))

#: Fault/test probe sizes for the compile-row identity check: enough to
#: cover hundreds of gates, small enough to stay sub-second per circuit.
PROBE_FAULTS = 256


def _maxrss_mb() -> float:
    """Peak RSS of this process so far, in MiB (Linux reports KiB)."""
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1)


def _canonical_blob(result: Any, reference_config: BistConfig) -> bytes:
    """The result's scientific payload, execution metadata removed."""
    return pickle.dumps(
        dataclasses.replace(result, config=reference_config, degradation=None)
    )


def bench_compile(names: Sequence[str], cache_root: Path) -> List[Dict[str, Any]]:
    """Cold/warm compile timings plus a warm-graph identity probe."""
    rows: List[Dict[str, Any]] = []
    for name in names:
        cache = CompileCache(cache_root / name)
        t0 = time.perf_counter()
        circuit = load_circuit(name)
        load_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        cold = FaultGraph(circuit, cache=cache)
        cold_s = time.perf_counter() - t0
        assert not cold.cache_hit

        t0 = time.perf_counter()
        warm = FaultGraph(circuit, cache=cache)
        warm_s = time.perf_counter() - t0

        probe_cfg = BistConfig(la=8, lb=16, n=4)
        ts0 = generate_ts0(circuit, probe_cfg)
        faults = collapse_faults(circuit)[:PROBE_FAULTS]
        cold_hits = FaultSimulator(cold).simulate_grouped(ts0, faults)
        warm_hits = FaultSimulator(warm).simulate_grouped(ts0, faults)
        identical = list(cold_hits.items()) == list(warm_hits.items())

        row = {
            "circuit": name,
            "gates": circuit.num_gates,
            "load_seconds": round(load_s, 3),
            "compile_cold_seconds": round(cold_s, 3),
            "compile_warm_seconds": round(warm_s, 3),
            "warm_hit": warm.cache_hit,
            "identical_cold_vs_warm": identical,
            "maxrss_mb": _maxrss_mb(),
        }
        rows.append(row)
        print(
            f"{name}: load {load_s:.2f}s, compile cold {cold_s:.2f}s / "
            f"warm {warm_s:.2f}s, hit={warm.cache_hit}, identical={identical}",
            flush=True,
        )
    return rows


def bench_procedure(
    name: str, base: Dict[str, Any], cache_root: Path
) -> List[Dict[str, Any]]:
    """Serial cold-cache vs warm-cache vs pooled Procedure 2 rows."""
    circuit = load_circuit(name)
    faults = collapse_faults(circuit)
    serial_cfg = BistConfig(**base)
    cache = CompileCache(cache_root / f"proc_{name}")
    rows: List[Dict[str, Any]] = []
    reference: Optional[bytes] = None

    variants = [
        ("serial-cold", serial_cfg),
        ("serial-warm", serial_cfg),
        (
            "pool-warm",
            dataclasses.replace(
                serial_cfg, n_jobs=2, pool="persistent", candidate_batch=4
            ),
        ),
    ]
    for label, cfg in variants:
        t0 = time.perf_counter()
        graph = FaultGraph(circuit, cache=cache)
        compile_s = time.perf_counter() - t0
        expect_hit = label != "serial-cold"
        assert graph.cache_hit == expect_hit, label

        t0 = time.perf_counter()
        result = run_procedure2(
            circuit, cfg, faults, simulator=FaultSimulator(graph)
        )
        run_s = time.perf_counter() - t0
        blob = _canonical_blob(result, serial_cfg)
        if reference is None:
            reference = blob
        rows.append(
            {
                "circuit": name,
                "variant": label,
                "n_jobs": cfg.n_jobs,
                "cache_hit": graph.cache_hit,
                "compile_seconds": round(compile_s, 3),
                "run_seconds": round(run_s, 3),
                "fault_coverage": round(result.fault_coverage, 6),
                "identical_to_serial": blob == reference,
                "maxrss_mb": _maxrss_mb(),
            }
        )
        print(
            f"{name} {label}: compile {compile_s:.2f}s "
            f"(hit={graph.cache_hit}), run {run_s:.1f}s, "
            f"identical={rows[-1]['identical_to_serial']}, "
            f"maxrss {rows[-1]['maxrss_mb']}MB",
            flush=True,
        )
    return rows


def run_bench(smoke: bool, cache_root: Path) -> Dict[str, Any]:
    """Measure both families and return the ``BENCH_scale.json`` payload."""
    compile_names = SMOKE_COMPILE_CIRCUITS if smoke else FULL_COMPILE_CIRCUITS
    proc_name, proc_base = SMOKE_PROC if smoke else FULL_PROC
    compile_rows = bench_compile(compile_names, cache_root)
    proc_rows = bench_procedure(proc_name, proc_base, cache_root)
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "procedure2_workload": {proc_name: proc_base},
        "compile": compile_rows,
        "procedure2": proc_rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset (CI entry point)",
    )
    parser.add_argument(
        "--out", type=Path, metavar="PATH",
        default=Path(__file__).resolve().parent.parent / "BENCH_scale.json",
        help="output JSON path (default: repo-root BENCH_scale.json)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    with tempfile.TemporaryDirectory(prefix="bench_scale_cache_") as tmp:
        payload = run_bench(smoke=args.smoke, cache_root=Path(tmp))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    bad = [
        r for r in payload["compile"]
        if not (r["warm_hit"] and r["identical_cold_vs_warm"])
    ] + [
        r for r in payload["procedure2"] if not r["identical_to_serial"]
    ]
    if bad:
        print(f"ERROR: {len(bad)} rows failed the identity/cache-hit contract")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
