"""Benchmark: regenerate Tables 1 and 2 (the s27 worked example)."""

from repro.experiments import table1

from conftest import save_result


def test_table1_and_2(benchmark):
    result = benchmark(table1.run)
    save_result("table1", result.render())
    # The paper's phenomenon must hold every run.
    assert result.fault is not None
    assert result.plain_trace.outputs == result.plain_trace_faulty.outputs
    assert (
        result.ls_trace.outputs != result.ls_trace_faulty.outputs
        or result.ls_trace.scanout != result.ls_trace_faulty.scanout
        or result.ls_trace.states[-1] != result.ls_trace_faulty.states[-1]
    )
