"""Benchmark: the refs [7]-[11] scan-overlap TAT reduction flow."""

from repro.bench_circuits import load_circuit
from repro.core.scan_overlap import overlap_experiment

from conftest import save_result


def test_tat_reduction_flow(benchmark):
    circuit = load_circuit("s208")
    out = benchmark.pedantic(
        lambda: overlap_experiment(circuit, repair=True),
        rounds=1,
        iterations=1,
    )
    save_result("tat_reduction_s208", out.summary())
    # Coverage preserved; TAT never worse than the conventional cost.
    assert out.optimized_detected == out.baseline_detected
    assert out.plan.optimized_cycles() <= out.plan.full_scan_cycles()
