"""Persistent worker pool vs. legacy sharding vs. serial Procedure 2.

Measures wall-clock time of complete Procedure 2 runs on the serial
simulator, on the legacy per-dispatch sharded executor
(``pool="sharded"``) and on the persistent shared-memory worker pool
(``pool="persistent"``) across an ``n_jobs`` x ``candidate_batch``
grid, and verifies every parallel/batched result is byte-identical to
the serial run (config and execution metadata normalized out).  The
measured table is written as ``BENCH_pool.json`` so speedups are
tracked in-repo rather than anecdotal.

Modes::

    python benchmarks/bench_pool.py             # full grid (s1423)
    python benchmarks/bench_pool.py --smoke     # seconds-scale (s298)

The committed ``BENCH_pool.json`` at the repository root is the full
grid.  ``--smoke`` is the CI/regression-test entry point: a small
circuit sized so each row runs for whole seconds and the *batched
evaluation* speedup is several-fold -- comfortably above timer noise --
while process-pool dispatch stays overhead-dominated (the JSON records
both, the regression test interprets them per host core count).  Smoke
rows are additionally timed as the minimum over ``SMOKE_REPEATS`` runs
so a scheduler hiccup on a loaded CI host cannot fake a regression.

On a single-core host the pool rows measure batching amortization only;
the host core count is recorded in the file so readers can interpret
the numbers.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pickle
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2
from repro.faults.collapse import collapse_faults

#: Schema tag checked by the regression test; bump on layout changes.
SCHEMA = "bench-pool/v1"

#: (circuit, BistConfig kwargs) of the full benchmark grid.  The long
#: ``n_same_fc`` tail mirrors realistic Procedure 2 runs: most
#: iterations improve nothing, which is exactly where batched candidate
#: evaluation pays.
FULL_WORKLOADS = [
    ("s1423", dict(la=8, lb=16, n=32, n_same_fc=10, max_iterations=60)),
]

SMOKE_WORKLOADS = [
    ("s298", dict(la=4, lb=8, n=8, n_same_fc=4, max_iterations=20)),
]

#: Smoke rows report the *minimum* wall-clock over this many runs.  The
#: full grid runs each row once: at 15-120s per row, noise is irrelevant
#: and repeats would be expensive.
SMOKE_REPEATS = 2

#: (mode, n_jobs, candidate_batch) rows measured against each workload.
#: ``pool`` with ``n_jobs=1`` exercises the in-process batched pass.
FULL_GRID = [
    ("sharded", 4, 1),
    ("pool", 1, 10),
    ("pool", 2, 10),
    ("pool", 4, 10),
    ("pool", 4, 1),
]

SMOKE_GRID = [
    ("sharded", 2, 1),
    ("pool", 1, 8),
    ("pool", 2, 8),
]


def _canonical_blob(result: Any, reference_config: BistConfig) -> bytes:
    """The result's scientific payload, execution metadata removed.

    ``config`` differs across rows by construction (``n_jobs``/``pool``/
    ``candidate_batch`` are execution knobs) and ``degradation`` is
    explicitly execution metadata, so both are normalized before the
    byte comparison.
    """
    return pickle.dumps(
        dataclasses.replace(
            result, config=reference_config, degradation=None
        )
    )


def _timed_run(
    circuit: Any, config: BistConfig, faults: Sequence[Any], repeats: int = 1
):
    """Run Procedure 2 ``repeats`` times; report the minimum wall-clock.

    Every run computes the identical result (the whole point of the
    byte-identity contract), so the first result object stands for all
    of them and the minimum time is the least-noisy estimate.
    """
    result = None
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        res = run_procedure2(circuit, config, faults)
        best = min(best, time.perf_counter() - t0)
        if result is None:
            result = res
    return result, best


def run_grid(smoke: bool) -> Dict[str, Any]:
    """Measure the grid and return the ``BENCH_pool.json`` payload."""
    workloads = SMOKE_WORKLOADS if smoke else FULL_WORKLOADS
    grid = SMOKE_GRID if smoke else FULL_GRID
    repeats = SMOKE_REPEATS if smoke else 1
    rows: List[Dict[str, Any]] = []
    for name, base in workloads:
        circuit = load_circuit(name)
        faults = collapse_faults(circuit)
        serial_cfg = BistConfig(**base)
        serial_res, serial_s = _timed_run(circuit, serial_cfg, faults, repeats)
        reference = _canonical_blob(serial_res, serial_cfg)
        rows.append(
            {
                "circuit": name,
                "mode": "serial",
                "n_jobs": 1,
                "candidate_batch": 1,
                "seconds": round(serial_s, 3),
                "speedup_vs_serial": 1.0,
                "identical_to_serial": True,
                "degraded": False,
            }
        )
        for mode, jobs, batch in grid:
            cfg = BistConfig(
                **base,
                n_jobs=jobs,
                pool="persistent" if mode == "pool" else mode,
                candidate_batch=batch,
            )
            res, seconds = _timed_run(circuit, cfg, faults, repeats)
            degraded = bool(res.degradation and res.degradation.degraded)
            rows.append(
                {
                    "circuit": name,
                    "mode": mode,
                    "n_jobs": jobs,
                    "candidate_batch": batch,
                    "seconds": round(seconds, 3),
                    "speedup_vs_serial": round(serial_s / seconds, 3),
                    "identical_to_serial":
                        _canonical_blob(res, serial_cfg) == reference,
                    "degraded": degraded,
                }
            )
            print(
                f"{name} {mode} jobs={jobs} batch={batch}: "
                f"{seconds:.2f}s ({serial_s / seconds:.2f}x) "
                f"identical={rows[-1]['identical_to_serial']}",
                flush=True,
            )
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "workloads": {name: cfg for name, cfg in workloads},
        "results": rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale grid on a tiny circuit (CI entry point)",
    )
    parser.add_argument(
        "--out", type=Path, metavar="PATH",
        default=Path(__file__).resolve().parent.parent / "BENCH_pool.json",
        help="output JSON path (default: repo-root BENCH_pool.json)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    payload = run_grid(smoke=args.smoke)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    bad = [r for r in payload["results"] if not r["identical_to_serial"]]
    if bad:
        print(f"ERROR: {len(bad)} rows are not byte-identical to serial")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
