"""Benchmarks of the extension subsystems."""

from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.test_set import generate_ts0
from repro.faults.collapse import collapse_faults
from repro.faults.dictionary import build_dictionary
from repro.faults.transition import (
    TransitionFaultSimulator,
    generate_transition_faults,
)
from repro.atpg.scoap import compute_scoap
from repro.rpg.misr import Misr

from conftest import save_result


def test_transition_fault_sim(benchmark):
    circuit = load_circuit("s298")
    sim = TransitionFaultSimulator(circuit)
    faults = generate_transition_faults(circuit)
    cfg = BistConfig(la=8, lb=16, n=16)
    tests = generate_ts0(circuit, cfg)
    detected = benchmark.pedantic(
        lambda: sim.simulate(tests, faults), rounds=2, iterations=1
    )
    save_result(
        "transition_s298",
        f"s298: {len(detected)}/{len(faults)} transition faults detected "
        f"by TS0 (LA=8, LB=16, N=16)",
    )
    assert detected  # multi-vector tests must catch transition faults


def test_scoap_analysis(benchmark):
    circuit = load_circuit("s953")
    result = benchmark(compute_scoap, circuit)
    assert all(v >= 1 for v in result.cc0.values())


def test_misr_throughput(benchmark):
    stream = list(range(10_000))

    def run():
        return Misr(32, seed=1).compact([w & 0xFFFFFFFF for w in stream])

    sig = benchmark(run)
    assert sig == run()  # deterministic


def test_dictionary_build(benchmark):
    circuit = load_circuit("s27")
    faults = collapse_faults(circuit)
    cfg = BistConfig(la=4, lb=8, n=4)
    tests = generate_ts0(circuit, cfg)
    dictionary = benchmark.pedantic(
        lambda: build_dictionary(circuit, tests, faults),
        rounds=2,
        iterations=1,
    )
    assert dictionary.num_tests == len(tests)
