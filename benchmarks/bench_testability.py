"""Uniform vs testability-guided candidate ordering, measured honestly.

For each circuit the paper's Table 6 flow (``first_complete``) runs
twice -- ``candidate_bias="uniform"`` and ``"testability"`` -- and the
report records stored pairs, scan-shift overhead (``nsh``), total
cycles, and coverage for both, plus the static COP analysis (RPR
counts, analyze wall-clock) that the biased order is derived from.

The bias is a heuristic, not a free win: it reorders the D1 walk toward
the depth where the RPR support mass starts, which helps on some
circuits (s208: 5 pairs instead of 6, less than half the scan shifts)
and ties or slightly loses on others.  The JSON keeps every row either
way; the contract check only requires that *some* circuit improves and
that no run loses completeness.

Usage::

    PYTHONPATH=src python benchmarks/bench_testability.py --smoke
    PYTHONPATH=src python benchmarks/bench_testability.py  # full set
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cop import analyze_circuit
from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.session import LimitedScanBist

SCHEMA = 1

#: CI-speed subset: the circuit where the ordering demonstrably wins.
SMOKE_CIRCUITS = ("s208",)

#: Small-tier mix chosen to show wins, ties, and regressions alike.
FULL_CIRCUITS = ("s208", "s298", "s344", "s400", "b01", "b03", "b10")

BASE_SEED = 20010618


def bench_circuit(name: str) -> Dict[str, Any]:
    """Both bias modes plus the static analysis, for one circuit."""
    circuit = load_circuit(name)
    t0 = time.perf_counter()
    analysis = analyze_circuit(circuit)
    analyze_s = time.perf_counter() - t0

    row: Dict[str, Any] = {
        "circuit": name,
        "analysis": {
            "collapsed_faults": len(analysis.faults),
            "rpr": analysis.num_rpr,
            "untestable": analysis.num_untestable,
            "analyze_seconds": round(analyze_s, 3),
        },
    }
    for bias in ("uniform", "testability"):
        session = LimitedScanBist(
            circuit,
            config=BistConfig(base_seed=BASE_SEED, candidate_bias=bias),
        )
        t0 = time.perf_counter()
        report = session.first_complete()
        run_s = time.perf_counter() - t0
        result = report.result
        row[bias] = {
            "combo": report.combo.label(),
            "pairs": result.app,
            "complete": result.complete,
            "det_total": result.det_total,
            "nsh_total": sum(p.nsh for p in result.pairs),
            "ncyc_total": result.ncyc_total,
            "candidate_bias": result.candidate_bias,
            "run_seconds": round(run_s, 3),
        }
    uniform, biased = row["uniform"], row["testability"]
    row["pairs_delta"] = biased["pairs"] - uniform["pairs"]
    print(
        f"{name}: uniform {uniform['pairs']} pairs "
        f"(nsh {uniform['nsh_total']}), testability {biased['pairs']} pairs "
        f"(nsh {biased['nsh_total']}), delta {row['pairs_delta']:+d}",
        flush=True,
    )
    return row


def run_bench(smoke: bool) -> Dict[str, Any]:
    names = SMOKE_CIRCUITS if smoke else FULL_CIRCUITS
    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "base_seed": BASE_SEED,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": ".".join(map(str, sys.version_info[:3])),
        },
        "circuits": [bench_circuit(name) for name in names],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset (CI entry point)",
    )
    parser.add_argument(
        "--out", type=Path, metavar="PATH",
        default=Path(__file__).resolve().parent.parent
        / "BENCH_testability.json",
        help="output JSON path (default: repo-root BENCH_testability.json)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    payload = run_bench(smoke=args.smoke)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    rows = payload["circuits"]
    failures: List[str] = []
    for row in rows:
        if row["uniform"]["complete"] and not row["testability"]["complete"]:
            failures.append(f"{row['circuit']}: testability lost completeness")
    if not any(
        row["pairs_delta"] < 0
        and row["testability"]["complete"]
        for row in rows
    ):
        failures.append("no circuit improved under the testability order")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
