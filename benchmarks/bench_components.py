"""Microbenchmarks of the library's performance-critical components."""

import numpy as np

from repro.bench_circuits import load_circuit
from repro.circuit.library import ALL_ONES
from repro.core.config import BistConfig
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.test_set import generate_ts0
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator
from repro.faults.model import FaultGraph, generate_faults
from repro.faults.ppsfp import CombinationalFaultSimulator, pack_patterns
from repro.rpg.lfsr import Lfsr
from repro.simulation.compiled import CompiledModel


def test_compiled_eval_throughput(benchmark):
    """One combinational pass of the s953-shaped circuit, 64 words."""
    circuit = load_circuit("s953")
    model = CompiledModel(circuit)
    vals = model.alloc(64)
    rng = np.random.Generator(np.random.PCG64(1))
    vals[model.pi_idx, :] = rng.integers(
        0, 2**63, size=(len(model.pi_idx), 64), dtype=np.uint64
    )
    benchmark(model.eval, vals)


def test_fault_graph_build(benchmark):
    circuit = load_circuit("s953")
    benchmark(FaultGraph, circuit)


def test_fault_collapse(benchmark):
    circuit = load_circuit("s953")
    benchmark(collapse_faults, circuit)


def test_grouped_fault_sim_ts0(benchmark):
    """Fault-simulate a whole TS0 against the collapsed fault list."""
    circuit = load_circuit("s298")
    sim = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    cfg = BistConfig(la=8, lb=16, n=64)
    ts0 = generate_ts0(circuit, cfg)
    benchmark.pedantic(
        lambda: sim.simulate_grouped(ts0, faults), rounds=2, iterations=1
    )


def test_grouped_fault_sim_with_schedules(benchmark):
    circuit = load_circuit("s298")
    sim = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    cfg = BistConfig(la=8, lb=16, n=64)
    ts0 = generate_ts0(circuit, cfg)
    ts = build_limited_scan_test_set(ts0, 1, 1, cfg, circuit.num_state_vars)
    benchmark.pedantic(
        lambda: sim.simulate_grouped(ts, faults), rounds=2, iterations=1
    )


def test_ppsfp_throughput(benchmark):
    circuit = load_circuit("s298")
    graph = FaultGraph(circuit)
    comb = CombinationalFaultSimulator(graph)
    faults = collapse_faults(circuit)
    rng = np.random.Generator(np.random.PCG64(3))
    patterns = rng.integers(0, 2, size=(256, comb.num_inputs), dtype=np.uint8)
    words = pack_patterns(patterns)
    benchmark.pedantic(
        lambda: comb.detected(words, faults), rounds=2, iterations=1
    )


def test_lfsr_bit_rate(benchmark):
    lfsr = Lfsr(32, seed=0xDEADBEEF)
    benchmark(lfsr.bits, 10_000)


def test_podem_s27_full_fault_list(benchmark):
    from repro.atpg.podem import Podem

    graph = FaultGraph(load_circuit("s27"))
    faults = collapse_faults(graph.circuit)

    def run_all():
        podem = Podem(graph)
        return [podem.run(f).status for f in faults]

    statuses = benchmark.pedantic(run_all, rounds=2, iterations=1)
    assert len(statuses) == 32
