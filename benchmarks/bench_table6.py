"""Benchmark: regenerate Table 6 rows (first complete combination).

A three-circuit subset keeps the benchmark run short; the full circuit
list is produced by ``python -m repro.experiments.table6`` and recorded
in EXPERIMENTS.md.
"""

from repro.experiments import table6

from conftest import save_result

CIRCUITS = ("s27", "s208", "b01")


def test_table6_rows(benchmark):
    result = benchmark.pedantic(
        lambda: table6.run(circuits=CIRCUITS, max_combos=6),
        rounds=1,
        iterations=1,
    )
    save_result("table6_subset", result.render())
    assert result.all_complete()
    for name, rep in result.reports.items():
        r = rep.result
        # Coverage is complete and the accounting is self-consistent.
        assert r.det_total == r.num_targets
        assert r.ncyc_total >= r.ncyc0
