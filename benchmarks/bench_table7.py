"""Benchmark: regenerate Table 7 rows (D1 = 10..1).

Checks the paper's headline observation: decreasing-D1 preference yields
a lower average number of limited-scan time units (``ls``) than Table 6.
"""

from repro.experiments import table7

from conftest import save_result

CIRCUITS = ("s208", "b01")


def test_table7_rows(benchmark):
    result = benchmark.pedantic(
        lambda: table7.run(circuits=CIRCUITS, max_combos=6),
        rounds=1,
        iterations=1,
    )
    save_result("table7_subset", result.render())
    for name, run in result.runs.items():
        t6 = result.table6_runs[name]
        if run.pairs and t6.pairs:
            assert run.ls_average <= t6.ls_average + 1e-9
