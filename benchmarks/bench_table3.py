"""Benchmark: regenerate Table 3 (s208 Ncyc / Ncyc0 grid).

The benchmarked body runs a reduced grid (the paper-scale grid is run by
``python -m repro.experiments.table3 --full`` and recorded in
EXPERIMENTS.md).  The exactness of Ncyc0 against the paper's numbers is
asserted on the full formula regardless of grid size.
"""

from repro.core.cost import ncyc0
from repro.experiments import table3
from repro.experiments.grid import run_grid

from conftest import save_result


def test_table3_grid(benchmark, s208_bist):
    result = benchmark.pedantic(
        lambda: run_grid(
            s208_bist, la_values=(8, 16), lb_values=(16, 32, 64), n_values=(64,)
        ),
        rounds=1,
        iterations=1,
    )
    save_result("table3", result.render())
    # Ncyc0 agrees with the paper exactly (digit-for-digit).
    for (la, lb, n), expected in table3.PAPER_NCYC0_SAMPLES.items():
        assert ncyc0(8, la, lb, n) == expected
    # Shape: every complete cell costs at least its Ncyc0.
    for key, cycles in result.complete_cells().items():
        assert cycles >= result.ncyc0[key]
