"""Benchmark: regenerate Table 8 rows (storage vs. time trade-off)."""

from repro.experiments import table8

from conftest import save_result


def test_table8_rows(benchmark):
    result = benchmark.pedantic(
        lambda: table8.run(circuits=("s208",), combos_per_circuit=3, stride=4),
        rounds=1,
        iterations=1,
    )
    save_result("table8_subset", result.render())
    apps = result.app_counts("s208")
    assert apps, "first complete combination must exist for s208"
    # The paper's trend: larger combinations need no more pairs than the
    # first (cheapest) complete one.
    assert min(apps) <= apps[0]
