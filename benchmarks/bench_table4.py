"""Benchmark: regenerate Table 4 (s420 grid; dash cells are data)."""

from repro.core.cost import ncyc0
from repro.experiments import table4
from repro.experiments.grid import run_grid

from conftest import save_result


def test_table4_grid(benchmark, s420_bist):
    result = benchmark.pedantic(
        lambda: run_grid(
            s420_bist, la_values=(8, 16), lb_values=(16, 32), n_values=(64,)
        ),
        rounds=1,
        iterations=1,
    )
    save_result("table4", result.render())
    for (la, lb, n), expected in table4.PAPER_NCYC0_SAMPLES.items():
        assert ncyc0(16, la, lb, n) == expected
