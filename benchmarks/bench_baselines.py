"""Benchmark: baselines and the extension ablations.

Regenerates the Section 4 comparison (500K-cycle budget of [5]/[6]) plus
the ablation tables that DESIGN.md section 6 calls out.
"""

from repro.experiments import ablations

from conftest import save_result


def test_baseline_comparison(benchmark):
    results = benchmark.pedantic(
        lambda: ablations.baseline_comparison("s208"), rounds=1, iterations=1
    )
    save_result(
        "baselines_s208", "\n".join(r.summary() for r in results)
    )
    by_name = {r.name: r for r in results}
    proposed = by_name["random limited-scan (proposed)"]
    ts0 = by_name["TS0-only"]
    # The proposed scheme dominates TS0-only on coverage.
    assert proposed.detected >= ts0.detected
    assert proposed.coverage == 1.0


def test_observation_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablations.observation_ablation("s208"), rounds=1, iterations=1
    )
    save_result(
        "ablation_observation",
        ablations.render_rows(rows, "Observation-policy ablation (s208)"),
    )
    full = rows[0].detected
    for row in rows[1:]:
        assert row.detected <= full


def test_full_scan_insertion_cost(benchmark):
    limited, widened = benchmark.pedantic(
        lambda: ablations.full_scan_cost("s208"), rounds=1, iterations=1
    )
    save_result(
        "ablation_full_scan_cost",
        limited.summary() + "\n" + widened.summary(),
    )
    # Complete scans at the same time units cost strictly more cycles.
    assert widened.cycles > limited.cycles


def test_partial_scan(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.partial_scan_experiment("s208", 0.5),
        rounds=1,
        iterations=1,
    )
    save_result("partial_scan_s208", result.summary())
    assert result.det_total >= result.ts0_detected
