"""Shared fixtures for the benchmark harness.

Each ``bench_table*.py`` regenerates one table of the paper (at reduced
scale where the paper-scale run takes minutes; see EXPERIMENTS.md for
recorded full-scale outputs) and saves the rendered table next to the
benchmark results under ``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import bist_for
from repro.experiments.report import canonical_result_name

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{canonical_result_name(name)}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def s208_bist():
    return bist_for("s208")


@pytest.fixture(scope="session")
def s420_bist():
    return bist_for("s420")
