"""Benchmark: regenerate Table 5 (exact reproduction)."""

from repro.experiments import table5

from conftest import save_result


def test_table5(benchmark):
    result = benchmark(table5.run)
    save_result("table5", result.render())
    assert result.matches_paper()
