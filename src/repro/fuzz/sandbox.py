"""Resource-guarded execution of one fuzz case in a child process.

A fuzz case can hang the simulator or blow up memory long before any
oracle reports back, so the case runs in a forked child under a
wall-clock budget (enforced by the parent) and an address-space budget
(``RLIMIT_AS``, enforced by the kernel).  Whatever happens -- clean
result, Python-level crash, ``MemoryError``, hard OOM kill, hang -- the
parent always gets a structured :class:`SandboxVerdict`, never an
exception and never a wedged fuzzer.

Results cross the process boundary as plain dicts (no pickled
exceptions or circuits), so a corrupted child cannot poison the parent.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

try:  # pragma: no cover - non-POSIX fallback
    import resource
except ImportError:  # pragma: no cover
    resource = None

#: Child exit statuses, mirrored into FuzzCaseResult.outcome by the runner.
STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_OOM = "oom"
STATUS_KILLED = "killed"


@dataclass(frozen=True)
class SandboxVerdict:
    """What happened to the child: a payload, or how it died."""

    status: str                       # one of the STATUS_* values
    payload: Optional[Dict[str, Any]] = None
    detail: str = ""


def _arm_pdeathsig() -> None:
    """Die with the parent: Linux ``PR_SET_PDEATHSIG`` (best-effort).

    A sandboxed job whose parent service is SIGKILLed must not linger
    as an orphan -- an orphan would keep appending to the job's
    checkpoint journal while the restarted service resumes from it.
    On Linux the kernel delivers SIGKILL to the child the moment the
    parent (strictly: the forking thread) dies; elsewhere this is a
    no-op and callers fall back on wall-clock budgets.
    """
    try:
        import ctypes
        import signal as _signal

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, _signal.SIGKILL, 0, 0, 0)  # PR_SET_PDEATHSIG
    except Exception:  # pragma: no cover - non-Linux / no libc
        return
    # The parent may have died between fork and prctl; a reparented
    # child never gets the signal, so check once explicitly.
    import os as _os

    if _os.getppid() == 1:  # pragma: no cover - microscopic race window
        _os._exit(1)


def _child_entry(
    conn,
    fn: Callable[..., Dict[str, Any]],
    args: tuple,
    mem_bytes: Optional[int],
    pdeathsig: bool = False,
) -> None:
    """Runs in the forked child: apply limits, run, ship the dict back."""
    if pdeathsig:
        _arm_pdeathsig()
    if mem_bytes and resource is not None:
        try:
            resource.setrlimit(resource.RLIMIT_AS, (mem_bytes, mem_bytes))
        except (ValueError, OSError):
            pass  # limit below current usage or unsupported; run unguarded
    try:
        payload = fn(*args)
        conn.send({"status": STATUS_OK, "payload": payload})
    except MemoryError:
        conn.send({"status": STATUS_OOM, "detail": "MemoryError"})
    except BaseException as exc:  # noqa: BLE001 - the whole point
        # The runner's case executor catches expected exceptions itself;
        # anything arriving here is a harness bug worth seeing verbatim.
        conn.send({
            "status": STATUS_KILLED,
            "detail": f"harness error: {type(exc).__name__}: {exc}",
        })
    finally:
        conn.close()


def run_sandboxed(
    fn: Callable[..., Dict[str, Any]],
    args: tuple,
    timeout_s: float,
    mem_bytes: Optional[int] = None,
    pdeathsig: bool = False,
    on_start: Optional[Callable[[int], None]] = None,
) -> SandboxVerdict:
    """Run ``fn(*args)`` in a forked child under time and memory budgets.

    ``fn`` must return a plain dict.  On timeout the child is killed; on
    a hard death (segfault, OOM-killer) the exit code is reported.

    ``pdeathsig`` makes the child die with this process (Linux) --
    required by long-running services whose children journal to shared
    files.  ``on_start`` receives the child's pid as soon as it exists,
    so a supervisor can record or kill it out-of-band.
    """
    ctx = mp.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_entry, args=(child_conn, fn, args, mem_bytes, pdeathsig)
    )
    proc.start()
    if on_start is not None:
        on_start(proc.pid)
    child_conn.close()
    try:
        if parent_conn.poll(timeout_s):
            try:
                msg = parent_conn.recv()
            except EOFError:
                msg = None
            proc.join(1.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
            if msg is None:
                return SandboxVerdict(
                    STATUS_KILLED,
                    detail=f"child died mid-send (exitcode {proc.exitcode})",
                )
            return SandboxVerdict(
                status=msg["status"],
                payload=msg.get("payload"),
                detail=msg.get("detail", ""),
            )
        # No message within budget: either a hang (still alive) or a
        # hard death that never reached conn.send (e.g. SIGKILL by the
        # kernel OOM killer).
        if proc.is_alive():
            proc.kill()
            proc.join()
            return SandboxVerdict(
                STATUS_TIMEOUT, detail=f"exceeded {timeout_s:g}s budget"
            )
        proc.join()
        return SandboxVerdict(
            STATUS_KILLED, detail=f"child exited {proc.exitcode} silently"
        )
    finally:
        parent_conn.close()
        if proc.is_alive():  # pragma: no cover - belt and braces
            proc.kill()
            proc.join()
