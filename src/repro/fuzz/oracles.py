"""Metamorphic and differential oracles run on every fuzz case.

Each oracle returns a violation message (``str``) or ``None``.  An
oracle must only *raise* when the code under test raises something it
should not -- that is what the runner records as a **crash** and
fingerprints for triage.  The contract each oracle enforces:

- ``parse-contract``: ``parse_bench`` either raises
  :class:`BenchParseError` or returns a circuit with zero
  ERROR-severity structural lint findings.  Any other exception, or an
  accepted-but-broken circuit, is a violation.
- ``bench-roundtrip``: ``parse(write(c))`` is structurally identical to
  ``c`` (scan order included) and ``write`` is a fixpoint:
  ``write(parse(write(c))) == write(c)`` byte for byte.
- ``verilog-roundtrip``: same through the Verilog writer/reader, for
  circuits whose net names survive Verilog (identifier-safe, no clock
  collisions).
- ``sim-equivalence``: the compiled bit-parallel engine and the
  event-driven engine (no shared evaluation code) agree on POs and
  next-state for random vectors.
- ``scan-invariants``: ``limited_shift`` identity/composition laws.
- ``cost-model``: the paper's ``Ncyc`` formulas are non-negative,
  monotone, and self-consistent.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis import lint_structural
from repro.circuit.bench_parser import BenchParseError, parse_bench, write_bench
from repro.circuit.netlist import Circuit
from repro.circuit.verilog import parse_verilog, write_verilog
from repro.core.cost import ncyc0, ncyc0_scaled, ncyc_pair, total_cycles
from repro.simulation.compiled import CompiledModel
from repro.simulation.event_sim import EventSimulator
from repro.simulation.scan import limited_shift

#: Names that can survive a Verilog round-trip unchanged.
_VERILOG_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")
_VERILOG_RESERVED = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "and", "nand", "or", "nor", "xor", "xnor", "not", "buf", "dff",
    "clk", "clock", "CK", "CLK",
}

#: Cap on gate count for the simulation oracle; fuzz circuits are small,
#: this only guards against pathological generated/mutated blowups.
_SIM_GATE_CAP = 4000


class OracleOutcome:
    """Disposition of one case: parse result plus any violations."""

    def __init__(self) -> None:
        self.parsed: Optional[Circuit] = None
        self.reject_codes: List[str] = []
        self.violations: List[Tuple[str, str]] = []  # (oracle, message)

    @property
    def disposition(self) -> str:
        """``pass`` | ``reject`` | ``violation`` (crashes never get here)."""
        if self.violations:
            return "violation"
        return "pass" if self.parsed is not None else "reject"

    def add(self, oracle: str, message: Optional[str]) -> None:
        if message is not None:
            self.violations.append((oracle, message))


# ---------------------------------------------------------------------------
# Parse contract
# ---------------------------------------------------------------------------

def check_parse_contract(text: str) -> Tuple[Optional[Circuit], Optional[str], List[str]]:
    """Returns ``(circuit, violation, reject_codes)``.

    A :class:`BenchParseError` is a clean reject; any other exception
    propagates to the runner as a crash.  An accepted circuit must be
    free of ERROR-severity structural lint findings.
    """
    try:
        circuit = parse_bench(text, name="fuzz")
    except BenchParseError as exc:
        return None, None, sorted(set(exc.codes))
    report = lint_structural(circuit)
    if report.errors:
        msgs = "; ".join(i.message for i in report.errors)
        return circuit, (
            f"parser accepted a circuit with structural lint errors: {msgs}"
        ), []
    return circuit, None, []


# ---------------------------------------------------------------------------
# Round-trip oracles
# ---------------------------------------------------------------------------

def check_bench_roundtrip(circuit: Circuit) -> Optional[str]:
    text = write_bench(circuit)
    try:
        back = parse_bench(text, name=circuit.name)
    except BenchParseError as exc:
        return f"write_bench produced unparseable text: {exc}"
    if not circuit.structurally_equal(back):
        return "parse(write(c)) differs structurally from c"
    if write_bench(back) != text:
        return "write_bench is not a fixpoint: write(parse(write(c))) != write(c)"
    return None


def verilog_safe(circuit: Circuit) -> bool:
    """True if every net name survives the Verilog dialect unchanged."""
    names = set(circuit.signals()) | set(circuit.outputs)
    return all(
        _VERILOG_ID_RE.match(n) and n not in _VERILOG_RESERVED for n in names
    )


def check_verilog_roundtrip(circuit: Circuit) -> Optional[str]:
    """Round-trip through Verilog; ``None`` (skip) for unsafe names."""
    if not verilog_safe(circuit):
        return None
    text = write_verilog(circuit)
    try:
        back = parse_verilog(text)
    except ValueError as exc:
        return f"write_verilog produced unparseable text: {exc}"
    if not circuit.structurally_equal(back):
        return "parse_verilog(write_verilog(c)) differs structurally from c"
    return None


# ---------------------------------------------------------------------------
# Differential simulation
# ---------------------------------------------------------------------------

def check_sim_equivalence(
    circuit: Circuit, rng: np.random.Generator, n_vectors: int = 4
) -> Optional[str]:
    """Compiled vs event-driven simulation on random vectors.

    Only meaningful for lint-clean circuits (the caller guarantees
    that); compares primary outputs and next-state bits.
    """
    if circuit.num_gates == 0 or circuit.num_gates > _SIM_GATE_CAP:
        return None
    model = CompiledModel(circuit)
    event = EventSimulator(circuit)
    for v in range(n_vectors):
        pi_bits = [int(b) for b in rng.integers(0, 2, circuit.num_inputs)]
        st_bits = [int(b) for b in rng.integers(0, 2, circuit.num_state_vars)]
        vals = model.alloc(1)
        model.set_inputs_from_bits(vals, pi_bits)
        if len(model.q_idx):
            column = np.where(
                np.asarray(st_bits, dtype=bool),
                np.uint64(0xFFFFFFFFFFFFFFFF),
                np.uint64(0),
            ).astype(np.uint64)
            vals[model.q_idx, 0] = column
        model.eval(vals)
        po_c = [1 if int(vals[i, 0]) else 0 for i in model.po_idx]
        ns_c = [1 if int(vals[i, 0]) else 0 for i in model.d_idx]

        event.initialize(pi_bits, st_bits)
        po_e = event.output_bits()
        ns_e = event.next_state_bits()
        if po_c != po_e or ns_c != ns_e:
            return (
                f"compiled and event-driven simulators disagree on vector "
                f"{v}: PO {po_c} vs {po_e}, next-state {ns_c} vs {ns_e}"
            )
    return None


# ---------------------------------------------------------------------------
# Scan and cost-model invariants
# ---------------------------------------------------------------------------

def check_scan_invariants(rng: np.random.Generator) -> Optional[str]:
    """``limited_shift`` identity and composition laws on random state."""
    n_sv = int(rng.integers(1, 12))
    state = rng.integers(0, 2**63, size=(n_sv, 2), dtype=np.uint64)
    # Identity: k = 0 changes nothing and observes nothing.
    out0, obs0 = limited_shift(state, 0, [])
    if not np.array_equal(out0, state) or obs0.shape[0] != 0:
        return "limited_shift(k=0) is not the identity"
    # Composition: k1 then k2 equals one shift of k1 + k2.
    k1 = int(rng.integers(0, n_sv + 1))
    k2 = int(rng.integers(0, n_sv + 1 - k1))
    fill = [int(b) for b in rng.integers(0, 2, k1 + k2)]
    s1, o1 = limited_shift(state, k1, fill[:k1])
    s2, o2 = limited_shift(s1, k2, fill[k1:])
    s12, o12 = limited_shift(state, k1 + k2, fill)
    if not np.array_equal(s2, s12):
        return f"limited_shift composition broke states (k1={k1}, k2={k2})"
    if not np.array_equal(np.vstack([o1, o2]), o12):
        return f"limited_shift composition broke observations (k1={k1}, k2={k2})"
    return None


def check_cost_model(rng: np.random.Generator) -> Optional[str]:
    """Non-negativity, monotonicity, and consistency of the Ncyc model."""
    n_sv = int(rng.integers(0, 200))
    la = int(rng.integers(0, 64))
    lb = int(rng.integers(0, 64))
    n = int(rng.integers(0, 512))
    base = ncyc0(n_sv, la, lb, n)
    if base < 0:
        return f"ncyc0({n_sv}, {la}, {lb}, {n}) = {base} < 0"
    for delta, args in (
        ("n_sv", (n_sv + 1, la, lb, n)),
        ("la", (n_sv, la + 1, lb, n)),
        ("lb", (n_sv, la, lb + 1, n)),
        ("n", (n_sv, la, lb, n + 1)),
    ):
        if ncyc0(*args) < base:
            return f"ncyc0 not monotone in {delta}"
    if ncyc0_scaled(n_sv, la, lb, n, 1.0) != base:
        return "ncyc0_scaled(ratio=1) != ncyc0"
    nshs = [int(x) for x in rng.integers(0, 1000, size=int(rng.integers(0, 5)))]
    expected = base + sum(ncyc_pair(base, s) for s in nshs)
    if total_cycles(base, nshs) != expected:
        return "total_cycles inconsistent with ncyc_pair sum"
    for s in nshs:
        if ncyc_pair(base, s) < base:
            return "ncyc_pair below ncyc0"
    return None


# ---------------------------------------------------------------------------
# Battery
# ---------------------------------------------------------------------------

def run_oracles(text: str, rng: np.random.Generator) -> OracleOutcome:
    """Run the full oracle battery on one ``.bench`` source.

    Order matters: the parse contract decides whether the structural
    oracles apply; the parameter-space oracles (scan, cost model) run on
    every case so they keep fuzzing even when most inputs are rejects.
    """
    outcome = OracleOutcome()
    circuit, violation, codes = check_parse_contract(text)
    outcome.parsed = circuit if violation is None else None
    outcome.reject_codes = codes
    outcome.add("parse-contract", violation)
    if circuit is not None and violation is None:
        outcome.add("bench-roundtrip", check_bench_roundtrip(circuit))
        outcome.add("verilog-roundtrip", check_verilog_roundtrip(circuit))
        outcome.add("sim-equivalence", check_sim_equivalence(circuit, rng))
    outcome.add("scan-invariants", check_scan_invariants(rng))
    outcome.add("cost-model", check_cost_model(rng))
    return outcome
