"""Grammar-aware ``.bench`` mutator.

Three mutation tiers, all deterministic from the generator passed in:

- **token** mutations understand the statement grammar (swap a gate
  type, rename one net occurrence, add/drop/duplicate an argument,
  mangle a name with metacharacters),
- **line** mutations treat the file as a list of statements (delete,
  duplicate, swap, truncate, join, inject garbage),
- **structural** mutations splice in whole statements that violate a
  specific netlist invariant (duplicate declarations, redefinitions,
  self-loops), plus *behavior-preserving* ones (consistent renames,
  comment and whitespace noise) that must NOT change the parse result --
  the metamorphic half of the oracle suite.
- **encoding** mutations perturb bytes the parser must tolerate or
  reject cleanly (BOM, CRLF, trailing blanks, non-ASCII junk).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

import numpy as np

_ASSIGN_RE = re.compile(r"^(\s*)([^=\s]+)(\s*=\s*)([A-Za-z0-9_]+)\(([^)]*)\)\s*$")
_GATE_NAMES = ["AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUF",
               "INV", "BUFF", "DFF", "CONST0", "CONST1", "FROB", "MUX"]
_JUNK_LINES = [
    "this is not bench",
    "INPUT()",
    "OUTPUT(",
    "= AND(a, b)",
    "x == NOT(y)",
    "INPUT(a b)",
    "x = AND(a,, b)",
    "\x00\x01\x02",
    "ＩＮＰＵＴ(ａ)",
]


def _rint(rng: np.random.Generator, lo: int, hi: int) -> int:
    return int(rng.integers(lo, hi + 1))


def _nets_of(lines: List[str]) -> List[str]:
    """Every net token mentioned anywhere, in first-appearance order."""
    seen: Dict[str, None] = {}
    for line in lines:
        m = _ASSIGN_RE.match(line)
        if m:
            seen.setdefault(m.group(2))
            for a in m.group(5).split(","):
                if a.strip():
                    seen.setdefault(a.strip())
        else:
            dm = re.match(r"^\s*(INPUT|OUTPUT)\((.*)\)\s*$", line, re.I)
            if dm and dm.group(2).strip():
                seen.setdefault(dm.group(2).strip())
    return list(seen)


# ---------------------------------------------------------------------------
# Token-level mutations (each takes lines + rng, edits in place)
# ---------------------------------------------------------------------------

def _assign_lines(lines: List[str]) -> List[int]:
    return [i for i, l in enumerate(lines) if _ASSIGN_RE.match(l)]


def _mut_swap_gate_type(lines: List[str], rng: np.random.Generator) -> None:
    idxs = _assign_lines(lines)
    if not idxs:
        return
    i = idxs[int(rng.integers(len(idxs)))]
    m = _ASSIGN_RE.match(lines[i])
    new = _GATE_NAMES[int(rng.integers(len(_GATE_NAMES)))]
    lines[i] = f"{m.group(1)}{m.group(2)}{m.group(3)}{new}({m.group(5)})"


def _mut_rename_one_use(lines: List[str], rng: np.random.Generator) -> None:
    nets = _nets_of(lines)
    if not nets:
        return
    net = nets[int(rng.integers(len(nets)))]
    hits = [i for i, l in enumerate(lines) if net in l]
    if not hits:
        return
    i = hits[int(rng.integers(len(hits)))]
    lines[i] = lines[i].replace(net, net + "_mut", 1)


def _mut_arg_surgery(lines: List[str], rng: np.random.Generator) -> None:
    idxs = _assign_lines(lines)
    if not idxs:
        return
    i = idxs[int(rng.integers(len(idxs)))]
    m = _ASSIGN_RE.match(lines[i])
    args = [a.strip() for a in m.group(5).split(",") if a.strip()]
    op = _rint(rng, 0, 2)
    if op == 0 and args:           # drop one argument
        del args[int(rng.integers(len(args)))]
    elif op == 1 and args:         # duplicate one argument
        args.append(args[int(rng.integers(len(args)))])
    else:                          # append an unknown net
        args.append(f"zz{_rint(rng, 0, 99)}")
    lines[i] = (
        f"{m.group(1)}{m.group(2)}{m.group(3)}{m.group(4)}({', '.join(args)})"
    )


def _mut_mangle_name(lines: List[str], rng: np.random.Generator) -> None:
    nets = _nets_of(lines)
    if not nets:
        return
    net = nets[int(rng.integers(len(nets)))]
    bad = net + ["(", ")", ",", "=", " x", "#y"][_rint(rng, 0, 5)]
    hits = [i for i, l in enumerate(lines) if net in l]
    if hits:
        i = hits[int(rng.integers(len(hits)))]
        lines[i] = lines[i].replace(net, bad, 1)


# ---------------------------------------------------------------------------
# Line-level mutations
# ---------------------------------------------------------------------------

def _mut_delete_line(lines: List[str], rng: np.random.Generator) -> None:
    if lines:
        del lines[int(rng.integers(len(lines)))]


def _mut_duplicate_line(lines: List[str], rng: np.random.Generator) -> None:
    if lines:
        i = int(rng.integers(len(lines)))
        lines.insert(i, lines[i])


def _mut_swap_lines(lines: List[str], rng: np.random.Generator) -> None:
    if len(lines) >= 2:
        i, j = int(rng.integers(len(lines))), int(rng.integers(len(lines)))
        lines[i], lines[j] = lines[j], lines[i]


def _mut_truncate_line(lines: List[str], rng: np.random.Generator) -> None:
    if lines:
        i = int(rng.integers(len(lines)))
        if lines[i]:
            lines[i] = lines[i][: int(rng.integers(len(lines[i])))]


def _mut_join_lines(lines: List[str], rng: np.random.Generator) -> None:
    if len(lines) >= 2:
        i = int(rng.integers(len(lines) - 1))
        lines[i] = lines[i] + " " + lines.pop(i + 1)


def _mut_garbage_line(lines: List[str], rng: np.random.Generator) -> None:
    junk = _JUNK_LINES[int(rng.integers(len(_JUNK_LINES)))]
    lines.insert(int(rng.integers(len(lines) + 1)), junk)


# ---------------------------------------------------------------------------
# Structural mutations
# ---------------------------------------------------------------------------

def _mut_duplicate_decl(lines: List[str], rng: np.random.Generator) -> None:
    decls = [l for l in lines if re.match(r"^\s*(INPUT|OUTPUT)\(", l, re.I)]
    if decls:
        lines.append(decls[int(rng.integers(len(decls)))])


def _mut_redefine_net(lines: List[str], rng: np.random.Generator) -> None:
    nets = _nets_of(lines)
    if nets:
        net = nets[int(rng.integers(len(nets)))]
        other = nets[int(rng.integers(len(nets)))]
        lines.append(f"{net} = NOT({other})")


def _mut_self_loop(lines: List[str], rng: np.random.Generator) -> None:
    nets = _nets_of(lines)
    src = nets[int(rng.integers(len(nets)))] if nets else "a"
    k = _rint(rng, 0, 9999)
    lines.append(f"loop{k} = AND(loop{k}, {src})")


# ---------------------------------------------------------------------------
# Behavior-preserving mutations (metamorphic: parse must be unaffected
# modulo the documented equivalence -- see oracles.check_metamorphic)
# ---------------------------------------------------------------------------

def _mut_comment_noise(lines: List[str], rng: np.random.Generator) -> None:
    i = int(rng.integers(len(lines) + 1))
    lines.insert(i, f"# noise {_rint(rng, 0, 9999)}")


def _mut_whitespace_noise(lines: List[str], rng: np.random.Generator) -> None:
    if lines:
        i = int(rng.integers(len(lines)))
        lines[i] = "  " + lines[i] + "   "


#: (name, weight, fn) -- names are stable for reports and tests.
MUTATIONS: List[Tuple[str, float, Callable[[List[str], np.random.Generator], None]]] = [
    ("swap-gate-type", 2.0, _mut_swap_gate_type),
    ("rename-one-use", 2.0, _mut_rename_one_use),
    ("arg-surgery", 2.0, _mut_arg_surgery),
    ("mangle-name", 1.0, _mut_mangle_name),
    ("delete-line", 2.0, _mut_delete_line),
    ("duplicate-line", 1.5, _mut_duplicate_line),
    ("swap-lines", 1.0, _mut_swap_lines),
    ("truncate-line", 1.0, _mut_truncate_line),
    ("join-lines", 1.0, _mut_join_lines),
    ("garbage-line", 1.0, _mut_garbage_line),
    ("duplicate-decl", 1.0, _mut_duplicate_decl),
    ("redefine-net", 1.0, _mut_redefine_net),
    ("self-loop", 1.0, _mut_self_loop),
    ("comment-noise", 0.5, _mut_comment_noise),
    ("whitespace-noise", 0.5, _mut_whitespace_noise),
]


def mutate_bench(
    text: str,
    rng: np.random.Generator,
    n_mutations: int = 3,
) -> Tuple[str, List[str]]:
    """Apply ``n_mutations`` weighted-random mutations to ``text``.

    Returns ``(mutated_text, applied_mutation_names)``.  Encoding-level
    perturbations (BOM / CRLF / trailing newline loss) are applied as a
    final coin flip on the whole buffer.
    """
    lines = text.splitlines()
    names, weights, fns = zip(*MUTATIONS)
    p = np.asarray(weights, dtype=float)
    p /= p.sum()
    applied: List[str] = []
    for _ in range(max(0, n_mutations)):
        k = int(rng.choice(len(fns), p=p))
        fns[k](lines, rng)
        applied.append(names[k])
    out = "\n".join(lines) + "\n"
    r = rng.random()
    if r < 0.05:
        out = "\ufeff" + out
        applied.append("bom")
    elif r < 0.10:
        out = out.replace("\n", "\r\n")
        applied.append("crlf")
    elif r < 0.13:
        out = out.rstrip("\n")
        applied.append("no-final-newline")
    return out, applied
