"""Versioned regression corpus of minimized fuzz findings.

Every crasher or oracle violation found by the fuzzer is minimized and
checked in under ``tests/corpus/`` with a machine-readable header::

    # fuzz-corpus v1
    # expect: reject E006 E007
    # fingerprint: 3f2a9c11d0be
    # oracle: parse-contract
    # found: seed=0 case=17
    a = NOT(a)
    ...

``expect`` records the *correct post-fix* behavior: ``reject`` with the
given error codes, or ``pass``.  Header lines are ``.bench`` comments,
so the whole file feeds straight into the parser on replay; the tier-1
suite replays every entry (tests/test_corpus_replay.py), which is what
turns each fuzzing discovery into a permanent regression test.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.fuzz.oracles import run_oracles

FORMAT_LINE = "# fuzz-corpus v1"
_EXPECT_RE = re.compile(r"^#\s*expect:\s*(pass|reject)((?:\s+E\d{3})*)\s*$")
_FIELD_RE = re.compile(r"^#\s*(fingerprint|oracle|found):\s*(.*?)\s*$")


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus file: the input and its expected disposition."""

    path: Path
    text: str                 # full file content (header included)
    expect: str               # 'pass' | 'reject'
    expect_codes: Tuple[str, ...]
    fingerprint: str = ""
    oracle: str = ""
    found: str = ""


class CorpusFormatError(ValueError):
    """A corpus file is missing or mangles its v1 header."""


def load_entry(path: Union[str, Path]) -> CorpusEntry:
    path = Path(path)
    text = path.read_text()
    lines = text.splitlines()
    first = lines[0].lstrip("\ufeff").strip() if lines else ""
    if first != FORMAT_LINE:
        raise CorpusFormatError(f"{path}: missing '{FORMAT_LINE}' header")
    expect: Optional[str] = None
    codes: Tuple[str, ...] = ()
    fields = {"fingerprint": "", "oracle": "", "found": ""}
    for line in lines[1:]:
        if not line.startswith("#"):
            break
        m = _EXPECT_RE.match(line)
        if m:
            expect = m.group(1)
            codes = tuple(m.group(2).split())
            continue
        f = _FIELD_RE.match(line)
        if f:
            fields[f.group(1)] = f.group(2)
    if expect is None:
        raise CorpusFormatError(f"{path}: missing '# expect:' line")
    if expect == "reject" and not codes:
        raise CorpusFormatError(f"{path}: 'reject' needs at least one E-code")
    return CorpusEntry(
        path=path, text=text, expect=expect, expect_codes=codes,
        fingerprint=fields["fingerprint"], oracle=fields["oracle"],
        found=fields["found"],
    )


def load_corpus(directory: Union[str, Path]) -> List[CorpusEntry]:
    directory = Path(directory)
    return [load_entry(p) for p in sorted(directory.glob("*.bench"))]


def render_entry(
    body: str,
    expect: str,
    expect_codes: Tuple[str, ...] = (),
    fingerprint: str = "",
    oracle: str = "",
    found: str = "",
) -> str:
    """Serialize a corpus file (header + minimized ``.bench`` body)."""
    expect_line = f"# expect: {expect}"
    if expect_codes:
        expect_line += " " + " ".join(expect_codes)
    # A leading BOM is only a BOM at byte 0; hoist it above the header so
    # the reassembled file exercises the same bytes the fuzzer saw.
    bom = ""
    if body.startswith("\ufeff"):
        bom, body = "\ufeff", body[1:]
    header = [bom + FORMAT_LINE, expect_line]
    if fingerprint:
        header.append(f"# fingerprint: {fingerprint}")
    if oracle:
        header.append(f"# oracle: {oracle}")
    if found:
        header.append(f"# found: {found}")
    return "\n".join(header) + "\n" + body.rstrip("\n") + "\n"


def save_entry(
    directory: Union[str, Path],
    name: str,
    body: str,
    expect: str,
    expect_codes: Tuple[str, ...] = (),
    fingerprint: str = "",
    oracle: str = "",
    found: str = "",
) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.bench"
    path.write_text(
        render_entry(body, expect, expect_codes, fingerprint, oracle, found)
    )
    return path


def replay_entry(entry: CorpusEntry, seed: int = 0) -> Optional[str]:
    """Replay one entry; returns a failure message or ``None`` if it holds.

    The oracle battery must produce no violations (and no crash -- a
    crash propagates to the caller, which is exactly what a regression
    should do), and the parse disposition must match ``expect``.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    outcome = run_oracles(entry.text, rng)
    if outcome.violations:
        details = "; ".join(f"{o}: {m}" for o, m in outcome.violations)
        return f"oracle violation on replay: {details}"
    if entry.expect == "pass" and outcome.disposition != "pass":
        return (
            f"expected clean parse, got {outcome.disposition} "
            f"{outcome.reject_codes}"
        )
    if entry.expect == "reject":
        if outcome.disposition != "reject":
            return f"expected reject, got {outcome.disposition}"
        missing = [c for c in entry.expect_codes if c not in outcome.reject_codes]
        if missing:
            return (
                f"expected codes {list(entry.expect_codes)}, parser "
                f"reported {outcome.reject_codes} (missing {missing})"
            )
    return None
