"""The fuzz campaign driver: cases -> sandbox -> oracles -> triage.

``run_fuzz(FuzzConfig(...))`` is the whole pipeline:

1. :func:`build_cases` derives ``budget`` deterministic cases from the
   master seed (generated sources and mutated catalog/generated
   sources, interleaved),
2. each case's oracle battery runs under the :mod:`repro.fuzz.sandbox`
   budgets (or in-process with ``sandbox=False``, used by tests and by
   corpus replay),
3. failures are deduplicated into :class:`~repro.fuzz.triage.CrashBucket`
   groups, optionally minimized, and optionally written to a corpus
   directory.

Everything reported is a pure function of the config: the same seed
gives a byte-identical case list and triage report (timings are
deliberately excluded from reports).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.bench_circuits.s27 import S27_BENCH
from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.bench_parser import write_bench
from repro.fuzz.generator import GeneratorSpace, generate_bench
from repro.fuzz.mutator import mutate_bench
from repro.fuzz.oracles import run_oracles
from repro.fuzz.sandbox import (
    STATUS_KILLED,
    STATUS_OK,
    STATUS_OOM,
    STATUS_TIMEOUT,
    run_sandboxed,
)
from repro.fuzz.triage import (
    CrashBucket,
    fingerprint_exception,
    fingerprint_violation,
    minimize_bench,
)
from repro.fuzz import corpus as corpus_mod

#: Mutation sources: the real s27 netlist plus small deterministic
#: synthetic circuits (generated once, far cheaper than the catalog's
#: large stand-ins).
def _mutation_sources() -> List[Tuple[str, str]]:
    sources = [("s27", S27_BENCH)]
    for name, n_pi, n_po, n_ff, n_gates in (
        ("fz-a", 6, 2, 4, 40),
        ("fz-b", 4, 1, 0, 24),
        ("fz-c", 8, 3, 6, 64),
    ):
        spec = SyntheticSpec(
            name=name, n_pi=n_pi, n_po=n_po, n_ff=n_ff, n_gates=n_gates
        )
        sources.append((name, write_bench(synthesize(spec))))
    return sources


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic input: its id, provenance, and text."""

    case_id: int
    seed: int                # master seed (all cases share it)
    kind: str                # 'generated' | 'mutated'
    source: str              # generator space tag or mutation source name
    mutations: Tuple[str, ...]
    text: str


@dataclass(frozen=True)
class FuzzCaseResult:
    """Graceful per-case verdict; no exception escapes the runner."""

    case_id: int
    outcome: str             # 'pass' | 'reject' | 'violation' | 'crash'
                             # | 'timeout' | 'oom' | 'killed'
    oracle: str = ""
    error_type: str = ""
    fingerprint: str = ""
    message: str = ""
    reject_codes: Tuple[str, ...] = ()

    @property
    def is_failure(self) -> bool:
        return self.outcome not in ("pass", "reject")


@dataclass(frozen=True)
class FuzzConfig:
    """Everything a campaign needs; the report is a function of this."""

    budget: int = 200
    seed: int = 0
    timeout_s: float = 10.0
    mem_mb: int = 1024
    sandbox: bool = True
    minimize: bool = False
    corpus_dir: Optional[str] = None
    p_mutated: float = 0.4   # fraction of cases that mutate a known source
    space: GeneratorSpace = field(
        default_factory=lambda: GeneratorSpace(p_weird=0.35)
    )


@dataclass
class FuzzReport:
    """Deterministic campaign summary."""

    config_seed: int
    budget: int
    counts: Dict[str, int]
    buckets: List[CrashBucket]
    results: List[FuzzCaseResult]
    corpus_files: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no case crashed, violated, hung, or OOMed."""
        return not any(r.is_failure for r in self.results)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.config_seed,
            "budget": self.budget,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "buckets": [
                {
                    "fingerprint": b.fingerprint,
                    "kind": b.kind,
                    "oracle": b.oracle,
                    "error_type": b.error_type,
                    "message": b.message,
                    "case_ids": b.case_ids,
                    "minimized_lines": (
                        len(b.minimized.splitlines())
                        if b.minimized is not None else None
                    ),
                }
                for b in self.buckets
            ],
            "corpus_files": self.corpus_files,
        }

    def render(self) -> str:
        lines = [
            f"fuzz: seed={self.config_seed} budget={self.budget}",
            "  "
            + "  ".join(
                f"{k}={self.counts[k]}" for k in sorted(self.counts)
            ),
        ]
        if not self.buckets:
            lines.append("no unique failures")
        for bucket in self.buckets:
            lines.append(bucket.render())
        if self.corpus_files:
            lines.append("corpus:")
            lines.extend(f"  {p}" for p in self.corpus_files)
        return "\n".join(lines)


def _case_rng(seed: int, case_id: int, lane: str) -> np.random.Generator:
    """An independent, reproducible stream per (seed, case, lane)."""
    ss = np.random.SeedSequence(
        entropy=seed, spawn_key=(case_id, zlib.crc32(lane.encode()))
    )
    return np.random.Generator(np.random.PCG64(ss))


def build_cases(config: FuzzConfig) -> List[FuzzCase]:
    """Derive the deterministic case list for a campaign."""
    sources = _mutation_sources()
    cases: List[FuzzCase] = []
    for i in range(config.budget):
        rng = _case_rng(config.seed, i, "gen")
        if rng.random() < config.p_mutated:
            name, base = sources[int(rng.integers(len(sources)))]
            n_mut = int(rng.integers(1, 6))
            text, applied = mutate_bench(base, rng, n_mutations=n_mut)
            cases.append(
                FuzzCase(
                    case_id=i, seed=config.seed, kind="mutated",
                    source=name, mutations=tuple(applied), text=text,
                )
            )
        else:
            text = generate_bench(rng, config.space)
            if rng.random() < 0.3:
                text, applied = mutate_bench(text, rng, n_mutations=2)
            else:
                applied = []
            cases.append(
                FuzzCase(
                    case_id=i, seed=config.seed, kind="generated",
                    source="space", mutations=tuple(applied), text=text,
                )
            )
    return cases


def execute_case_inline(text: str, seed: int, case_id: int) -> Dict[str, Any]:
    """Run the oracle battery in-process; returns a plain result dict.

    This is the function the sandbox forks around, and what minimization
    and corpus replay call directly.  Expected rejects come back as
    ``reject``; contract-breaking exceptions come back as ``crash`` with
    a fingerprint -- they never propagate.
    """
    rng = _case_rng(seed, case_id, "oracle")
    try:
        outcome = run_oracles(text, rng)
    except MemoryError:
        raise  # the sandbox converts this to an 'oom' verdict
    except Exception as exc:  # noqa: BLE001 - crashes are data here
        return {
            "outcome": "crash",
            "oracle": "parse-contract",
            "error_type": type(exc).__name__,
            "fingerprint": fingerprint_exception(exc),
            "message": f"{type(exc).__name__}: {exc}",
            "reject_codes": (),
        }
    if outcome.violations:
        oracle, message = outcome.violations[0]
        return {
            "outcome": "violation",
            "oracle": oracle,
            "error_type": "",
            "fingerprint": fingerprint_violation(oracle, message),
            "message": message,
            "reject_codes": tuple(outcome.reject_codes),
        }
    return {
        "outcome": outcome.disposition,   # 'pass' | 'reject'
        "oracle": "",
        "error_type": "",
        "fingerprint": "",
        "message": "",
        "reject_codes": tuple(outcome.reject_codes),
    }


def _run_case(config: FuzzConfig, case: FuzzCase) -> FuzzCaseResult:
    if not config.sandbox:
        payload = execute_case_inline(case.text, case.seed, case.case_id)
        return FuzzCaseResult(case_id=case.case_id, **payload)
    verdict = run_sandboxed(
        execute_case_inline,
        (case.text, case.seed, case.case_id),
        timeout_s=config.timeout_s,
        mem_bytes=config.mem_mb * 1024 * 1024 if config.mem_mb else None,
    )
    if verdict.status == STATUS_OK:
        payload = dict(verdict.payload or {})
        payload["reject_codes"] = tuple(payload.get("reject_codes", ()))
        return FuzzCaseResult(case_id=case.case_id, **payload)
    outcome = {
        STATUS_TIMEOUT: "timeout",
        STATUS_OOM: "oom",
        STATUS_KILLED: "killed",
    }[verdict.status]
    return FuzzCaseResult(
        case_id=case.case_id,
        outcome=outcome,
        oracle="sandbox",
        error_type=verdict.status,
        fingerprint=f"{outcome}-budget",
        message=verdict.detail,
    )


def _still_fails_predicate(config: FuzzConfig, case: FuzzCase, fingerprint: str):
    def predicate(candidate: str) -> bool:
        payload = execute_case_inline(candidate, case.seed, case.case_id)
        return payload["fingerprint"] == fingerprint
    return predicate


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run a full campaign; never raises on a bad case."""
    cases = build_cases(config)
    results: List[FuzzCaseResult] = []
    counts: Dict[str, int] = {}
    buckets: Dict[str, CrashBucket] = {}
    case_by_id = {c.case_id: c for c in cases}

    for case in cases:
        result = _run_case(config, case)
        results.append(result)
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
        if result.is_failure:
            bucket = buckets.get(result.fingerprint)
            if bucket is None:
                bucket = CrashBucket(
                    fingerprint=result.fingerprint,
                    kind=result.outcome,
                    oracle=result.oracle,
                    error_type=result.error_type,
                    message=result.message,
                )
                buckets[result.fingerprint] = bucket
            bucket.case_ids.append(result.case_id)
            bucket.seeds.append(case.seed)

    ordered = [buckets[k] for k in sorted(buckets)]

    corpus_files: List[str] = []
    for bucket in ordered:
        rep = case_by_id[bucket.case_ids[0]]
        # Timeouts/OOMs are budget findings, not minimizable crashes.
        if config.minimize and bucket.kind in ("crash", "violation"):
            bucket.minimized = minimize_bench(
                rep.text,
                _still_fails_predicate(config, rep, bucket.fingerprint),
            )
        if config.corpus_dir and bucket.kind in ("crash", "violation"):
            body = bucket.minimized if bucket.minimized is not None else rep.text
            name = f"{bucket.kind}-{bucket.fingerprint}"
            path = corpus_mod.save_entry(
                config.corpus_dir, name, body,
                # A fresh finding documents today's *wrong* behavior; the
                # expectation is filled in by hand once the bug is fixed.
                expect="reject" if bucket.kind == "crash" else "pass",
                expect_codes=("E000",) if bucket.kind == "crash" else (),
                fingerprint=bucket.fingerprint,
                oracle=bucket.oracle,
                found=f"seed={config.seed} case={bucket.case_ids[0]}",
            )
            corpus_files.append(str(path))

    return FuzzReport(
        config_seed=config.seed,
        budget=config.budget,
        counts=counts,
        buckets=ordered,
        results=results,
        corpus_files=corpus_files,
    )
