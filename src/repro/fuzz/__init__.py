"""Deterministic fuzzing and triage of the netlist ingestion pipeline.

The subsystem has five layers, each usable on its own:

- :mod:`repro.fuzz.generator` -- seeded random ``.bench`` sources
  (parameterized interface/depth/fanout, optionally biased toward
  lint-hard shapes: self-loops, cycles, dead logic, undriven nets),
- :mod:`repro.fuzz.mutator` -- a grammar-aware ``.bench`` mutator
  (token, line, structural, and encoding-level mutations),
- :mod:`repro.fuzz.oracles` -- metamorphic and differential checks run
  on every case (parse contract, write/parse fixpoint, event-sim vs
  compiled-sim equivalence, scan and cost-model invariants),
- :mod:`repro.fuzz.sandbox` + :mod:`repro.fuzz.runner` -- per-case
  wall-clock and memory budgets enforced in a child process, with
  graceful :class:`~repro.fuzz.runner.FuzzCaseResult` reporting,
- :mod:`repro.fuzz.triage` + :mod:`repro.fuzz.corpus` -- crash
  deduplication by stable stack fingerprint, delta-debugging
  minimization, and the versioned regression corpus under
  ``tests/corpus/`` that replays in tier-1.

Everything is deterministic from one master seed: the same seed
produces a byte-identical case list and triage report.
"""

from repro.fuzz.generator import GeneratorSpace, generate_bench
from repro.fuzz.mutator import mutate_bench
from repro.fuzz.oracles import OracleOutcome, run_oracles
from repro.fuzz.runner import (
    FuzzCase,
    FuzzCaseResult,
    FuzzConfig,
    FuzzReport,
    build_cases,
    run_fuzz,
)
from repro.fuzz.triage import CrashBucket, fingerprint_exception, minimize_bench

__all__ = [
    "GeneratorSpace",
    "generate_bench",
    "mutate_bench",
    "OracleOutcome",
    "run_oracles",
    "FuzzCase",
    "FuzzCaseResult",
    "FuzzConfig",
    "FuzzReport",
    "build_cases",
    "run_fuzz",
    "CrashBucket",
    "fingerprint_exception",
    "minimize_bench",
]
