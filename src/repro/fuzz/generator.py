"""Seeded random ``.bench`` source generator.

Unlike :mod:`repro.bench_circuits.synthetic` (which builds well-formed
:class:`Circuit` objects for experiments), this generator emits *text*,
because text is what the ingestion pipeline ingests: statement order is
shuffled (exercising forward references), aliases (``INV``/``BUFF``) and
mixed keyword case appear, and -- when ``weird`` shapes are enabled --
the output is deliberately broken in the exact ways the structural lint
rules describe (self-loops, combinational cycles, undriven references,
duplicate declarations, dead logic).

Determinism: every byte of the output is a pure function of the
``numpy`` generator passed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

#: Gate spellings the generator may emit (parser-accepted names).
_GATE_SPELLINGS: Tuple[Tuple[str, int, int], ...] = (
    # (name, min_fanin, max_fanin) as emitted; parser caps at 64.
    ("AND", 2, 4),
    ("NAND", 2, 4),
    ("OR", 2, 4),
    ("NOR", 2, 4),
    ("XOR", 2, 3),
    ("XNOR", 2, 3),
    ("NOT", 1, 1),
    ("INV", 1, 1),
    ("BUF", 1, 1),
    ("BUFF", 1, 1),
)

#: Lint-hard shapes the generator can inject, one code per shape.
WEIRD_SHAPES: Tuple[str, ...] = (
    "self_loop",       # x = AND(x, a)
    "comb_cycle",      # a = AND(b, pi); b = NOT(a)
    "undriven_ref",    # gate reads a net no statement drives
    "dup_input",       # INPUT(a) twice
    "dup_output",      # OUTPUT(y) twice
    "redefine",        # same net driven by two gates
    "dead_logic",      # cone that reaches no PO / flop
    "dangling",        # gate output nobody reads
    "const_gates",     # CONST0/CONST1 sources
    "long_names",      # very long net names
    "deep_fanin",      # one gate with huge fan-in (may exceed arity cap)
)


@dataclass(frozen=True)
class GeneratorSpace:
    """Knobs bounding the random circuit space.

    Interface ranges are inclusive.  ``p_weird`` is the probability that
    a generated source receives at least one lint-hard shape from
    ``weird_shapes``; 0.0 yields only well-formed netlists.
    """

    n_pi: Tuple[int, int] = (1, 10)
    n_po: Tuple[int, int] = (1, 5)
    n_ff: Tuple[int, int] = (0, 8)
    n_gates: Tuple[int, int] = (1, 80)
    recent_window: int = 24      # locality window for fan-in picks (depth bias)
    p_shuffle: float = 0.5       # shuffle statement order (forward refs)
    p_weird: float = 0.0
    weird_shapes: Tuple[str, ...] = WEIRD_SHAPES
    max_weird: int = 2

    def __post_init__(self) -> None:
        for lo, hi in (self.n_pi, self.n_po, self.n_ff, self.n_gates):
            if lo < 0 or hi < lo:
                raise ValueError(f"bad range ({lo}, {hi})")
        unknown = sorted(set(self.weird_shapes) - set(WEIRD_SHAPES))
        if unknown:
            raise ValueError(f"unknown weird shapes: {unknown}")


def _rint(rng: np.random.Generator, lo: int, hi: int) -> int:
    return int(rng.integers(lo, hi + 1))


def _pick(rng: np.random.Generator, seq: List[str]) -> str:
    return seq[int(rng.integers(len(seq)))]


def generate_bench(
    rng: np.random.Generator, space: GeneratorSpace = GeneratorSpace()
) -> str:
    """Generate one ``.bench`` source from ``rng`` within ``space``."""
    n_pi = _rint(rng, *space.n_pi)
    n_po = _rint(rng, *space.n_po)
    n_ff = _rint(rng, *space.n_ff)
    n_gates = max(_rint(rng, *space.n_gates), max(1, n_po + n_ff))

    pis = [f"I{i}" for i in range(n_pi)]
    qs = [f"Q{i}" for i in range(n_ff)]
    pool = pis + qs if pis + qs else ["I0"]

    decls = [f"INPUT({p})" for p in pis]
    body: List[str] = []
    gate_outs: List[str] = []
    for g in range(n_gates):
        out = f"n{g}"
        name, lo, hi = _GATE_SPELLINGS[int(rng.integers(len(_GATE_SPELLINGS)))]
        fanin = _rint(rng, lo, hi)
        window = pool[-min(len(pool), space.recent_window):]
        picks: List[str] = []
        for _ in range(fanin):
            src = _pick(rng, window if rng.random() < 0.7 else pool)
            if src not in picks:
                picks.append(src)
        if len(picks) < lo:  # dedup starved the gate; fall back to unary
            name, picks = "NOT", picks[:1] or [_pick(rng, pool)]
        if rng.random() < 0.1:
            name = name.lower()
        body.append(f"{out} = {name}({', '.join(picks)})")
        pool.append(out)
        gate_outs.append(out)

    # Flops latch late signals; POs observe late signals (deep cones).
    tail = pool[-max(1, len(pool) // 2):]
    for q in qs:
        body.append(f"{q} = DFF({_pick(rng, tail)})")
    po_nets: List[str] = []
    for _ in range(n_po):
        net = _pick(rng, tail)
        if net not in po_nets:
            po_nets.append(net)
    decls.extend(f"OUTPUT({net})" for net in po_nets)

    if space.p_weird > 0 and rng.random() < space.p_weird:
        n_weird = _rint(rng, 1, max(1, space.max_weird))
        for _ in range(n_weird):
            shape = space.weird_shapes[
                int(rng.integers(len(space.weird_shapes)))
            ]
            _inject_weird(rng, shape, decls, body, pool, gate_outs, pis, po_nets)

    lines = decls + body
    if space.p_shuffle > 0 and rng.random() < space.p_shuffle:
        order = rng.permutation(len(lines))
        lines = [lines[int(i)] for i in order]
    return "\n".join(lines) + "\n"


def _inject_weird(
    rng: np.random.Generator,
    shape: str,
    decls: List[str],
    body: List[str],
    pool: List[str],
    gate_outs: List[str],
    pis: List[str],
    po_nets: List[str],
) -> None:
    """Splice one lint-hard shape into the statement lists, in place."""
    fresh = f"w{len(pool)}_{_rint(rng, 0, 999)}"
    src = _pick(rng, pool)
    if shape == "self_loop":
        body.append(f"{fresh} = AND({fresh}, {src})")
    elif shape == "comb_cycle":
        a, b = fresh + "a", fresh + "b"
        body.append(f"{a} = AND({b}, {src})")
        body.append(f"{b} = NOT({a})")
    elif shape == "undriven_ref":
        body.append(f"{fresh} = OR({src}, ghost_{fresh})")
    elif shape == "dup_input":
        if pis:
            decls.append(f"INPUT({_pick(rng, pis)})")
    elif shape == "dup_output":
        if po_nets:
            decls.append(f"OUTPUT({_pick(rng, po_nets)})")
    elif shape == "redefine":
        if gate_outs:
            body.append(f"{_pick(rng, gate_outs)} = NOT({src})")
    elif shape == "dead_logic":
        # A two-gate cone nobody observes.
        body.append(f"{fresh} = NAND({src}, {_pick(rng, pool)})")
        body.append(f"{fresh}x = NOT({fresh})")
        body.append(f"{fresh}y = BUF({fresh}x)")
        body.append(f"{fresh}x2 = AND({fresh}y, {fresh})")
    elif shape == "dangling":
        body.append(f"{fresh} = NOT({src})")
    elif shape == "const_gates":
        body.append(f"{fresh} = CONST{_rint(rng, 0, 1)}()")
        body.append(f"{fresh}u = BUF({fresh})")
    elif shape == "long_names":
        long = "L" + "x" * _rint(rng, 200, 2000)
        body.append(f"{long} = NOT({src})")
        body.append(f"{fresh} = BUF({long})")
    elif shape == "deep_fanin":
        width = _rint(rng, 32, 80)
        args = ", ".join(
            _pick(rng, pool) if rng.random() < 0.3 else f"{fresh}_a{i}"
            for i in range(width)
        )
        body.append(f"{fresh} = AND({args})")
        for i in range(width):
            body.append(f"{fresh}_a{i} = NOT({src})")
