"""Crash triage: stable fingerprints, dedup buckets, minimization.

A *crasher* is any case whose oracle battery raised an exception that
is not part of the ingestion contract (``BenchParseError`` is a clean
reject, everything else is a bug) or produced an oracle violation.

Fingerprints are deliberately coarse: exception type plus the sequence
of ``(file basename, function)`` frames inside this package.  Line
numbers are excluded so a fingerprint survives unrelated edits; two
distinct bugs in one function dedupe together, which in practice is the
right trade for a regression corpus (docs/fuzzing.md discusses this).
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Callable, List, Optional, Tuple


def fingerprint_exception(exc: BaseException) -> str:
    """A 12-hex stable fingerprint of an exception's type and stack."""
    frames: List[Tuple[str, str]] = []
    for frame in traceback.extract_tb(exc.__traceback__):
        frames.append((PurePath(frame.filename).name, frame.name))
    payload = type(exc).__name__ + "|" + "|".join(
        f"{f}:{fn}" for f, fn in frames
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def fingerprint_violation(oracle: str, message: str) -> str:
    """Fingerprint of an oracle violation: oracle plus message *shape*.

    Digits are stripped so per-case details (vector indices, counts, net
    numbers) do not split one bug across many buckets.
    """
    shape = "".join(ch for ch in message if not ch.isdigit())
    payload = f"violation|{oracle}|{shape}"
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass
class CrashBucket:
    """All cases sharing one fingerprint."""

    fingerprint: str
    kind: str                 # 'crash' | 'violation' | 'timeout' | 'oom' | 'killed'
    oracle: str
    error_type: str           # exception class name, or '' for violations
    message: str              # first representative message
    case_ids: List[int] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)
    minimized: Optional[str] = None

    def render(self) -> str:
        head = (
            f"[{self.fingerprint}] {self.kind} x{len(self.case_ids)} "
            f"oracle={self.oracle}"
        )
        if self.error_type:
            head += f" type={self.error_type}"
        first = self.message.splitlines()[0] if self.message else ""
        lines = [head, f"  first case: {self.case_ids[0]}  msg: {first}"]
        if self.minimized is not None:
            n = len(self.minimized.splitlines())
            lines.append(f"  minimized to {n} line(s)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Delta-debugging minimization
# ---------------------------------------------------------------------------

def _ddmin(items: List[str], still_fails: Callable[[List[str]], bool]) -> List[str]:
    """Classic ddmin over a list: smallest sublist keeping the failure."""
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and still_fails(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                # restart scanning the shrunk list
                start = 0
                continue
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            n = min(n * 2, len(items))
    return items


def _shrink_tokens(
    lines: List[str], still_fails: Callable[[List[str]], bool]
) -> List[str]:
    """Token pass: drop individual gate arguments where possible."""
    for i in range(len(lines)):
        while True:
            line = lines[i]
            if "(" not in line or ")" not in line:
                break
            head, _, rest = line.partition("(")
            body = rest.rsplit(")", 1)[0]
            args = [a.strip() for a in body.split(",") if a.strip()]
            if len(args) <= 1:
                break
            shrunk = False
            for k in range(len(args)):
                trial = list(lines)
                kept = args[:k] + args[k + 1:]
                trial[i] = f"{head}({', '.join(kept)})"
                if still_fails(trial):
                    lines = trial
                    shrunk = True
                    break
            if not shrunk:
                break
    return lines


def minimize_bench(
    text: str,
    still_fails: Callable[[str], bool],
    max_checks: int = 2000,
) -> str:
    """Minimize ``text`` while ``still_fails`` keeps returning True.

    Line-granular ddmin first, then a token pass that drops gate
    arguments.  ``still_fails`` is called on candidate *texts* and must
    be cheap (the runner passes an in-process oracle re-run pinned to
    the original failure fingerprint).  ``max_checks`` bounds the total
    number of predicate calls so minimization can never hang the fuzzer.
    """
    budget = {"left": max_checks}

    def lines_fail(lines: List[str]) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        return still_fails("\n".join(lines) + "\n")

    lines = text.splitlines()
    if not still_fails(text) or not lines:
        return text
    lines = _ddmin(lines, lines_fail)
    lines = _shrink_tokens(lines, lines_fail)
    return "\n".join(lines) + "\n"
