"""Random limited-scan BIST for full-scan circuits.

A reproduction of I. Pomeranz, "Random Limited-Scan to Improve Random
Pattern Testing of Scan Circuits", DAC 2001.

Quick start::

    from repro import LimitedScanBist, load_circuit

    bist = LimitedScanBist(load_circuit("s208"))
    report = bist.first_complete()
    print(report.row())

Subpackages:

- :mod:`repro.circuit` -- gate-level netlists, ``.bench`` I/O, transforms
- :mod:`repro.analysis` -- design-rule & testability linting (``repro lint``)
- :mod:`repro.simulation` -- bit-parallel logic simulation, scan model
- :mod:`repro.faults` -- stuck-at faults, collapsing, fault simulation
- :mod:`repro.atpg` -- PODEM and detectability classification
- :mod:`repro.rpg` -- LFSRs and reproducible random sources
- :mod:`repro.bench_circuits` -- s27 + synthetic benchmark stand-ins
- :mod:`repro.core` -- the paper's procedures, cost model and baselines
- :mod:`repro.experiments` -- drivers regenerating each paper table
"""

from repro.bench_circuits import available_circuits, load_circuit
from repro.circuit import Circuit, parse_bench, write_bench
from repro.core import (
    BistConfig,
    LimitedScanBist,
    Procedure2Result,
    enumerate_combinations,
    generate_ts0,
    ncyc0,
)
from repro.faults import FaultSimulator, ScanTest, collapse_faults, generate_faults
from repro.atpg import classify_faults

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "parse_bench",
    "write_bench",
    "load_circuit",
    "available_circuits",
    "BistConfig",
    "LimitedScanBist",
    "Procedure2Result",
    "generate_ts0",
    "enumerate_combinations",
    "ncyc0",
    "FaultSimulator",
    "ScanTest",
    "generate_faults",
    "collapse_faults",
    "classify_faults",
    "__version__",
]
