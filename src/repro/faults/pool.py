"""Persistent shared-memory worker pool with batched candidate evaluation.

The legacy :mod:`repro.faults.sharding` path pays two per-dispatch taxes
that dominate Procedure 2's wall clock: the worker pool is rebuilt (and
the simulator re-pickled) around every fault-simulation call, and every
task ships the full test list through the executor's pickle channel.
This module removes both, and adds a third, larger lever:

- **Persistent workers.**  One pool lives for the whole
  :func:`~repro.core.procedure2.run_procedure2` session.  The compiled
  circuit (simulator), ``TS0``, the config, the observation policy and
  the collapsed target-fault list are published **once** into a
  ``multiprocessing.shared_memory`` segment; workers attach lazily and
  cache the decoded state for the life of the process.
- **Seed-only dispatch.**  A dispatch ships candidate specs
  (``(iteration, d1)`` pairs) plus the shard's fault *indices* into the
  published target list -- a few hundred bytes.  Workers rebuild each
  candidate ``TS(I, D1)`` deterministically from ``seed(I)``
  (Procedure 1 is pure), caching built test sets per ``(I, D1)``.
- **Batched candidate evaluation.**  A whole batch of ``(I, D1)``
  candidates is scored in one fanned-out pass
  (:meth:`~repro.faults.fault_sim.FaultSimulator.simulate_candidates`),
  amortizing the Python-level per-time-unit evaluation overhead across
  the batch.  The pass returns raw first-detection rows against the
  dispatch-time remaining list; because per-fault records are
  independent of which other faults are simulated, the **exact** serial
  result -- dict contents and insertion order -- for each candidate
  against its *then-current* remaining list is reconstructed without
  re-simulation (:func:`reconstruct_hits`).  Speculation is therefore
  free of result drift: outputs are byte-identical to the serial loop
  for any ``candidate_batch`` and any ``n_jobs``.

Segment lifecycle and crash safety
----------------------------------

Segments are named ``rlspool_<fingerprint12>_<pid>_<seq>`` where the
fingerprint is :func:`repro.robustness.checkpoint.session_fingerprint`
over (circuit name, result-affecting config, target-fault list), so
concurrent sessions never collide and a resumed session maps to the same
identity.  The parent creates the segment (auto-registered with the
``multiprocessing`` resource tracker) and is the only unlinker:
``close()`` unlinks deterministically, a ``weakref.finalize`` backstop
unlinks on garbage collection/interpreter exit, and if the parent is
SIGKILLed the resource-tracker process (which outlives it) unlinks the
registered segment.  Workers only ever attach and never unregister, so
a SIGKILLed worker cannot strip the parent's protection.

Failure recovery mirrors the legacy path's shard-granular
:class:`~repro.faults.sharding.RecoveryPolicy` semantics: per-shard
timeout watchdog, deterministic seeded backoff retries, pool respawn
after a crash or hang (the shared segment survives respawn), serial
rescue in the parent for a shard that keeps failing, and a structured
:class:`~repro.robustness.degradation.DegradationReport` of every
action.
"""

from __future__ import annotations

import itertools
import os
import pickle
import sys
import time
import weakref
from concurrent.futures import CancelledError, Executor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.fault_sim import (
    DetectionRecord,
    ObservationPolicy,
    ScanTest,
)
from repro.faults.model import Fault
from repro.faults.sharding import (
    WHERE_RANK,
    RecoveryPolicy,
    available_cpu_count,
    resolve_n_jobs,
    shard_faults,
)
from repro.robustness.chaos import ChaosPlan, execute_injected
from repro.robustness.degradation import DegradationReport

#: A raw first-detection row:
#: ``(fault, batch_rank, test_index, time_unit, where)``.
DetectionRow = Tuple[Fault, int, int, int, str]

#: Canonical ``where`` objects.  Worker payloads come back through
#: pickle, which does not intern strings, so every dispatch would
#: otherwise contribute fresh (equal but distinct) ``where`` objects.
#: The values a result holds then pickle with a different memo structure
#: than the serial run's single shared constant -- breaking byte-for-byte
#: result identity even though every comparison is equal.  Mapping each
#: returned ``where`` through this table restores the serial identity
#: graph.  The canonical object is the *interpreter-interned* one --
#: the same choice ``DetectionRecord`` itself makes -- so rows and
#: records agree no matter which module's string literal seeded them
#: (hyphenated literals are not auto-interned, so each module gets its
#: own copy).
_WHERE_CANON = {where: sys.intern(where) for where in WHERE_RANK}

#: One candidate test set by seed: ``(iteration, d1)``; ``d1 is None``
#: denotes ``TS0`` itself.  Procedure 2's candidate sequence is fully
#: deterministic -- ``I = 1..max_iterations`` crossed with the caller's
#: D1 preference order (``d1_values`` as configured, or the
#: testability-pivoted reordering under
#: ``candidate_bias == 'testability'``) -- so a dispatch may batch
#: specs across iteration boundaries.
CandidateSpec = Tuple[int, Optional[int]]

#: Cache bound on built ``TS(I, D1)`` test sets (worker and parent side).
_TS_CACHE_LIMIT = 64

#: Column budget of the batched pass; must match the
#: ``simulate_candidates``/``candidates_compatible`` default.
_MAX_COLS = 4096


def reconstruct_hits(
    rows: Sequence[DetectionRow],
    order: Dict[Fault, int],
    remaining: Sequence[Fault],
) -> Dict[Fault, DetectionRecord]:
    """The exact serial ``simulate_grouped`` result from raw rows.

    ``rows`` are first detections of one candidate against the
    dispatch-time fault list; ``order`` maps every dispatch-time fault to
    its position in that list; ``remaining`` is the (ordered) subset the
    serial call would have been given.  Returns a dict equal to the
    serial result in both content and insertion order:

    - per fault, the governing row is the one with the smallest
      ``batch_rank`` (serial processes test-shape batches in first
      appearance order with fault dropping in between);
    - insertion order is batch rank ascending, then
      ``(time_unit, WHERE_RANK, position)`` -- the serial recorder's
      call order and its word/bit ascending scan.  Position in the
      dispatch-time list orders identically to position in any of its
      ordered subsets, so one ``order`` map serves every ``remaining``.

    Keys and ``DetectionRecord.fault`` are the *caller's* fault objects,
    not the equal copies that crossed the worker process boundary:
    serial results alias each fault once (key and record share the
    object), and aliasing is visible to ``pickle`` -- without interning,
    a pooled result serializes differently from a byte-identical serial
    one even though every comparison by value passes.  Interning also
    drops the unpickled duplicates immediately instead of keeping one
    extra Fault per detection alive in the table.
    """
    canon = {fault: fault for fault in remaining}
    best: Dict[Fault, DetectionRow] = {}
    for row in rows:
        fault = row[0]
        if fault in canon and (fault not in best or row[1] < best[fault][1]):
            best[fault] = row
    hits: Dict[Fault, DetectionRecord] = {}
    for rank in sorted({row[1] for row in best.values()}):
        batch = [row for row in best.values() if row[1] == rank]
        batch.sort(key=lambda r: (r[3], WHERE_RANK[r[4]], order[r[0]]))
        for fault, _rank, test_index, time_unit, where in batch:
            fault = canon[fault]
            hits[fault] = DetectionRecord(
                fault=fault,
                test_index=test_index,
                time_unit=time_unit,
                where=where,
            )
    return hits


# ----------------------------------------------------------------------
# Worker-process side.
# ----------------------------------------------------------------------
#: Per-process cache of decoded shared-memory state, keyed by segment
#: name.  Fork workers start empty and attach on first task; the decoded
#: state (compiled simulator, TS0, config) then lives as long as the
#: worker, so every later dispatch is seed-only.
_POOL_STATE: Dict[str, Dict[str, Any]] = {}


def _attach_state(segment_name: str) -> Dict[str, Any]:
    state = _POOL_STATE.get(segment_name)
    if state is not None:
        return state
    shm = shared_memory.SharedMemory(name=segment_name)
    try:
        size = int.from_bytes(bytes(shm.buf[:8]), "little")
        payload = pickle.loads(bytes(shm.buf[8 : 8 + size]))
    finally:
        # Attach also registered the segment with the resource tracker;
        # that is deliberate (idempotent set semantics) and must NOT be
        # undone here: unregistering from a worker would strip the
        # parent's SIGKILL protection.
        shm.close()
    payload["ts_cache"] = {}
    _POOL_STATE[segment_name] = payload
    return payload


def _build_spec(
    spec: CandidateSpec,
    ts0: List[ScanTest],
    config: Any,
    n_sv: int,
) -> List[ScanTest]:
    from repro.core.limited_scan import build_limited_scan_test_set

    iteration, d1 = spec
    if d1 is None:
        return ts0
    return build_limited_scan_test_set(ts0, iteration, d1, config, n_sv)


def _candidate_test_sets(
    state: Dict[str, Any], specs: Sequence[CandidateSpec]
) -> List[List[ScanTest]]:
    """Rebuild candidate test sets from seeds, with a bounded cache."""
    cache: Dict[CandidateSpec, List[ScanTest]] = state["ts_cache"]
    out = []
    for spec in specs:
        if spec not in cache:
            if len(cache) >= _TS_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[spec] = _build_spec(
                spec, state["ts0"], state["config"], state["n_sv"]
            )
        out.append(cache[spec])
    return out


def _evaluate_spec(
    state: Dict[str, Any],
    specs: Sequence[CandidateSpec],
    fault_indices: Sequence[int],
) -> List[List[tuple]]:
    simulator = state["simulator"]
    test_sets = _candidate_test_sets(state, specs)
    faults = [state["targets"][j] for j in fault_indices]
    rows = simulator.simulate_candidates(
        test_sets, faults, state["policy"], max_cols=_MAX_COLS
    )
    if rows is None:  # pragma: no cover - parent pre-checks compatibility
        raise RuntimeError(
            "candidate preconditions failed in worker; parent should have "
            "taken the serial fallback"
        )
    return rows


def _pool_worker_task(
    segment_name: str,
    specs: Tuple[CandidateSpec, ...],
    fault_indices: Tuple[int, ...],
    inject: Optional[str],
    hang_seconds: float,
) -> List[List[tuple]]:
    state = _attach_state(segment_name)
    return execute_injected(
        inject,
        hang_seconds,
        lambda: _evaluate_spec(state, specs, fault_indices),
    )


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
_SEGMENT_SEQ = itertools.count()


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


class PersistentWorkerPool:
    """Executor + published session state for one Procedure 2 session.

    Lifecycle: ``publish`` (shared-memory segment, at construction) ->
    ``submit`` dispatches (workers fork on first use and attach to the
    segment) -> ``kill`` on failure (workers respawn, segment survives)
    -> ``close`` (workers down, segment unlinked).
    """

    def __init__(
        self, session_state: Dict[str, Any], n_jobs: int, fingerprint: str
    ) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        data = pickle.dumps(session_state)
        shm = None
        for _ in range(128):
            name = (
                f"rlspool_{fingerprint[:12]}_{os.getpid()}_"
                f"{next(_SEGMENT_SEQ)}"
            )
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=8 + len(data)
                )
                break
            except FileExistsError:  # pragma: no cover - stale leftover
                continue
        if shm is None:  # pragma: no cover - 128 stale segments
            raise RuntimeError("could not allocate a pool segment name")
        shm.buf[:8] = len(data).to_bytes(8, "little")
        shm.buf[8 : 8 + len(data)] = data
        self.segment_name = shm.name
        self._shm = shm
        # At-most-once unlink: explicit close(), garbage collection and
        # interpreter exit all funnel through this finalizer; a parent
        # SIGKILL is covered by the resource tracker's own registration.
        self._finalizer = weakref.finalize(self, _release_segment, shm)
        self._executor: Optional[Executor] = None

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            # Never spawn more workers than cores: extra workers cannot
            # add parallelism, but round-robin dispatch across them makes
            # every per-worker cache (test-set, injection) run cold.
            workers = min(self.n_jobs, available_cpu_count())
            self._executor = ProcessPoolExecutor(max_workers=workers)
        return self._executor

    def submit(
        self,
        specs: Tuple[CandidateSpec, ...],
        fault_indices: Tuple[int, ...],
        inject: Optional[str],
        hang_seconds: float,
    ) -> Future:
        return self._ensure_executor().submit(
            _pool_worker_task,
            self.segment_name,
            specs,
            fault_indices,
            inject,
            hang_seconds,
        )

    def kill(self) -> None:
        """Terminate the workers (hung ones too); keep the segment.

        The next :meth:`submit` respawns fresh workers, which re-attach
        to the already-published segment -- a respawn never re-publishes.
        """
        if self._executor is not None:
            processes = list(getattr(self._executor, "_processes", {}).values())
            self._executor.shutdown(wait=False, cancel_futures=True)
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            self._executor = None

    def close(self) -> None:
        self.kill()
        self._finalizer()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _valid_rows(payload: Any, n_candidates: int, shard_size: int) -> bool:
    """Sanity-check a worker's rows before trusting them in the merge."""
    if not isinstance(payload, list) or len(payload) != n_candidates:
        return False
    for cand_rows in payload:
        if not isinstance(cand_rows, list):
            return False
        for row in cand_rows:
            if not (isinstance(row, tuple) and len(row) == 5):
                return False
            fault_pos, batch_rank, test_index, time_unit, where = row
            if not (
                isinstance(fault_pos, int) and 0 <= fault_pos < shard_size
            ):
                return False
            if not (
                isinstance(batch_rank, int)
                and isinstance(test_index, int)
                and isinstance(time_unit, int)
            ):
                return False
            if where not in WHERE_RANK:
                return False
    return True


class _Table:
    """Candidate-result base: lazily-built ``.tests``.

    ``tests_src`` is either the built test list or a zero-argument
    callable producing it.  The Procedure 2 loop touches ``.tests`` only
    for the pair bookkeeping of a *selected* candidate, so the pool path
    -- where workers rebuild test sets from seeds anyway -- skips the
    parent-side build entirely for the (vast majority of) candidates
    that detect nothing new.
    """

    def __init__(self, tests_src: Any) -> None:
        if callable(tests_src):
            self._tests_thunk = tests_src
            self._tests: Optional[List[ScanTest]] = None
        else:
            self._tests_thunk = None
            self._tests = tests_src

    @property
    def tests(self) -> List[ScanTest]:
        if self._tests is None:
            self._tests = self._tests_thunk()
        return self._tests


class LazyTable(_Table):
    """Per-candidate result that defers to ``simulate_grouped``.

    The compatibility path: used for simulators without
    :meth:`simulate_candidates` (wrappers, the legacy sharded front-end)
    and whenever the batched pass's exactness preconditions fail.  One
    :meth:`hits_for` call issues exactly one ``simulate_grouped`` call,
    so dispatch counts match the historical loop precisely.
    """

    def __init__(self, simulator: Any, tests_src: Any, policy: Any) -> None:
        super().__init__(tests_src)
        self.simulator = simulator
        self.policy = policy

    def hits_for(
        self, remaining: Sequence[Fault]
    ) -> Dict[Fault, DetectionRecord]:
        return self.simulator.simulate_grouped(
            self.tests, list(remaining), self.policy
        )


class ReconTable(_Table):
    """Per-candidate raw rows plus the reconstruction order map.

    Holds one candidate's first-detection rows against the
    dispatch-time fault list; :meth:`hits_for` reconstructs the exact
    serial result for any later (smaller) remaining list without
    re-simulation.
    """

    def __init__(
        self,
        rows: List[DetectionRow],
        order: Dict[Fault, int],
        tests_src: Any,
    ) -> None:
        super().__init__(tests_src)
        self.rows = rows
        self.order = order

    def hits_for(
        self, remaining: Sequence[Fault]
    ) -> Dict[Fault, DetectionRecord]:
        return reconstruct_hits(self.rows, self.order, remaining)


class CandidateEvaluator:
    """Procedure 2's fault-simulation engine, batching and pool included.

    One evaluator lives per Procedure 2 session.  The loop asks it to
    score candidate test sets (:meth:`evaluate_ts0`,
    :meth:`evaluate_pairs`) and receives result *tables*; consuming a
    table against the then-current remaining list yields exactly what a
    serial ``simulate_grouped`` call would have -- whichever back-end
    produced it:

    - simulators without ``simulate_candidates`` (test wrappers, the
      legacy ``pool='sharded'`` front-end): plain lazy pass-through,
      ``batch == 1``;
    - ``n_jobs <= 1``: the in-process batched pass;
    - ``n_jobs > 1``: the :class:`PersistentWorkerPool`, shard-granular
      recovery included.

    ``shards`` overrides the dispatch's shard count (used by chaos tests
    to force multi-shard dispatches regardless of host cores); the
    default adapts to the hardware: ``min(n_jobs, cpu_count, n_words)``.
    """

    def __init__(
        self,
        simulator: Any,
        ts0: List[ScanTest],
        config: Any,
        n_sv: int,
        policy: Optional[ObservationPolicy],
        n_jobs: int,
        targets: Sequence[Fault],
        circuit_name: str = "",
        recovery: Optional[RecoveryPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.simulator = simulator
        self.ts0 = list(ts0)
        self.config = config
        self.n_sv = n_sv
        self.policy = policy
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.targets = list(targets)
        self.circuit_name = circuit_name
        self.recovery = recovery or RecoveryPolicy()
        self.chaos = chaos
        self.shards = shards
        self.degradation = DegradationReport()
        self._can_batch = hasattr(simulator, "simulate_candidates")
        self._use_pool = (
            self._can_batch
            and self.n_jobs > 1
            and getattr(config, "pool", "persistent") == "persistent"
        )
        self._pool: Optional[PersistentWorkerPool] = None
        self._pool_unavailable = False
        self._target_pos = {f: i for i, f in enumerate(self.targets)}
        self._dispatches = 0
        self._ts_cache: Dict[CandidateSpec, List[ScanTest]] = {}
        self._length_partition_cache: Optional[List[List[int]]] = None

    @property
    def batch(self) -> int:
        """Candidates the Procedure 2 loop should hand over per call."""
        if not self._can_batch:
            return 1
        return max(1, getattr(self.config, "candidate_batch", 1))

    # ------------------------------------------------------------------
    def _tests_for(self, spec: CandidateSpec) -> List[ScanTest]:
        """Build (or fetch) one candidate test set, bounded cache."""
        if spec not in self._ts_cache:
            if len(self._ts_cache) >= _TS_CACHE_LIMIT:
                self._ts_cache.pop(next(iter(self._ts_cache)))
            self._ts_cache[spec] = _build_spec(
                spec, self.ts0, self.config, self.n_sv
            )
        return self._ts_cache[spec]

    def _length_partition(self) -> List[List[int]]:
        """``TS0`` indices grouped by test length, first-appearance order."""
        if self._length_partition_cache is None:
            groups: Dict[int, List[int]] = {}
            for i, test in enumerate(self.ts0):
                groups.setdefault(test.length, []).append(i)
            self._length_partition_cache = list(groups.values())
        return self._length_partition_cache

    def _compatible(
        self, specs: Sequence[CandidateSpec], n_faults: int
    ) -> bool:
        """``candidates_compatible`` without building the test sets.

        Under ``reseed_per_test`` (the paper's Procedure 1) the schedule
        of a test depends only on ``(seed(I), length, d1, d2)``, so every
        candidate's batch partition is exactly "group ``TS0`` indices by
        test length" -- including ``TS0`` itself, whose empty schedules
        also coincide per length.  The remaining precondition is the
        single-chunk bound, a pure arithmetic check.  The one-stream
        ablation falls back to building the candidates and asking the
        simulator.
        """
        if n_faults <= 0 or not specs:
            return False
        if getattr(self.config, "reseed_per_test", False):
            n_groups = (n_faults + 63) // 64
            chunk_tests = max(1, _MAX_COLS // max(n_groups, 1))
            return all(
                len(idx) <= chunk_tests for idx in self._length_partition()
            )
        test_sets = [self._tests_for(spec) for spec in specs]
        return self.simulator.candidates_compatible(
            test_sets, n_faults, max_cols=_MAX_COLS
        )

    # ------------------------------------------------------------------
    def evaluate_ts0(self, remaining: Sequence[Fault]) -> Any:
        """One table for the initial test set."""
        return self.evaluate_specs([(0, None)], remaining)[0]

    def evaluate_specs(
        self,
        specs: Sequence[CandidateSpec],
        remaining: Sequence[Fault],
    ) -> List[Any]:
        """One table per candidate spec, in ``specs`` order.

        Specs may span iteration boundaries: Procedure 2's candidate
        sequence is deterministic, so the loop streams it in
        ``self.batch``-sized windows and consumes the tables against
        whatever the remaining list has shrunk to by then --
        :func:`reconstruct_hits` keeps that exact.  Each table carries
        its candidate's test set on ``.tests`` (built lazily).
        """
        specs = [tuple(spec) for spec in specs]
        remaining = list(remaining)

        def lazy() -> List[Any]:
            return [
                LazyTable(
                    self.simulator,
                    lambda spec=spec: self._tests_for(spec),
                    self.policy,
                )
                for spec in specs
            ]

        if not self._can_batch:
            return lazy()
        if not self._use_pool or self._pool_unavailable:
            if len(specs) == 1:
                # Single candidate, in-process: the plain serial call is
                # the batched pass with C=1, minus overhead.
                return lazy()
            test_sets = [self._tests_for(spec) for spec in specs]
            rows = self.simulator.simulate_candidates(
                test_sets, remaining, self.policy, max_cols=_MAX_COLS
            )
            if rows is None:
                return lazy()
            order = {f: i for i, f in enumerate(remaining)}
            return [
                ReconTable(
                    [(remaining[r[0]], r[1], r[2], r[3], r[4]) for r in cand],
                    order,
                    ts,
                )
                for cand, ts in zip(rows, test_sets)
            ]
        if not self._compatible(specs, len(remaining)):
            return lazy()
        dispatch = self._dispatches
        self._dispatches += 1
        merged = self._run_pool_dispatch(dispatch, tuple(specs), remaining)
        order = {f: i for i, f in enumerate(remaining)}
        return [
            ReconTable(cand, order, lambda spec=spec: self._tests_for(spec))
            for cand, spec in zip(merged, specs)
        ]

    # -- the hardened pool dispatch ------------------------------------
    def _shard_count(self, n_faults: int) -> int:
        n_words = max(1, (n_faults + 63) // 64)
        if self.shards is not None:
            return max(1, min(self.shards, n_words))
        cores = available_cpu_count()
        return max(1, min(self.n_jobs, cores, n_words))

    def _rescue_serial(
        self,
        specs: Tuple[CandidateSpec, ...],
        shard: List[Fault],
    ) -> List[List[DetectionRow]]:
        test_sets = [self._tests_for(spec) for spec in specs]
        rows = self.simulator.simulate_candidates(
            test_sets, shard, self.policy, max_cols=_MAX_COLS
        )
        if rows is None:  # pragma: no cover - compatibility is monotone
            raise RuntimeError(
                "serial rescue hit incompatible candidates after the "
                "dispatch-level compatibility check passed"
            )
        return [
            [(shard[r[0]], r[1], r[2], r[3], r[4]) for r in cand]
            for cand in rows
        ]

    def _run_pool_dispatch(
        self,
        dispatch: int,
        specs: Tuple[CandidateSpec, ...],
        remaining: List[Fault],
    ) -> List[List[DetectionRow]]:
        recovery = self.recovery
        shards = shard_faults(remaining, self._shard_count(len(remaining)))
        shard_indices = [
            tuple(self._target_pos[f] for f in shard) for shard in shards
        ]
        out: List[Optional[List[List[DetectionRow]]]] = [None] * len(shards)
        attempts = [0] * len(shards)
        pending = list(range(len(shards)))

        while pending:
            submit_failure: Optional[BrokenProcessPool] = None
            futures: Dict[int, Future] = {}
            try:
                if self._pool is None:
                    self._pool = self._make_pool()
                pool = self._pool
                futures = {
                    i: pool.submit(
                        specs,
                        shard_indices[i],
                        self._chaos_action(dispatch, i, attempts[i]),
                        self.chaos.hang_seconds if self.chaos else 0.0,
                    )
                    for i in pending
                }
            except BrokenProcessPool as exc:
                # Every worker died between dispatches (e.g. OOM-killed
                # while idle): the executor flags itself broken at submit
                # time.  Recoverable exactly like an in-flight crash --
                # respawn below and retry the pending shards.
                submit_failure = exc
            except Exception as exc:
                # The pool cannot be built or fed (fork failure, shm
                # exhaustion, unpicklable state): rescue everything
                # still pending serially and stay in-process from now on.
                for i in pending:
                    self.degradation.record(
                        dispatch, i, attempts[i], "pool-unavailable",
                        "serial", repr(exc),
                    )
                    out[i] = self._rescue_serial(specs, shards[i])
                self._pool_unavailable = True
                self.close_pool()
                break

            failed: List[Tuple[int, str, str]] = []
            pool_dead = False
            deadline = (
                None
                if recovery.shard_timeout is None
                else time.perf_counter() + recovery.shard_timeout
            )
            if submit_failure is not None:
                failed = [
                    (i, "crash", repr(submit_failure)) for i in pending
                ]
                pending = []
                pool_dead = True
            for i in pending:
                future = futures[i]
                try:
                    if pool_dead:
                        if not future.done():
                            failed.append(
                                (i, "pool-lost",
                                 "pool torn down after an earlier failure")
                            )
                            continue
                        payload = future.result(timeout=0)
                    elif deadline is None:
                        payload = future.result()
                    else:
                        budget = max(0.0, deadline - time.perf_counter())
                        payload = future.result(timeout=budget)
                except FuturesTimeoutError:
                    failed.append(
                        (i, "timeout",
                         f"no result within {recovery.shard_timeout}s")
                    )
                    pool_dead = True
                    continue
                except BrokenProcessPool as exc:
                    failed.append((i, "crash", repr(exc)))
                    pool_dead = True
                    continue
                except CancelledError:
                    failed.append((i, "pool-lost", "future cancelled"))
                    continue
                except Exception as exc:
                    failed.append((i, "error", repr(exc)))
                    continue
                if not _valid_rows(payload, len(specs), len(shards[i])):
                    failed.append(
                        (i, "invalid-result",
                         "shard returned malformed candidate rows")
                    )
                    continue
                shard = shards[i]
                out[i] = [
                    [
                        (shard[r[0]], r[1], r[2], r[3], _WHERE_CANON[r[4]])
                        for r in cand
                    ]
                    for cand in payload
                ]

            if pool_dead and self._pool is not None:
                # Respawn the workers; the published segment survives, so
                # the respawned pool re-attaches without re-publishing.
                self._pool.kill()
                self.degradation.pool_respawns += 1

            next_pending: List[int] = []
            for i, kind, detail in failed:
                if attempts[i] >= recovery.max_retries:
                    self.degradation.record(
                        dispatch, i, attempts[i], kind, "serial", detail
                    )
                    out[i] = self._rescue_serial(specs, shards[i])
                else:
                    self.degradation.record(
                        dispatch, i, attempts[i], kind, "retry", detail
                    )
                    delay = recovery.backoff_delay(dispatch, i, attempts[i])
                    if delay > 0:
                        time.sleep(delay)
                    attempts[i] += 1
                    next_pending.append(i)
            pending = next_pending

        merged: List[List[DetectionRow]] = [[] for _ in specs]
        for shard_rows in out:
            assert shard_rows is not None
            for c, cand_rows in enumerate(shard_rows):
                merged[c].extend(cand_rows)
        return merged

    def _make_pool(self) -> PersistentWorkerPool:
        from repro.robustness.checkpoint import session_fingerprint

        fingerprint = session_fingerprint(
            self.circuit_name, self.config, self.targets
        )
        session_state = {
            "simulator": self.simulator,
            "ts0": self.ts0,
            "config": self.config,
            "policy": self.policy,
            "targets": self.targets,
            "n_sv": self.n_sv,
        }
        return PersistentWorkerPool(session_state, self.n_jobs, fingerprint)

    def _chaos_action(
        self, dispatch: int, shard: int, attempt: int
    ) -> Optional[str]:
        if self.chaos is None:
            return None
        return self.chaos.action(dispatch, shard, attempt)

    # ------------------------------------------------------------------
    def close_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def close(self) -> None:
        self.close_pool()

    def __enter__(self) -> "CandidateEvaluator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
