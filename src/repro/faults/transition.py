"""Transition (gross-delay) fault simulation.

The whole point of the paper's multi-vector tests is *at-speed* testing:
vectors applied on consecutive functional clocks exercise delay defects
that single-vector full-scan tests cannot.  This module adds the standard
transition fault model on top of the stuck-at machinery:

- a **slow-to-rise** fault on net ``n`` makes ``n`` present the old value
  0 for one cycle whenever it should rise; **slow-to-fall** dually;
- a test detects the fault iff some functional cycle *launches* the
  transition (fault-free value flips into the faulty polarity's initial
  value at cycle ``u-1`` and flips away at ``u``) and the resulting
  one-cycle stuck value propagates to an observation point -- at the
  primary outputs of cycle ``u`` or, through the captured state, to any
  later observation (limited-scan-out bits, final scan-out).

Launch conditions are evaluated on the fault-free machine (the classical
two-frame approximation); once launched, the fault effect propagates
through the faulty machine's state like any stuck-at effect, so
*multi-cycle* tests genuinely detect more transition faults than
single-vector ones -- exactly the paper's motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuit.netlist import Circuit
from repro.faults.fault_sim import (
    DetectionRecord,
    ObservationPolicy,
    ScanTest,
)
from repro.faults.model import Fault, FaultGraph
from repro.simulation.compiled import Injections
from repro.simulation.scan import full_scan_state, limited_shift

RISE = "rise"
FALL = "fall"


@dataclass(frozen=True)
class TransitionFault:
    """A slow-to-rise or slow-to-fall fault on a net (stem or branch)."""

    site: str
    edge: str  # RISE or FALL
    consumer: Optional[str] = None
    pin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.edge not in (RISE, FALL):
            raise ValueError(f"edge must be 'rise' or 'fall', got {self.edge}")

    @property
    def stuck_value(self) -> int:
        """The value the net is stuck at during the launch cycle."""
        return 0 if self.edge == RISE else 1

    def as_stuck_at(self) -> Fault:
        """The stuck-at fault injected while the transition is late."""
        return Fault(
            site=self.site,
            value=self.stuck_value,
            consumer=self.consumer,
            pin=self.pin,
        )

    def __str__(self) -> str:
        kind = "slow-to-rise" if self.edge == RISE else "slow-to-fall"
        if self.consumer is not None:
            return f"{self.site}->{self.consumer}.{self.pin} {kind}"
        return f"{self.site} {kind}"


def generate_transition_faults(circuit: Circuit) -> List[TransitionFault]:
    """Both transition faults on every stem (branch sites are included
    for nets with fanout, mirroring the stuck-at universe)."""
    from repro.faults.model import generate_faults

    faults: List[TransitionFault] = []
    seen = set()
    for f in generate_faults(circuit):
        key = (f.site, f.consumer, f.pin)
        if key in seen:
            continue
        seen.add(key)
        for edge in (RISE, FALL):
            faults.append(
                TransitionFault(
                    site=f.site, edge=edge, consumer=f.consumer, pin=f.pin
                )
            )
    return faults


class TransitionFaultSimulator:
    """Parallel transition-fault simulation for full-scan tests.

    Packs 64 faults per word like the stuck-at simulator.  Per functional
    cycle, each fault's stuck value is injected only if the fault-free
    machine launches the transition at that cycle; the injected effect
    then propagates through the faulty machine's captured state.
    """

    def __init__(self, circuit_or_graph: Union[Circuit, FaultGraph]) -> None:
        if isinstance(circuit_or_graph, FaultGraph):
            self.graph = circuit_or_graph
        else:
            self.graph = FaultGraph(circuit_or_graph)
        self.model = self.graph.model
        self._n_sv = len(self.model.q_idx)

    def simulate(
        self,
        tests: Sequence[ScanTest],
        faults: Sequence[TransitionFault],
        policy: Optional[ObservationPolicy] = None,
    ) -> Dict[TransitionFault, DetectionRecord]:
        policy = policy or ObservationPolicy()
        remaining = list(faults)
        detected: Dict[TransitionFault, DetectionRecord] = {}
        for t_idx, test in enumerate(tests):
            if not remaining:
                break
            hits = self._simulate_test(test, remaining, policy)
            for fault, (u, where) in hits.items():
                detected[fault] = DetectionRecord(
                    fault=fault, test_index=t_idx, time_unit=u, where=where
                )
            remaining = [f for f in remaining if f not in hits]
        return detected

    # ------------------------------------------------------------------
    def _fault_free_pass(
        self, test: ScanTest, site_rows: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray, np.ndarray]:
        """Reference run recording PO words, scan-out words, final state,
        and the per-cycle values of every fault site (as bits)."""
        model = self.model
        state = full_scan_state(self._n_sv, test.si, 1)
        vals = model.alloc(1)
        po_words: List[np.ndarray] = []
        scan_words: List[np.ndarray] = []
        site_vals = np.zeros((test.length, len(site_rows)), dtype=bool)
        for u, vector in enumerate(test.vectors):
            k, fill = test.step(u)
            if k > 0:
                state, out = limited_shift(state, k, list(fill))
                scan_words.append(out[:, 0].copy())
            else:
                scan_words.append(np.zeros(0, dtype=np.uint64))
            model.set_inputs_from_bits(vals, vector)
            vals[model.q_idx, :] = state
            model.eval(vals)
            po_words.append(vals[model.po_idx, 0].copy())
            site_vals[u] = vals[site_rows, 0] != 0
            state = vals[model.d_idx, :].copy()
        return po_words, scan_words, state, site_vals

    def _simulate_test(
        self,
        test: ScanTest,
        faults: Sequence[TransitionFault],
        policy: ObservationPolicy,
    ) -> Dict[TransitionFault, Tuple[int, str]]:
        model = self.model
        sites = np.array(
            [self.graph.signal_of(f.as_stuck_at()) for f in faults],
            dtype=np.intp,
        )
        stuck = np.array([f.stuck_value for f in faults], dtype=bool)
        po_ref, scan_ref, final_ref, site_vals = self._fault_free_pass(
            test, sites
        )

        n_words = (len(faults) + 63) // 64
        state = full_scan_state(self._n_sv, test.si, n_words)
        vals = model.alloc(n_words)
        seen = np.zeros(n_words, dtype=np.uint64)
        hits: Dict[TransitionFault, Tuple[int, str]] = {}

        def record(diff: np.ndarray, u: int, where: str) -> None:
            nonlocal seen
            fresh = diff & ~seen
            if not fresh.any():
                return
            for word in np.flatnonzero(fresh):
                bits = int(fresh[word])
                while bits:
                    low = bits & -bits
                    idx = word * 64 + (low.bit_length() - 1)
                    if idx < len(faults):
                        hits[faults[idx]] = (u, where)
                    bits ^= low
            seen |= fresh

        for u, vector in enumerate(test.vectors):
            k, fill = test.step(u)
            if k > 0:
                state, out = limited_shift(state, k, list(fill))
                if policy.limited_scan_out:
                    diff = out ^ scan_ref[u][:, None]
                    record(np.bitwise_or.reduce(diff, axis=0), u, "limited-scan")
            # Launch condition from the fault-free machine: the site held
            # the stuck value at u-1 and flips away at u.
            if u == 0:
                launched = np.zeros(len(faults), dtype=bool)
            else:
                launched = (site_vals[u - 1] == stuck) & (
                    site_vals[u] != stuck
                )
            entries = [
                (int(sites[i]), i // 64, i % 64, int(stuck[i]))
                for i in np.flatnonzero(launched)
            ]
            injections = (
                Injections.build(entries, model.level_of_signal)
                if entries
                else None
            )
            model.set_inputs_from_bits(vals, vector)
            vals[model.q_idx, :] = state
            model.eval(vals, injections=injections)
            if policy.primary_outputs and len(model.po_idx):
                diff = vals[model.po_idx, :] ^ po_ref[u][:, None]
                record(np.bitwise_or.reduce(diff, axis=0), u, "po")
            state = vals[model.d_idx, :].copy()

        if policy.final_scan_out and self._n_sv:
            diff = state ^ final_ref
            record(np.bitwise_or.reduce(diff, axis=0), test.length, "scan-out")
        return hits
