"""Fault dictionaries and cause-effect diagnosis.

A *fault dictionary* records, for every modelled fault, which tests of a
test set detect it (the pass/fail signature).  Given the pass/fail
outcome of a physical device under the same tests, diagnosis ranks the
faults whose signature best explains the observation -- the classical
cause-effect flow built directly on the fault simulator.

The dictionary here is a per-test detection bitmap (a "pass/fail
dictionary"); full-response dictionaries are larger but follow the same
structure and can be derived from :class:`repro.simulation.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.circuit.netlist import Circuit
from repro.faults.fault_sim import FaultSimulator, ObservationPolicy, ScanTest
from repro.faults.model import Fault, FaultGraph


@dataclass
class FaultDictionary:
    """Pass/fail signatures: ``signature[fault][t]`` is True iff test
    ``t`` detects the fault."""

    tests: List[ScanTest]
    signatures: Dict[Fault, Tuple[bool, ...]]

    @property
    def num_tests(self) -> int:
        return len(self.tests)

    def detecting_tests(self, fault: Fault) -> List[int]:
        return [
            t for t, hit in enumerate(self.signatures[fault]) if hit
        ]

    def distinguishable(self, a: Fault, b: Fault) -> bool:
        """True iff some test detects exactly one of the two faults."""
        return self.signatures[a] != self.signatures[b]

    def equivalence_groups(self) -> List[List[Fault]]:
        """Faults indistinguishable under this test set, grouped.

        Groups with more than one member bound the diagnostic resolution
        of the test set.
        """
        by_sig: Dict[Tuple[bool, ...], List[Fault]] = {}
        for fault, sig in self.signatures.items():
            by_sig.setdefault(sig, []).append(fault)
        return list(by_sig.values())

    def diagnostic_resolution(self) -> float:
        """Fraction of faults uniquely identified by their signature."""
        if not self.signatures:
            return 1.0
        unique = sum(
            1 for group in self.equivalence_groups() if len(group) == 1
        )
        return unique / len(self.signatures)


def build_dictionary(
    circuit_or_graph: Union[Circuit, FaultGraph],
    tests: Sequence[ScanTest],
    faults: Sequence[Fault],
    policy: Optional[ObservationPolicy] = None,
) -> FaultDictionary:
    """Simulate every test against every fault (no dropping).

    One grouped pass per test keeps this affordable: cost is roughly
    ``num_tests`` independent full-fault passes.
    """
    simulator = (
        FaultSimulator(circuit_or_graph)
        if not isinstance(circuit_or_graph, FaultSimulator)
        else circuit_or_graph
    )
    signatures: Dict[Fault, List[bool]] = {f: [] for f in faults}
    for test in tests:
        hits = simulator.simulate_grouped([test], faults, policy)
        for fault in faults:
            signatures[fault].append(fault in hits)
    return FaultDictionary(
        tests=list(tests),
        signatures={f: tuple(sig) for f, sig in signatures.items()},
    )


@dataclass
class DiagnosisCandidate:
    fault: Fault
    #: tests the fault explains (predicted fail and observed fail)
    explained: int
    #: predicted-fail but observed-pass (false predictions)
    mispredicted: int
    #: observed-fail but predicted-pass (unexplained fails)
    unexplained: int

    @property
    def score(self) -> Tuple[int, int, int]:
        """Rank: most explained, then fewest mispredictions/unexplained."""
        return (self.explained, -self.mispredicted, -self.unexplained)


def diagnose(
    dictionary: FaultDictionary,
    observed_failures: Sequence[bool],
    top_k: int = 10,
) -> List[DiagnosisCandidate]:
    """Rank candidate faults against an observed pass/fail vector."""
    if len(observed_failures) != dictionary.num_tests:
        raise ValueError(
            f"observed vector has {len(observed_failures)} entries, "
            f"dictionary has {dictionary.num_tests} tests"
        )
    candidates: List[DiagnosisCandidate] = []
    for fault, sig in dictionary.signatures.items():
        explained = mispredicted = unexplained = 0
        for predicted, observed in zip(sig, observed_failures):
            if predicted and observed:
                explained += 1
            elif predicted and not observed:
                mispredicted += 1
            elif observed and not predicted:
                unexplained += 1
        candidates.append(
            DiagnosisCandidate(
                fault=fault,
                explained=explained,
                mispredicted=mispredicted,
                unexplained=unexplained,
            )
        )
    candidates.sort(key=lambda c: c.score, reverse=True)
    return candidates[:top_k]


def simulate_defect(
    dictionary: FaultDictionary, fault: Fault
) -> List[bool]:
    """The pass/fail vector a device with ``fault`` would produce
    (for closed-loop diagnosis experiments)."""
    return list(dictionary.signatures[fault])
