"""Parallel-fault sequential fault simulation.

Faults are packed 64 per ``uint64`` word; the whole remaining fault list
is simulated against one test in a single pass of the compiled model per
time unit.  The fault-free machine is simulated first (one word) and every
faulty machine is compared against it at the three observation points the
paper uses:

- primary outputs at every functional time unit,
- the bits shifted out during a limited scan operation,
- the complete state at the final scan-out.

Faults are dropped at test boundaries (the standard trade-off: within one
test a detected fault keeps simulating, which is harmless).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, FaultGraph
from repro.simulation.compiled import Injections
from repro.simulation.scan import bit_to_word, full_scan_state, limited_shift

#: One limited-scan step: (shift_amount, fill_bits).
ScheduleStep = Tuple[int, Sequence[int]]


@dataclass
class ScanTest:
    """One test ``tau = (SI, T)`` with an optional limited-scan schedule."""

    si: List[int]
    vectors: List[List[int]]
    schedule: Optional[List[ScheduleStep]] = None

    @property
    def length(self) -> int:
        """The paper's test length: number of primary input vectors."""
        return len(self.vectors)

    @property
    def total_shift_cycles(self) -> int:
        """Clock cycles contributed to ``N_SH`` by this test's schedule."""
        if self.schedule is None:
            return 0
        return sum(step[0] for step in self.schedule)

    @property
    def num_limited_scans(self) -> int:
        """Time units at which a limited scan occurs (``shift > 0``)."""
        if self.schedule is None:
            return 0
        return sum(1 for step in self.schedule if step[0] > 0)

    def step(self, u: int) -> ScheduleStep:
        if self.schedule is None:
            return (0, ())
        return self.schedule[u]


@dataclass
class DetectionRecord:
    """Where and when a fault was first detected."""

    fault: Fault
    test_index: int
    time_unit: int
    where: str  # 'po', 'limited-scan', or 'scan-out'

    def __post_init__(self) -> None:
        # One canonical object per observation-point name no matter
        # which path built the record (serial recorder, pool row
        # reconstruction, shard merge).  Hyphenated literals are not
        # auto-interned by CPython, and serialized results are compared
        # byte-for-byte: a result mixing equal-but-distinct ``where``
        # strings pickles with a different memo structure than one
        # sharing a single object.
        self.where = sys.intern(self.where)


@dataclass
class ObservationPolicy:
    """Which observation mechanisms are active (ablation knob).

    ``state_taps`` lists state positions observed at *every* functional
    cycle (after capture) -- the multi-chain schemes of the paper's
    references [5]/[6] observe the last flip-flop of every scan chain
    this way.  ``None`` (the paper's own scheme) observes no taps.
    """

    primary_outputs: bool = True
    limited_scan_out: bool = True
    final_scan_out: bool = True
    state_taps: Optional[Sequence[int]] = None

    def tap_rows(self) -> Optional[np.ndarray]:
        if self.state_taps is None or len(self.state_taps) == 0:
            return None
        return np.asarray(self.state_taps, dtype=np.intp)


@dataclass
class _FaultFreeRef:
    po_words: List[np.ndarray]  # per u: (n_po,) replicated words
    scanout_words: List[np.ndarray]  # per u: (k,) replicated words
    final_state: np.ndarray  # (chain, 1)
    tap_words: List[np.ndarray]  # per u: (n_taps,) captured-state taps


class FaultSimulator:
    """Sequential stuck-at fault simulator for full-scan tests.

    Construct once per circuit (the compiled graph is reused across test
    sets), then call :meth:`simulate` with any iterable of
    :class:`ScanTest` and target faults.
    """

    def __init__(
        self,
        circuit_or_graph: Union[Circuit, FaultGraph],
        chain: Optional[Sequence[int]] = None,
    ) -> None:
        """``chain`` selects which state positions are on the scan chain
        (in scan order); ``None`` means full scan.  With partial scan the
        un-scanned flops reset to 0 at the start of every test and are not
        observed at scan-out -- the standard partial-scan test model."""
        if isinstance(circuit_or_graph, FaultGraph):
            self.graph = circuit_or_graph
        else:
            self.graph = FaultGraph(circuit_or_graph)
        self.model = self.graph.model
        self._n_sv = len(self.model.q_idx)
        self._n_pi = len(self.model.pi_idx)
        if chain is None:
            chain = list(range(self._n_sv))
        else:
            chain = list(chain)
            if sorted(set(chain)) != sorted(chain) or any(
                not 0 <= p < self._n_sv for p in chain
            ):
                raise ValueError("chain must be distinct positions in range")
        self.chain = np.array(chain, dtype=np.intp)

    def __getstate__(self) -> dict:
        # The injection cache is a per-process working set keyed by
        # object identity; never ship it through pickle (shared-memory
        # publication, worker dispatch).
        state = self.__dict__.copy()
        state.pop("_cand_inj_cache", None)
        return state

    @property
    def chain_length(self) -> int:
        """Scanned flip-flops (= N_SV under full scan)."""
        return len(self.chain)

    def _initial_state(self, si: Sequence[int], n_words: int) -> np.ndarray:
        state = np.zeros((self._n_sv, n_words), dtype=np.uint64)
        if len(self.chain):
            state[self.chain, :] = full_scan_state(
                len(self.chain), si, n_words
            )
        return state

    def _shift(
        self, state: np.ndarray, k: int, fill: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        sub, out_words = limited_shift(state[self.chain], k, fill)
        new_state = state.copy()
        new_state[self.chain] = sub
        return new_state, out_words

    # ------------------------------------------------------------------
    def simulate(
        self,
        tests: Iterable[ScanTest],
        faults: Sequence[Fault],
        policy: Optional[ObservationPolicy] = None,
    ) -> Dict[Fault, DetectionRecord]:
        """Simulate ``tests`` in order with fault dropping.

        Returns a record for every detected fault.  Stops early once every
        target fault is detected.
        """
        policy = policy or ObservationPolicy()
        remaining: List[Fault] = list(faults)
        detected: Dict[Fault, DetectionRecord] = {}

        for t_idx, test in enumerate(tests):
            self._check_test(test)
            if not remaining:
                break
            ref = self._fault_free_reference(test, policy)
            groups = [remaining[i : i + 64] for i in range(0, len(remaining), 64)]
            hits = self._simulate_faulty(test, groups, ref, policy)
            if hits:
                for (word, bit), (u, where) in hits.items():
                    fault = groups[word][bit]
                    detected[fault] = DetectionRecord(
                        fault=fault, test_index=t_idx, time_unit=u, where=where
                    )
                hit_faults = set(detected)
                remaining = [f for f in remaining if f not in hit_faults]
        return detected

    def simulate_grouped(
        self,
        tests: Sequence[ScanTest],
        faults: Sequence[Fault],
        policy: Optional[ObservationPolicy] = None,
        max_cols: int = 4096,
    ) -> Dict[Fault, DetectionRecord]:
        """Fast path: batch tests with identical (length, schedule).

        Tests of the paper's test sets come in exactly two shapes (all
        ``L_A`` tests share one schedule, all ``L_B`` tests another,
        because Procedure 1 re-seeds per test), so whole batches are
        simulated in one pass with tests laid out along the word axis
        next to the fault groups.  The detected-fault *set* is identical
        to :meth:`simulate`; only the (test, time-unit) attribution of
        first detections may differ (earliest time unit instead of
        earliest test).  ``max_cols`` bounds memory: a batch is chunked
        so that ``n_tests * n_groups <= max_cols``.
        """
        policy = policy or ObservationPolicy()
        remaining: List[Fault] = list(faults)
        detected: Dict[Fault, DetectionRecord] = {}

        batches: Dict[tuple, List[Tuple[int, ScanTest]]] = {}
        for i, test in enumerate(tests):
            self._check_test(test)
            sig = (
                test.length,
                tuple(
                    (k, tuple(fill))
                    for k, fill in (test.schedule or [(0, ())] * test.length)
                ),
            )
            batches.setdefault(sig, []).append((i, test))

        for items in batches.values():
            pos = 0
            while pos < len(items) and remaining:
                n_groups = (len(remaining) + 63) // 64
                chunk_tests = max(1, max_cols // max(n_groups, 1))
                chunk = items[pos : pos + chunk_tests]
                pos += len(chunk)
                hits = self._simulate_batch(chunk, remaining, policy)
                if hits:
                    detected.update(hits)
                    remaining = [f for f in remaining if f not in hits]
        return detected

    # ------------------------------------------------------------------
    # Batched multi-candidate evaluation (the persistent-pool fast path).
    # ------------------------------------------------------------------
    def candidate_partition(
        self, tests: Sequence[ScanTest]
    ) -> List[List[int]]:
        """:meth:`simulate_grouped`'s batch partition as test indices.

        Tests sharing ``(length, schedule)`` form one batch, in first
        appearance order -- the exact grouping ``simulate_grouped`` uses.
        """
        batches: Dict[tuple, List[int]] = {}
        for i, test in enumerate(tests):
            self._check_test(test)
            sig = (
                test.length,
                tuple(
                    (k, tuple(fill))
                    for k, fill in (test.schedule or [(0, ())] * test.length)
                ),
            )
            batches.setdefault(sig, []).append(i)
        return list(batches.values())

    def candidates_compatible(
        self,
        test_sets: Sequence[Sequence[ScanTest]],
        n_faults: int,
        max_cols: int = 4096,
    ) -> bool:
        """Whether :meth:`simulate_candidates` can reproduce the serial
        result exactly for these candidates against ``n_faults`` targets.

        Requires every candidate to induce the same batch partition and
        every batch to fit in a single ``simulate_grouped`` chunk (so the
        per-fault first-detection attribution is chunking-independent).
        The chunk condition is monotone in the fault count, so validity
        against the dispatch-time fault list implies validity against
        every later (smaller) remaining list.
        """
        if not test_sets or n_faults <= 0:
            return False
        parts = [self.candidate_partition(ts) for ts in test_sets]
        if any(p != parts[0] for p in parts[1:]):
            return False
        for idx in parts[0]:
            lengths = {len(ts[idx[0]].vectors) for ts in test_sets}
            if len(lengths) != 1:
                return False
        n_groups = (n_faults + 63) // 64
        chunk_tests = max(1, max_cols // max(n_groups, 1))
        return all(len(idx) <= chunk_tests for idx in parts[0])

    def simulate_candidates(
        self,
        test_sets: Sequence[Sequence[ScanTest]],
        faults: Sequence[Fault],
        policy: Optional[ObservationPolicy] = None,
        max_cols: int = 4096,
    ) -> Optional[List[List[tuple]]]:
        """Score several candidate test sets against ``faults`` at once.

        Every candidate (e.g. one ``TS(I, D1)``) is laid out along the
        word axis next to the others, so one compiled-model pass per time
        unit serves the whole batch -- the Python-level evaluation
        overhead (the dominant cost for s1423-class circuits) is paid
        once instead of once per candidate.

        Returns, per candidate, the raw first-detection rows
        ``(fault_pos, batch_rank, test_index, time_unit, where)`` against
        the *full* ``faults`` list.  Because per-fault detection records
        are independent of which other faults are simulated (the
        parallel-fault model), the exact serial
        ``simulate_grouped(ts, remaining)`` result -- dict contents *and*
        insertion order -- can be reconstructed from these rows for any
        ordered subset ``remaining`` of ``faults`` (see
        :func:`repro.faults.pool.reconstruct_hits`).

        Returns ``None`` when the exactness preconditions fail (see
        :meth:`candidates_compatible`); callers must then fall back to
        per-candidate :meth:`simulate_grouped`.
        """
        policy = policy or ObservationPolicy()
        faults = list(faults)
        test_sets = [list(ts) for ts in test_sets]
        if not test_sets:
            return []
        if not faults or not test_sets[0]:
            return [[] for _ in test_sets]
        if not self.candidates_compatible(test_sets, len(faults), max_cols):
            return None
        groups = [faults[i : i + 64] for i in range(0, len(faults), 64)]
        rows: List[List[tuple]] = [[] for _ in test_sets]
        for batch_rank, idx_list in enumerate(
            self.candidate_partition(test_sets[0])
        ):
            # Chunk the candidate axis so the fanned-out pass keeps
            # roughly the serial column budget: each candidate is
            # independent in the combined layout, so chunking C never
            # changes any row, it only bounds the working set.  Small
            # remaining lists (the Procedure 2 tail, where per-pass
            # Python overhead dominates) fit the whole batch; large ones
            # degrade gracefully towards per-candidate passes.
            # One candidate occupies nT * (G + 1) columns in the combined
            # layout (faulty groups plus the riding reference slot).
            per_cand = max(1, len(idx_list) * (len(groups) + 1))
            c_chunk = max(1, max_cols // per_cand)
            for c0 in range(0, len(test_sets), c_chunk):
                self._simulate_candidate_batch(
                    test_sets[c0 : c0 + c_chunk],
                    idx_list,
                    groups,
                    policy,
                    batch_rank,
                    rows[c0 : c0 + c_chunk],
                )
        return rows

    def _base_injections(self, groups: List[List[Fault]], nT: int) -> Any:
        """Single-candidate injection masks for ``groups`` x ``nT`` tests.

        The masks depend only on the fault identities (signal, value,
        word/bit position) and the test count -- not on vectors or
        schedules -- so consecutive candidate batches over an unchanged
        remaining list (Procedure 2's plateau) reuse one build.  Keys
        pin the fault objects, so an ``id`` can never be recycled while
        its entry lives; the cache is small and never pickled.
        """
        cache = getattr(self, "_cand_inj_cache", None)
        if cache is None:
            cache = self._cand_inj_cache = {}
        flat = tuple(f for group in groups for f in group)
        key = (nT, len(groups), tuple(map(id, flat)))
        hit = cache.get(key)
        if hit is not None:
            return hit[1]
        entries = []
        G = len(groups)
        for g, group in enumerate(groups):
            for bit, fault in enumerate(group):
                sig_idx = self.graph.signal_of(fault)
                for t in range(nT):
                    entries.append((sig_idx, t * G + g, bit, fault.value))
        base_inj = Injections.build(entries, self.model.level_of_signal)
        while len(cache) >= 4:
            cache.pop(next(iter(cache)))
        cache[key] = (flat, base_inj)
        return base_inj

    def _simulate_candidate_batch(
        self,
        test_sets: Sequence[Sequence[ScanTest]],
        idx_list: Sequence[int],
        groups: List[List[Fault]],
        policy: ObservationPolicy,
        batch_rank: int,
        rows: List[List[tuple]],
    ) -> None:
        """One uniform batch, all candidates side by side.

        Column layout: ``(c * nT + t) * (G + 1) + g`` with the fault-free
        reference riding along as slot ``g == G`` -- one ``model.eval``
        per time unit serves every candidate's faulty machines *and* the
        reference.  Injection masks are remapped to the ``G + 1`` stride
        and never touch the reference slots, so every column carries
        bit-for-bit the value the serial :meth:`_simulate_batch` layout
        (separate reference pass, ``G``-stride faulty pass) would give
        it, and therefore every detection row is identical to a
        per-candidate serial pass.
        """
        model = self.model
        C = len(test_sets)
        nT = len(idx_list)
        G = len(groups)
        W = G + 1  # faulty groups plus the reference slot
        cand_tests = [[ts[i] for i in idx_list] for ts in test_sets]
        length = cand_tests[0][0].length
        cand_sched = [
            [ct[0].step(u) for u in range(length)] for ct in cand_tests
        ]
        taps = policy.tap_rows()

        si_cols = np.concatenate(
            [self._si_words(ct) for ct in cand_tests], axis=1
        )  # (chain, C * nT)
        per_cand_pi = [self._pi_words(ct) for ct in cand_tests]
        pi_cols = [
            np.concatenate([per_cand_pi[c][u] for c in range(C)], axis=1)
            for u in range(length)
        ]

        # Injection masks are built once for a single candidate block and
        # retargeted to the combined stride with per-candidate column
        # offsets: the Python-level entry merge (O(faults * tests)
        # tuples) is paid once per batch -- and cached across batches,
        # since Procedure 2's plateau phase re-dispatches the same
        # remaining faults window after window.
        base_inj = self._base_injections(groups, nT)
        inj = Injections()
        offsets = np.arange(C, dtype=np.intp) * (nT * W)
        for lvl, (sigs, words, ands, ors) in base_inj.per_level.items():
            # words = t * G + g for one candidate; restride to t * W + g.
            restrided = words + words // G  # t*G+g + t == t*(G+1)+g
            inj.per_level[lvl] = (
                np.tile(sigs, C),
                (restrided[None, :] + offsets[:, None]).reshape(-1),
                np.tile(ands, C),
                np.tile(ors, C),
            )

        n_cols = C * nT * W
        state = np.zeros((self._n_sv, n_cols), dtype=np.uint64)
        if len(self.chain):
            state[self.chain, :] = np.repeat(si_cols, W, axis=1)
        vals = model.alloc(n_cols)
        seen = np.zeros((C, G), dtype=np.uint64)

        def record_one(
            c: int, diff_tg: np.ndarray, u: int, where: str
        ) -> None:
            """Candidate ``c``'s slice of the serial ``record`` logic."""
            agg = np.bitwise_or.reduce(diff_tg, axis=0)
            fresh = agg & ~seen[c]
            if not fresh.any():
                return
            for g in np.flatnonzero(fresh):
                bits = int(fresh[g])
                mask_col = diff_tg[:, g]
                while bits:
                    low = bits & -bits
                    bit = low.bit_length() - 1
                    if bit < len(groups[g]):
                        t_loc = int(
                            np.flatnonzero(mask_col & np.uint64(low))[0]
                        )
                        # Plain ints only: rows cross a process boundary
                        # and are schema-validated on the way back.
                        rows[c].append(
                            (
                                int(g) * 64 + bit,
                                batch_rank,
                                idx_list[t_loc],
                                u,
                                where,
                            )
                        )
                    bits ^= low
            seen[c] |= fresh

        def record_all(diff_ctg: np.ndarray, u: int, where: str) -> None:
            for c in range(C):
                record_one(c, diff_ctg[c], u, where)

        for u in range(length):
            for c in range(C):
                k, fill = cand_sched[c][u]
                if k > 0:
                    blk, out_words = self._shift(
                        state[:, c * nT * W : (c + 1) * nT * W], k, list(fill)
                    )
                    state[:, c * nT * W : (c + 1) * nT * W] = blk
                    if policy.limited_scan_out:
                        out = out_words.reshape(k, nT, W)
                        diff = out[:, :, :G] ^ out[:, :, G:]
                        record_one(
                            c,
                            np.bitwise_or.reduce(diff, axis=0),
                            u,
                            "limited-scan",
                        )
            vals[model.pi_idx, :] = np.repeat(pi_cols[u], W, axis=1)
            vals[model.q_idx, :] = state
            model.eval(vals, injections=inj)
            if policy.primary_outputs and len(model.po_idx):
                n_po = len(model.po_idx)
                po = vals[model.po_idx, :].reshape(n_po, C, nT, W)
                diff = po[..., :G] ^ po[..., G:]
                record_all(np.bitwise_or.reduce(diff, axis=0), u, "po")
            state = vals[model.d_idx, :].copy()
            if taps is not None:
                tp = state[taps, :].reshape(len(taps), C, nT, W)
                diff = tp[..., :G] ^ tp[..., G:]
                record_all(np.bitwise_or.reduce(diff, axis=0), u, "state-tap")

        if policy.final_scan_out and self.chain_length:
            fs = state[self.chain].reshape(self.chain_length, C, nT, W)
            diff = fs[..., :G] ^ fs[..., G:]
            record_all(np.bitwise_or.reduce(diff, axis=0), length, "scan-out")

    def _simulate_batch(
        self,
        items: Sequence[Tuple[int, ScanTest]],
        remaining: Sequence[Fault],
        policy: ObservationPolicy,
    ) -> Dict[Fault, DetectionRecord]:
        model = self.model
        tests = [t for _, t in items]
        test_ids = [i for i, _ in items]
        n_tests = len(tests)
        length = tests[0].length
        schedule = [tests[0].step(u) for u in range(length)]
        groups = [list(remaining[i : i + 64]) for i in range(0, len(remaining), 64)]
        n_groups = len(groups)
        n_cols = n_tests * n_groups  # column = t * n_groups + g

        taps = policy.tap_rows()
        # --- fault-free reference over all tests (one column per test) ---
        ref_po, ref_scan, ref_final, ref_taps = self._ff_batch(
            tests, schedule, taps
        )

        # --- faulty pass ---------------------------------------------------
        entries = []
        for g, group in enumerate(groups):
            for bit, fault in enumerate(group):
                sig_idx = self.graph.signal_of(fault)
                for t in range(n_tests):
                    entries.append((sig_idx, t * n_groups + g, bit, fault.value))
        injections = Injections.build(entries, model.level_of_signal)

        si_words = self._si_words(tests)  # (chain, n_tests)
        state = np.zeros((self._n_sv, n_cols), dtype=np.uint64)
        if len(self.chain):
            state[self.chain, :] = np.repeat(si_words, n_groups, axis=1)
        vals = model.alloc(n_cols)
        seen = np.zeros(n_groups, dtype=np.uint64)
        hits: Dict[Fault, DetectionRecord] = {}

        def record(diff_tg: np.ndarray, u: int, where: str) -> None:
            nonlocal seen
            agg = np.bitwise_or.reduce(diff_tg, axis=0)
            fresh = agg & ~seen
            if not fresh.any():
                return
            for g in np.flatnonzero(fresh):
                bits = int(fresh[g])
                mask_col = diff_tg[:, g]
                while bits:
                    low = bits & -bits
                    bit = low.bit_length() - 1
                    if bit < len(groups[g]):
                        t_first = int(
                            np.flatnonzero(mask_col & np.uint64(low))[0]
                        )
                        fault = groups[g][bit]
                        hits[fault] = DetectionRecord(
                            fault=fault,
                            test_index=test_ids[t_first],
                            time_unit=u,
                            where=where,
                        )
                    bits ^= low
            seen |= fresh

        pi_cube = self._pi_words(tests)  # list per u: (n_pi, n_tests)
        for u in range(length):
            k, fill = schedule[u]
            if k > 0:
                state, out_words = self._shift(state, k, list(fill))
                if policy.limited_scan_out:
                    diff = out_words.reshape(k, n_tests, n_groups) ^ ref_scan[u][
                        :, :, None
                    ]
                    record(
                        np.bitwise_or.reduce(diff, axis=0), u, "limited-scan"
                    )
            vals[model.pi_idx, :] = np.repeat(pi_cube[u], n_groups, axis=1)
            vals[model.q_idx, :] = state
            model.eval(vals, injections=injections)
            if policy.primary_outputs and len(model.po_idx):
                diff = vals[model.po_idx, :].reshape(
                    len(model.po_idx), n_tests, n_groups
                ) ^ ref_po[u][:, :, None]
                record(np.bitwise_or.reduce(diff, axis=0), u, "po")
            state = vals[model.d_idx, :].copy()
            if taps is not None:
                diff = state[taps, :].reshape(
                    len(taps), n_tests, n_groups
                ) ^ ref_taps[u][:, :, None]
                record(np.bitwise_or.reduce(diff, axis=0), u, "state-tap")

        if policy.final_scan_out and self.chain_length:
            diff = state[self.chain].reshape(
                self.chain_length, n_tests, n_groups
            ) ^ ref_final[:, :, None]
            record(np.bitwise_or.reduce(diff, axis=0), length, "scan-out")
        return hits

    def _si_words(self, tests: Sequence[ScanTest]) -> np.ndarray:
        """(chain_length, n_tests) replicated-bit words of the SIs."""
        bits = np.array([t.si for t in tests], dtype=bool).T
        return np.where(
            bits, np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64(0)
        ).astype(np.uint64)

    def _pi_words(self, tests: Sequence[ScanTest]) -> List[np.ndarray]:
        """Per time unit: (n_pi, n_tests) replicated-bit vector words."""
        length = tests[0].length
        out: List[np.ndarray] = []
        for u in range(length):
            bits = np.array([t.vectors[u] for t in tests], dtype=bool).T
            out.append(
                np.where(
                    bits, np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64(0)
                ).astype(np.uint64)
            )
        return out

    def _ff_batch(
        self,
        tests: Sequence[ScanTest],
        schedule: Sequence[ScheduleStep],
        taps: Optional[np.ndarray] = None,
    ) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray, List[np.ndarray]]:
        """Fault-free reference for a uniform batch (one column per test)."""
        model = self.model
        n_tests = len(tests)
        state = np.zeros((self._n_sv, n_tests), dtype=np.uint64)
        if len(self.chain):
            state[self.chain, :] = self._si_words(tests)
        vals = model.alloc(n_tests)
        pi_cube = self._pi_words(tests)
        ref_po: List[np.ndarray] = []
        ref_scan: List[np.ndarray] = []
        ref_taps: List[np.ndarray] = []
        for u in range(tests[0].length):
            k, fill = schedule[u]
            if k > 0:
                state, out_words = self._shift(state, k, list(fill))
                ref_scan.append(out_words.copy())
            else:
                ref_scan.append(np.zeros((0, n_tests), dtype=np.uint64))
            vals[model.pi_idx, :] = pi_cube[u]
            vals[model.q_idx, :] = state
            model.eval(vals)
            ref_po.append(vals[model.po_idx, :].copy())
            state = vals[model.d_idx, :].copy()
            if taps is not None:
                ref_taps.append(state[taps, :].copy())
        return ref_po, ref_scan, state[self.chain].copy(), ref_taps

    def detected_by(
        self,
        tests: Sequence[ScanTest],
        faults: Sequence[Fault],
        policy: Optional[ObservationPolicy] = None,
    ) -> List[Fault]:
        """Convenience: just the detected faults, in universe order."""
        records = self.simulate(tests, faults, policy)
        return [f for f in faults if f in records]

    def measure_detection_counts(
        self,
        faults: Sequence[Fault],
        n_patterns: int = 10_000,
        seed: int = 0,
    ) -> np.ndarray:
        """Per-fault detection counts under single random patterns.

        The measurement the static COP estimates predict: each pattern
        assigns independent fair bits to every primary input and scan
        cell, runs one combinational evaluation, and observes the primary
        outputs plus every flop D pin (full-scan observability).  Pattern
        bits ride the word lanes (pattern-parallel); faults are injected
        one at a time as whole-word stuck values, so each fault costs one
        ``ceil(n_patterns / 64)``-word evaluation.

        Returns ``int64[len(faults)]``: patterns (out of ``n_patterns``)
        that detect each fault.  Deterministic in ``seed``.
        """
        model = self.model
        n_words = (n_patterns + 63) // 64
        rng = np.random.Generator(np.random.PCG64(seed))
        free_rows = np.concatenate([model.pi_idx, model.q_idx])
        obs_rows = np.concatenate([model.po_idx, model.d_idx])
        bits = rng.integers(
            0, 2**64, size=(len(free_rows), n_words), dtype=np.uint64
        )
        good = model.alloc(n_words)
        good[free_rows, :] = bits
        model.eval(good)
        good_obs = good[obs_rows, :]

        # Slack lanes of the last word carry extra random patterns; the
        # tail mask keeps them out of the counts.
        tail = n_patterns - (n_words - 1) * 64
        mask = np.full(n_words, ~np.uint64(0), dtype=np.uint64)
        if tail < 64:
            mask[-1] = np.uint64((1 << tail) - 1)

        counts = np.zeros(len(faults), dtype=np.int64)
        vals = model.alloc(n_words)
        for i, fault in enumerate(faults):
            sig = self.graph.signal_of(fault)
            inj = Injections.build_whole_word(
                [(sig, w, fault.value) for w in range(n_words)],
                model.level_of_signal,
            )
            vals[:] = 0
            vals[free_rows, :] = bits
            model.eval(vals, inj)
            diff = np.bitwise_or.reduce(
                (vals[obs_rows, :] ^ good_obs), axis=0
            )
            diff &= mask
            counts[i] = int(np.bitwise_count(diff).sum())
        return counts

    def sharded(
        self, n_jobs: int, recovery=None, chaos=None
    ) -> "ShardedFaultSimulator":
        """A fault-sharded parallel front-end over this simulator.

        The returned object has the same simulate surface; close it (or
        use it as a context manager) to release the worker pool.
        ``n_jobs=1`` returns a front-end that runs everything serially.
        ``recovery`` is a :class:`~repro.faults.sharding.RecoveryPolicy`
        governing shard retries/timeouts; ``chaos`` deterministically
        injects worker failures for testing (see
        :mod:`repro.robustness.chaos`).
        """
        from repro.faults.sharding import ShardedFaultSimulator

        return ShardedFaultSimulator(self, n_jobs, recovery=recovery, chaos=chaos)

    # ------------------------------------------------------------------
    def _check_test(self, test: ScanTest) -> None:
        if len(test.si) != self.chain_length:
            raise ValueError(
                f"test SI has {len(test.si)} bits, chain has {self.chain_length}"
            )
        for vec in test.vectors:
            if len(vec) != self._n_pi:
                raise ValueError(
                    f"vector has {len(vec)} bits, circuit has {self._n_pi} inputs"
                )
        if test.schedule is not None and len(test.schedule) != test.length:
            raise ValueError("schedule length must equal test length")

    def _fault_free_reference(
        self, test: ScanTest, policy: Optional[ObservationPolicy] = None
    ) -> _FaultFreeRef:
        model = self.model
        taps = (policy or ObservationPolicy()).tap_rows()
        state = self._initial_state(test.si, n_words=1)
        vals = model.alloc(n_words=1)
        po_words: List[np.ndarray] = []
        scanout_words: List[np.ndarray] = []
        tap_words: List[np.ndarray] = []
        for u, vector in enumerate(test.vectors):
            k, fill = test.step(u)
            if k > 0:
                state, out_words = self._shift(state, k, list(fill))
                scanout_words.append(out_words[:, 0].copy())
            else:
                scanout_words.append(np.zeros(0, dtype=np.uint64))
            model.set_inputs_from_bits(vals, vector)
            vals[model.q_idx, :] = state
            model.eval(vals)
            po_words.append(vals[model.po_idx, 0].copy())
            state = vals[model.d_idx, :].copy()
            if taps is not None:
                tap_words.append(state[taps, 0].copy())
        return _FaultFreeRef(
            po_words=po_words,
            scanout_words=scanout_words,
            final_state=state[self.chain].copy(),
            tap_words=tap_words,
        )

    def _simulate_faulty(
        self,
        test: ScanTest,
        groups: List[List[Fault]],
        ref: _FaultFreeRef,
        policy: ObservationPolicy,
    ) -> Dict[Tuple[int, int], Tuple[int, str]]:
        """Run all fault groups through one test.

        Returns ``{(word, bit): (time_unit, where)}`` for first detections;
        the final scan-out is reported with time unit ``test.length``.
        """
        model = self.model
        taps = policy.tap_rows()
        n_words = len(groups)
        entries = []
        for word, group in enumerate(groups):
            for bit, fault in enumerate(group):
                entries.append(self.graph.injection_entry(fault, word, bit))
        injections = Injections.build(entries, model.level_of_signal)

        state = self._initial_state(test.si, n_words)
        # A fault on a flop's Q net must corrupt what the combinational
        # logic sees, but not the latched/scanned value -- which is exactly
        # what injecting into `vals` (not `state`) does.
        vals = model.alloc(n_words)
        seen = np.zeros(n_words, dtype=np.uint64)
        hits: Dict[Tuple[int, int], Tuple[int, str]] = {}

        def record(diff_words: np.ndarray, u: int, where: str) -> None:
            nonlocal seen
            fresh = diff_words & ~seen
            if not fresh.any():
                return
            for word in np.flatnonzero(fresh):
                bits = int(fresh[word])
                while bits:
                    low = bits & -bits
                    bit = low.bit_length() - 1
                    if bit < len(groups[word]):
                        hits[(word, bit)] = (u, where)
                    bits ^= low
            seen |= fresh

        for u, vector in enumerate(test.vectors):
            k, fill = test.step(u)
            if k > 0:
                state, out_words = self._shift(state, k, list(fill))
                if policy.limited_scan_out:
                    diff = out_words ^ ref.scanout_words[u][:, None]
                    record(np.bitwise_or.reduce(diff, axis=0), u, "limited-scan")
            model.set_inputs_from_bits(vals, vector)
            vals[model.q_idx, :] = state
            model.eval(vals, injections=injections)
            if policy.primary_outputs and len(model.po_idx):
                diff = vals[model.po_idx, :] ^ ref.po_words[u][:, None]
                record(np.bitwise_or.reduce(diff, axis=0), u, "po")
            state = vals[model.d_idx, :].copy()
            if taps is not None:
                diff = state[taps, :] ^ ref.tap_words[u][:, None]
                record(np.bitwise_or.reduce(diff, axis=0), u, "state-tap")

        if policy.final_scan_out and self.chain_length:
            diff = state[self.chain] ^ ref.final_state
            record(
                np.bitwise_or.reduce(diff, axis=0), test.length, "scan-out"
            )
        return hits
