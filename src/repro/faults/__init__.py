"""Stuck-at fault modelling and fault simulation.

- :mod:`repro.faults.model` -- the single stuck-at fault universe over
  stems and fanout branches, and the :class:`FaultGraph` that maps every
  fault onto a net of the (decomposed, branch-expanded) simulation graph,
- :mod:`repro.faults.collapse` -- gate-local equivalence collapsing,
- :mod:`repro.faults.fault_sim` -- the parallel-fault sequential fault
  simulator (64 fault machines per word) with detection at primary
  outputs, at bits shifted out by limited scan operations, and at the
  final scan-out,
- :mod:`repro.faults.ppsfp` -- parallel-pattern single-fault propagation
  for the purely combinational (single-vector, full-scan) setting,
- :mod:`repro.faults.sharding` -- word-aligned fault-list sharding across
  a worker-process pool, with a deterministic merge and serial fallback.
"""

from repro.faults.model import Fault, FaultGraph, generate_faults
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import (
    DetectionRecord,
    FaultSimulator,
    ObservationPolicy,
    ScanTest,
)
from repro.faults.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    generate_transition_faults,
)
from repro.faults.dictionary import FaultDictionary, build_dictionary, diagnose
from repro.faults.sharding import ShardedFaultSimulator, resolve_n_jobs, shard_faults

__all__ = [
    "Fault",
    "FaultGraph",
    "generate_faults",
    "collapse_faults",
    "FaultSimulator",
    "ObservationPolicy",
    "ScanTest",
    "DetectionRecord",
    "TransitionFault",
    "TransitionFaultSimulator",
    "generate_transition_faults",
    "FaultDictionary",
    "build_dictionary",
    "diagnose",
    "ShardedFaultSimulator",
    "resolve_n_jobs",
    "shard_faults",
]
