"""Parallel fault-simulation sharding with shard-granular recovery.

The packed fault list (64 faults per ``uint64`` word) is split into
word-aligned contiguous shards and every shard is simulated by a worker
process holding its own replica of the simulator.  Faults are independent
of each other in the parallel-fault model -- dropping a detected fault
never changes another fault's detection record -- so sharding by fault
words is embarrassingly parallel and the merged result is bit-exact with
the serial simulator.

Two guarantees shape the design:

- **Determinism**: the merged detection records are re-ordered by
  ``(test_index, time_unit, position in the input fault list)``, so the
  output never depends on worker scheduling -- or on how many times a
  shard had to be retried.
- **Graceful degradation, shard by shard**: a dead worker, a hung
  worker, a corrupted shard return, or an ordinary task exception costs
  only that shard's work.  Failed shards are retried with deterministic
  seeded backoff (the pool is respawned first if it broke), and a shard
  that exhausts its retries is re-executed serially in the parent.  A
  parallel run may be slow, but never wrong or fatal; every recovery
  action is recorded in a structured
  :class:`~repro.robustness.degradation.DegradationReport` instead of a
  lost warning.

Workers are initialized once per process with a pickled replica of the
simulator (the compiled model pickles as flat numpy arrays; no
re-levelization happens in the worker), then receive only the test list
and their fault shard per task.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import random
import sys
import time
from concurrent.futures import (
    CancelledError,
    Executor,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.model import Fault
from repro.robustness.chaos import ChaosPlan, execute_injected
from repro.robustness.degradation import DegradationReport
from repro.simulation.compiled import shard_word_ranges

#: Faults per simulation word (bits of a uint64).
WORD_BITS = 64

#: Serial record order within one time unit: the limited-scan compare
#: runs before the gate eval, primary outputs and state taps after it,
#: and the final scan-out is a separate time unit.
WHERE_RANK: Dict[str, int] = {
    "limited-scan": 0,
    "po": 1,
    "state-tap": 2,
    "scan-out": 3,
}


def available_cpu_count() -> int:
    """CPUs actually available to this process (never 0).

    ``os.cpu_count()`` reports the machine's cores, which overcounts --
    and oversubscribes workers -- under cgroup or CPU-affinity limits
    (containers, CI runners, ``taskset``).  The scheduler-affinity mask
    reflects the real allowance, so prefer it where the platform has it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)  # detlint: ignore[DET004]


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/1 serial, -1 = all cores."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return available_cpu_count()
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def shard_faults(faults: Sequence[Fault], n_shards: int) -> List[List[Fault]]:
    """Split ``faults`` into word-aligned contiguous shards.

    Shard boundaries are multiples of 64 faults so each worker packs its
    shard into full words exactly as the serial simulator would.
    """
    faults = list(faults)
    n_words = (len(faults) + WORD_BITS - 1) // WORD_BITS
    return [
        faults[lo * WORD_BITS : hi * WORD_BITS]
        for lo, hi in shard_word_ranges(n_words, n_shards)
    ]


class RecoveryPolicy:
    """How the sharded simulator reacts to a failing shard.

    Attributes:
        shard_timeout: seconds a dispatch waits for its shards before
            declaring the laggards hung and killing the pool.  ``None``
            (default) waits forever -- appropriate when workloads have no
            known bound.
        max_retries: attempts *after* the first before a shard is
            re-executed serially in the parent (0 = straight to serial).
        backoff_base: base of the exponential backoff slept between
            attempts; 0 disables sleeping.
        backoff_cap: upper bound on a single backoff sleep, seconds.
        seed: seed of the backoff jitter.  The jitter RNG is derived
            from ``(seed, dispatch, shard, attempt)`` alone, so recovery
            timing is as reproducible as everything else.
    """

    def __init__(
        self,
        shard_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
    ) -> None:
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.shard_timeout = shard_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed

    def backoff_delay(self, dispatch: int, shard: int, attempt: int) -> float:
        """Deterministic jittered exponential backoff for one retry."""
        if self.backoff_base <= 0:
            return 0.0
        rng = random.Random(
            self.seed * 1_000_003 + dispatch * 8_191 + shard * 131 + attempt
        )
        delay = self.backoff_base * (2.0**attempt) * (0.5 + rng.random())
        return min(self.backoff_cap, delay)


# ----------------------------------------------------------------------
# Worker-process side.  One simulator replica per process, installed by
# the pool initializer; tasks then name a method to call on it.
# ----------------------------------------------------------------------
_WORKER_SIM: Any = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_SIM
    _WORKER_SIM = pickle.loads(payload)


def _run_worker_method(method: str, args: tuple, kwargs: dict) -> Any:
    if _WORKER_SIM is None:  # pragma: no cover - defensive
        raise RuntimeError("worker pool used before initialization")
    return getattr(_WORKER_SIM, method)(*args, **kwargs)


def _run_worker_task(
    method: str,
    inject: Optional[str],
    hang_seconds: float,
    args: tuple,
    kwargs: dict,
) -> Any:
    """Hardened-path task: like :func:`_run_worker_method`, plus chaos."""
    if _WORKER_SIM is None:  # pragma: no cover - defensive
        raise RuntimeError("worker pool used before initialization")
    return execute_injected(
        inject,
        hang_seconds,
        lambda: getattr(_WORKER_SIM, method)(*args, **kwargs),
    )


class SimulatorPool:
    """A process pool whose workers each hold a replica of one simulator.

    The replica is shipped once per worker (pool initializer), so tasks
    only pay to pickle their own arguments.  The simple :meth:`map_method`
    surface is all-or-nothing (used by PPSFP, which owns its fallback);
    :class:`ShardedFaultSimulator` uses :meth:`submit_task` +
    :meth:`kill` for shard-granular recovery and respawn.
    """

    def __init__(self, simulator: Any, n_jobs: int) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._simulator = simulator
        self._payload: Optional[bytes] = None
        #: Times the simulator was serialized (once per pool lifetime on
        #: the happy path -- respawns and serial rescues must not add).
        self.pickle_count = 0
        self._executor: Optional[Executor] = None
        self.broken = False

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self._payload is None:
                # Serialize lazily and exactly once: a pool whose every
                # dispatch degrades to serial never pays for pickling,
                # and a respawn after kill() reuses the cached payload.
                self._payload = pickle.dumps(self._simulator)
                self.pickle_count += 1
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._executor

    def submit_task(
        self,
        method: str,
        inject: Optional[str],
        hang_seconds: float,
        args: tuple,
        kwargs: dict,
    ) -> Future:
        """Submit one shard task; the caller owns collection and retry."""
        return self._ensure_executor().submit(
            _run_worker_task, method, inject, hang_seconds, args, kwargs
        )

    def map_method(self, method: str, calls: Sequence[Tuple[tuple, dict]]) -> List[Any]:
        """Run ``simulator.method(*args, **kwargs)`` for every call, in order.

        Raises whatever the pool raises; the caller owns the fallback.
        """
        executor = self._ensure_executor()
        futures = [
            executor.submit(_run_worker_method, method, args, kwargs)
            for args, kwargs in calls
        ]
        try:
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise

    def kill(self) -> None:
        """Tear the pool down hard, terminating workers (hung ones too).

        The next :meth:`submit_task` transparently respawns a fresh pool
        of workers from the stored simulator payload.
        """
        if self._executor is not None:
            processes = list(getattr(self._executor, "_processes", {}).values())
            self._executor.shutdown(wait=False, cancel_futures=True)
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            self._executor = None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SimulatorPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _valid_shard_result(records: Any, shard: Sequence[Fault]) -> bool:
    """Sanity-check a worker's payload before trusting it in the merge.

    Every key must be a fault of *this* shard and every value must look
    like a detection record; anything else is treated as a shard failure
    and recovered like a crash.
    """
    if not isinstance(records, dict):
        return False
    members = set(shard)
    for fault, record in records.items():
        if fault not in members:
            return False
        if not (
            hasattr(record, "test_index")
            and hasattr(record, "time_unit")
            and hasattr(record, "where")
        ):
            return False
    return True


class ShardedFaultSimulator:
    """Fault-sharded parallel front-end for a :class:`FaultSimulator`.

    Exposes the same ``simulate`` / ``simulate_grouped`` / ``detected_by``
    surface as the serial simulator; with ``n_jobs > 1`` the fault list is
    sharded across a :class:`SimulatorPool` and the per-shard detection
    records are merged deterministically.  ``n_jobs == 1`` bypasses the
    pool entirely and is byte-for-byte the serial path.

    Shard failures are recovered per the :class:`RecoveryPolicy`:
    bounded retries with seeded backoff, pool respawn after a crash or a
    per-shard timeout, and serial re-execution of a shard that keeps
    failing.  Every recovery action lands in :attr:`degradation`.

    Use as a context manager (or call :meth:`close`) so worker processes
    do not outlive the work.
    """

    def __init__(
        self,
        base: Any,
        n_jobs: int = 1,
        recovery: Optional[RecoveryPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> None:
        self.base = base
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.recovery = recovery or RecoveryPolicy()
        self.chaos = chaos
        self.degradation = DegradationReport()
        self._pool: Optional[SimulatorPool] = None
        self._pool_unavailable = False
        self._dispatches = 0

    # -- pass-throughs the callers rely on ------------------------------
    @property
    def chain_length(self) -> int:
        return self.base.chain_length

    @property
    def graph(self):
        return self.base.graph

    @property
    def chain(self):
        return self.base.chain

    # -------------------------------------------------------------------
    def simulate(self, tests, faults, policy=None):
        return self._dispatch("simulate", tests, faults, policy)

    def simulate_grouped(self, tests, faults, policy=None, max_cols: int = 4096):
        return self._dispatch(
            "simulate_grouped", tests, faults, policy, max_cols=max_cols
        )

    def detected_by(self, tests, faults, policy=None) -> List[Fault]:
        records = self.simulate(tests, faults, policy)
        return [f for f in faults if f in records]

    # -------------------------------------------------------------------
    def _dispatch(self, method: str, tests, faults, policy, **kwargs):
        tests = list(tests)
        faults = list(faults)
        serial = getattr(self.base, method)
        if self.n_jobs <= 1 or self._pool_unavailable:
            return serial(tests, faults, policy, **kwargs)
        shards = shard_faults(faults, self.n_jobs)
        if len(shards) <= 1:
            return serial(tests, faults, policy, **kwargs)
        dispatch = self._dispatches
        self._dispatches += 1
        results = self._run_shards(dispatch, method, tests, shards, policy, kwargs)
        return _merge_records(
            results, faults, tests, method, kwargs.get("max_cols", 4096)
        )

    # -- the hardened shard loop ----------------------------------------
    def _run_shards(
        self,
        dispatch: int,
        method: str,
        tests: list,
        shards: List[List[Fault]],
        policy,
        kwargs: dict,
    ) -> List[Any]:
        recovery = self.recovery
        serial = getattr(self.base, method)
        out: List[Any] = [None] * len(shards)
        attempts = [0] * len(shards)
        pending = list(range(len(shards)))

        while pending:
            try:
                if self._pool is None:
                    self._pool = SimulatorPool(self.base, self.n_jobs)
                pool = self._pool
                futures = {
                    i: pool.submit_task(
                        method,
                        self._chaos_action(dispatch, i, attempts[i]),
                        self.chaos.hang_seconds if self.chaos else 0.0,
                        (tests, shards[i], policy),
                        kwargs,
                    )
                    for i in pending
                }
            except Exception as exc:
                # The pool itself cannot be built or fed (fork failure,
                # unpicklable state, resource exhaustion): run everything
                # still pending serially and stay serial from now on.
                for i in pending:
                    self.degradation.record(
                        dispatch, i, attempts[i], "pool-unavailable",
                        "serial", repr(exc),
                    )
                    out[i] = serial(tests, shards[i], policy, **kwargs)
                self._pool_unavailable = True
                self.close()
                return out

            failed: List[Tuple[int, str, str]] = []
            pool_dead = False
            deadline = (
                None
                if recovery.shard_timeout is None
                else time.perf_counter() + recovery.shard_timeout
            )
            for i in pending:
                future = futures[i]
                try:
                    if pool_dead:
                        if not future.done():
                            failed.append(
                                (i, "pool-lost",
                                 "pool torn down after an earlier failure")
                            )
                            continue
                        records = future.result(timeout=0)
                    elif deadline is None:
                        records = future.result()
                    else:
                        budget = max(0.0, deadline - time.perf_counter())
                        records = future.result(timeout=budget)
                except FuturesTimeoutError:
                    failed.append(
                        (i, "timeout",
                         f"no result within {recovery.shard_timeout}s")
                    )
                    pool_dead = True
                    continue
                except BrokenProcessPool as exc:
                    failed.append((i, "crash", repr(exc)))
                    pool_dead = True
                    continue
                except CancelledError:
                    failed.append((i, "pool-lost", "future cancelled"))
                    continue
                except Exception as exc:
                    failed.append((i, "error", repr(exc)))
                    continue
                if not _valid_shard_result(records, shards[i]):
                    failed.append(
                        (i, "invalid-result",
                         "shard returned faults outside its own range "
                         "or malformed records")
                    )
                    continue
                out[i] = records

            if pool_dead and self._pool is not None:
                # A crash poisons the executor and a hung worker squats a
                # slot forever; either way the workers must be respawned.
                # The pool object itself survives so its one pickled
                # simulator payload is reused instead of re-serialized.
                self._pool.kill()
                self.degradation.pool_respawns += 1

            next_pending: List[int] = []
            for i, kind, detail in failed:
                if attempts[i] >= recovery.max_retries:
                    self.degradation.record(
                        dispatch, i, attempts[i], kind, "serial", detail
                    )
                    out[i] = serial(tests, shards[i], policy, **kwargs)
                else:
                    self.degradation.record(
                        dispatch, i, attempts[i], kind, "retry", detail
                    )
                    delay = recovery.backoff_delay(dispatch, i, attempts[i])
                    if delay > 0:
                        time.sleep(delay)
                    attempts[i] += 1
                    next_pending.append(i)
            pending = next_pending
        return out

    def _chaos_action(
        self, dispatch: int, shard: int, attempt: int
    ) -> Optional[str]:
        if self.chaos is None:
            return None
        return self.chaos.action(dispatch, shard, attempt)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedFaultSimulator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _grouped_test_ranks(
    tests: Sequence[Any],
    n_faults: int,
    hits_per_test: Dict[int, int],
    max_cols: int,
) -> Dict[int, int]:
    """Chunk rank of every test index under serial ``simulate_grouped``.

    Mirrors its batching exactly: tests sharing ``(length, schedule)``
    form one batch in first-appearance order, each batch is consumed in
    chunks of ``max_cols // n_groups`` tests, and detected faults are
    dropped between chunks (shrinking ``n_groups`` for later chunks).
    ``hits_per_test`` -- detections attributed to each test index --
    lets the walk replay how ``remaining`` shrank.
    """
    batches: Dict[tuple, List[int]] = {}
    for i, test in enumerate(tests):
        sig = (
            test.length,
            tuple(
                (k, tuple(fill))
                for k, fill in (test.schedule or [(0, ())] * test.length)
            ),
        )
        batches.setdefault(sig, []).append(i)
    ranks: Dict[int, int] = {}
    rank = 0
    remaining = n_faults
    for idxs in batches.values():
        pos = 0
        while pos < len(idxs) and remaining > 0:
            n_groups = (remaining + WORD_BITS - 1) // WORD_BITS
            chunk = idxs[pos : pos + max(1, max_cols // max(n_groups, 1))]
            pos += len(chunk)
            for i in chunk:
                ranks[i] = rank
            remaining -= sum(hits_per_test.get(i, 0) for i in chunk)
            rank += 1
        for i in idxs[pos:]:  # tests the serial loop never reached
            ranks[i] = rank
    return ranks


def _merge_records(
    shard_records: Sequence[Dict[Fault, Any]],
    faults: Sequence[Fault],
    tests: Sequence[Any],
    method: str,
    max_cols: int = 4096,
) -> Dict[Fault, Any]:
    """Merge disjoint per-shard record dicts into one deterministic dict.

    Shards partition the fault list, so the union is conflict-free; the
    merged dict reproduces the *serial* simulator's insertion order so
    downstream consumers never observe worker-completion order.  Both
    serial paths record in ``(pass, time_unit, observation point, fault
    position)`` order, where a pass is one test for ``simulate`` and one
    test-shape chunk for ``simulate_grouped`` (replayed by
    :func:`_grouped_test_ranks`); a fault's position in the full list
    orders identically to its position within any shard.

    Worker payloads arrive through pickle, which neither interns strings
    nor preserves object identity, so records are rebuilt on the
    caller's object graph: the fault key/field becomes the caller's own
    ``Fault`` and ``where`` the interned constant.  Without this the
    merged result is value-equal to the serial one but not
    byte-identical when serialized (a different pickle memo structure).
    """
    position = {fault: i for i, fault in enumerate(faults)}
    canonical = {fault: fault for fault in faults}
    combined: List[Tuple[Fault, Any]] = []
    for records in shard_records:
        combined.extend(records.items())
    if method == "simulate_grouped":
        hits_per_test: Dict[int, int] = {}
        for _, record in combined:
            hits_per_test[record.test_index] = (
                hits_per_test.get(record.test_index, 0) + 1
            )
        ranks = _grouped_test_ranks(
            tests, len(faults), hits_per_test, max_cols
        )
    else:
        ranks = {i: i for i in range(len(tests))}
    combined.sort(
        key=lambda kv: (
            ranks[kv[1].test_index],
            kv[1].time_unit,
            WHERE_RANK.get(kv[1].where, len(WHERE_RANK)),
            position[kv[0]],
        )
    )
    out: Dict[Fault, Any] = {}
    for fault, record in combined:
        mine = canonical[fault]
        out[mine] = dataclasses.replace(
            record, fault=mine, where=sys.intern(record.where)
        )
    return out
