"""Parallel fault-simulation sharding.

The packed fault list (64 faults per ``uint64`` word) is split into
word-aligned contiguous shards and every shard is simulated by a worker
process holding its own replica of the simulator.  Faults are independent
of each other in the parallel-fault model -- dropping a detected fault
never changes another fault's detection record -- so sharding by fault
words is embarrassingly parallel and the merged result is bit-exact with
the serial simulator.

Two guarantees shape the design:

- **Determinism**: the merged detection records are re-ordered by
  ``(test_index, time_unit, position in the input fault list)``, so the
  output never depends on worker scheduling.
- **Graceful degradation**: any pool failure (a worker dying, a pickling
  problem, an exhausted system) falls back to the serial simulator with a
  ``RuntimeWarning`` -- a parallel run may be slow, but never wrong or
  fatal.

Workers are initialized once per process with a pickled replica of the
simulator (the compiled model pickles as flat numpy arrays; no
re-levelization happens in the worker), then receive only the test list
and their fault shard per task.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.model import Fault
from repro.simulation.compiled import shard_word_ranges

#: Faults per simulation word (bits of a uint64).
WORD_BITS = 64


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/1 serial, -1 = all cores."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def shard_faults(faults: Sequence[Fault], n_shards: int) -> List[List[Fault]]:
    """Split ``faults`` into word-aligned contiguous shards.

    Shard boundaries are multiples of 64 faults so each worker packs its
    shard into full words exactly as the serial simulator would.
    """
    faults = list(faults)
    n_words = (len(faults) + WORD_BITS - 1) // WORD_BITS
    return [
        faults[lo * WORD_BITS : hi * WORD_BITS]
        for lo, hi in shard_word_ranges(n_words, n_shards)
    ]


# ----------------------------------------------------------------------
# Worker-process side.  One simulator replica per process, installed by
# the pool initializer; tasks then name a method to call on it.
# ----------------------------------------------------------------------
_WORKER_SIM: Any = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_SIM
    _WORKER_SIM = pickle.loads(payload)


def _run_worker_method(method: str, args: tuple, kwargs: dict) -> Any:
    if _WORKER_SIM is None:  # pragma: no cover - defensive
        raise RuntimeError("worker pool used before initialization")
    return getattr(_WORKER_SIM, method)(*args, **kwargs)


class SimulatorPool:
    """A process pool whose workers each hold a replica of one simulator.

    The replica is shipped once per worker (pool initializer), so tasks
    only pay to pickle their own arguments.  Any failure marks the pool
    broken; callers are expected to fall back to their serial path.
    """

    def __init__(self, simulator: Any, n_jobs: int) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._payload = pickle.dumps(simulator)
        self._executor: Optional[Executor] = None
        self.broken = False

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_jobs,
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._executor

    def map_method(self, method: str, calls: Sequence[Tuple[tuple, dict]]) -> List[Any]:
        """Run ``simulator.method(*args, **kwargs)`` for every call, in order.

        Raises whatever the pool raises; the caller owns the fallback.
        """
        executor = self._ensure_executor()
        futures = [
            executor.submit(_run_worker_method, method, args, kwargs)
            for args, kwargs in calls
        ]
        try:
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SimulatorPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ShardedFaultSimulator:
    """Fault-sharded parallel front-end for a :class:`FaultSimulator`.

    Exposes the same ``simulate`` / ``simulate_grouped`` / ``detected_by``
    surface as the serial simulator; with ``n_jobs > 1`` the fault list is
    sharded across a :class:`SimulatorPool` and the per-shard detection
    records are merged deterministically.  ``n_jobs == 1`` bypasses the
    pool entirely and is byte-for-byte the serial path.

    Use as a context manager (or call :meth:`close`) so worker processes
    do not outlive the work.
    """

    def __init__(self, base: Any, n_jobs: int = 1) -> None:
        self.base = base
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._pool: Optional[SimulatorPool] = None
        self._fell_back = False

    # -- pass-throughs the callers rely on ------------------------------
    @property
    def chain_length(self) -> int:
        return self.base.chain_length

    @property
    def graph(self):
        return self.base.graph

    @property
    def chain(self):
        return self.base.chain

    # -------------------------------------------------------------------
    def simulate(self, tests, faults, policy=None):
        return self._dispatch("simulate", tests, faults, policy)

    def simulate_grouped(self, tests, faults, policy=None, max_cols: int = 4096):
        return self._dispatch(
            "simulate_grouped", tests, faults, policy, max_cols=max_cols
        )

    def detected_by(self, tests, faults, policy=None) -> List[Fault]:
        records = self.simulate(tests, faults, policy)
        return [f for f in faults if f in records]

    # -------------------------------------------------------------------
    def _dispatch(self, method: str, tests, faults, policy, **kwargs):
        tests = list(tests)
        faults = list(faults)
        serial = getattr(self.base, method)
        if self.n_jobs <= 1 or self._fell_back:
            return serial(tests, faults, policy, **kwargs)
        shards = shard_faults(faults, self.n_jobs)
        if len(shards) <= 1:
            return serial(tests, faults, policy, **kwargs)
        try:
            if self._pool is None:
                self._pool = SimulatorPool(self.base, self.n_jobs)
            results = self._pool.map_method(
                method, [((tests, shard, policy), kwargs) for shard in shards]
            )
        except Exception as exc:
            warnings.warn(
                f"parallel fault simulation failed ({exc!r}); "
                "falling back to the serial simulator",
                RuntimeWarning,
                stacklevel=3,
            )
            self._fell_back = True
            self.close()
            return serial(tests, faults, policy, **kwargs)
        return _merge_records(results, faults)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedFaultSimulator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _merge_records(
    shard_records: Sequence[Dict[Fault, Any]], faults: Sequence[Fault]
) -> Dict[Fault, Any]:
    """Merge disjoint per-shard record dicts into one deterministic dict.

    Shards partition the fault list, so the union is conflict-free; the
    merged dict is ordered by ``(test_index, time_unit, input position)``
    -- the serial simulator's first-detection order -- so downstream
    consumers never observe worker-completion order.
    """
    position = {fault: i for i, fault in enumerate(faults)}
    combined: Dict[Fault, Any] = {}
    for records in shard_records:
        combined.update(records)
    return dict(
        sorted(
            combined.items(),
            key=lambda kv: (kv[1].test_index, kv[1].time_unit, position[kv[0]]),
        )
    )
