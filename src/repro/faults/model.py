"""Single stuck-at fault model.

The fault universe follows the classical line-fault convention: a *line*
is either a stem (a driven net) or a fanout branch (one consumer pin of a
net with more than one destination, primary-output taps included).  Each
line carries a stuck-at-0 and a stuck-at-1 fault.

Faults are defined against the *original* circuit so fault counts and
reports are meaningful, and translated onto nets of the rewritten
simulation graph (two-input decomposition + explicit fanout branches) by
:class:`FaultGraph`, where every fault -- stem or branch -- is an output
stuck-at on some net.  That uniformity is what lets the simulators inject
faults with simple per-net masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.circuit.cache import CompileCache
from repro.circuit.transform import (
    decompose_to_two_input,
    insert_fanout_branches,
)
from repro.simulation.compiled import CompiledModel


def fault_key(fault: "Fault") -> Tuple[str, int, str, int]:
    """Deterministic sort key (``None`` fields normalized for comparison)."""
    return (
        fault.site,
        fault.value,
        fault.consumer or "",
        fault.pin if fault.pin is not None else -1,
    )


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on a stem or a fanout branch.

    ``site`` is the net name.  For a branch fault, ``consumer``/``pin``
    identify the reading pin (``consumer`` is a gate output net, or a
    flop's ``q`` for its D pin); for a stem fault they are ``None``.
    """

    site: str
    value: int
    consumer: Optional[str] = None
    pin: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.consumer is not None

    def __str__(self) -> str:
        if self.is_branch:
            return f"{self.site}->{self.consumer}.{self.pin} s-a-{self.value}"
        return f"{self.site} s-a-{self.value}"


def generate_faults(circuit: Circuit) -> List[Fault]:
    """The full (uncollapsed) stuck-at universe of ``circuit``.

    Stem faults on every driven net, branch faults on every consumer pin
    of a net with more than one destination (POs count as destinations,
    consistent with :func:`repro.circuit.transform.insert_fanout_branches`).
    """
    faults: List[Fault] = []
    fanout = circuit.fanout_map()
    po_taps: Dict[str, int] = {}
    for net in circuit.outputs:
        po_taps[net] = po_taps.get(net, 0) + 1

    for net in circuit.signals():
        for value in (0, 1):
            faults.append(Fault(site=net, value=value))
        readers = fanout.get(net, [])
        if len(readers) + po_taps.get(net, 0) > 1:
            for consumer, pin in readers:
                for value in (0, 1):
                    faults.append(
                        Fault(site=net, value=value, consumer=consumer, pin=pin)
                    )
    return faults


class FaultGraph:
    """The simulation graph shared by fault simulation and ATPG.

    Built from a circuit by (1) decomposing wide gates to two-input chains
    and (2) making fanout branches explicit, then compiling.  Every fault
    of the original circuit maps onto exactly one net of this graph via
    :meth:`signal_of`.

    With a :class:`~repro.circuit.cache.CompileCache` the rewrite and
    compilation are skipped on a fingerprint hit: the cached compiled
    state (flat arrays plus the pin/branch maps) is restored directly.
    The graph also pickles in that lean form -- the object-form circuits
    ship as struct-of-arrays netlists and are rebuilt lazily, so worker
    processes never deserialize per-gate object graphs.
    """

    def __init__(self, circuit: Circuit, cache: Optional["CompileCache"] = None) -> None:
        self._circuit: Optional[Circuit] = circuit
        self._circuit_arrays = None
        self.cache_hit = False
        if cache is not None:
            fingerprint = cache.fingerprint(circuit)
            state = cache.load(fingerprint)
            if state is not None:
                self.__setstate__(state)
                self._circuit = circuit  # keep the caller's object form
                self.cache_hit = True
                return
        decomposed, pin_map = decompose_to_two_input(circuit)
        branched, branch_of = insert_fanout_branches(decomposed)
        self._pin_map = pin_map
        self._branch_of = branch_of
        self.model = CompiledModel(branched, decompose=False)
        if cache is not None:
            cache.store(fingerprint, self.__getstate__())

    @property
    def circuit(self) -> Circuit:
        """The original circuit (rebuilt from arrays after unpickling)."""
        if self._circuit is None:
            from repro.circuit.netlist import circuit_from_arrays

            self._circuit = circuit_from_arrays(self._circuit_arrays)
        return self._circuit

    @property
    def sim_circuit(self) -> Circuit:
        """The rewritten (decomposed + branched) circuit the model runs."""
        return self.model.circuit

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Ship the original circuit as arrays; the branched sim circuit
        # needs nothing extra -- it is the model's own compiled netlist.
        if state.get("_circuit") is not None:
            state["_circuit_arrays"] = state["_circuit"].to_arrays()
            state["_circuit"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def net_of(self, fault: Fault) -> str:
        """The simulation-graph net on which ``fault`` is an output fault."""
        if not fault.is_branch:
            return fault.site
        coord = self._pin_map[(fault.consumer, fault.pin)]
        return self._branch_of[coord]

    def signal_of(self, fault: Fault) -> int:
        return self.model.index_of(self.net_of(fault))

    def injection_entry(
        self, fault: Fault, word: int, bit: int
    ) -> Tuple[int, int, int, int]:
        """The ``Injections.build`` row placing ``fault`` at (word, bit)."""
        return (self.signal_of(fault), word, bit, fault.value)
