"""Equivalence collapsing of stuck-at faults.

Gate-local equivalence rules (the classical set):

- AND:  any input s-a-0  ==  output s-a-0
- NAND: any input s-a-0  ==  output s-a-1
- OR:   any input s-a-1  ==  output s-a-1
- NOR:  any input s-a-1  ==  output s-a-0
- NOT:  input s-a-v      ==  output s-a-(1-v)
- BUF:  input s-a-v      ==  output s-a-v

XOR/XNOR gates and flip-flops produce no equivalences (a fault on a flop's
D net is observable at scan-out while a fault on its Q net is not, so the
two are *not* interchangeable in a scan circuit).

The "fault on input pin i of gate g" is the branch fault of that pin when
the source net fans out, and the source's stem fault otherwise -- i.e. the
line feeding the pin.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, fault_key, generate_faults


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Fault, Fault] = {}

    def find(self, x: Fault) -> Fault:
        root = x
        while True:
            parent = self._parent.setdefault(root, root)
            if parent is root:
                break
            root = parent
        # Path compression, iteratively.
        while x is not root:
            nxt = self._parent[x]
            self._parent[x] = root
            x = nxt
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


def _pin_fault(
    branch_sites: Set[Tuple[str, str, int]],
    src: str,
    consumer: str,
    pin: int,
    value: int,
) -> Fault:
    """The line fault feeding (consumer, pin): branch fault if one exists."""
    if (src, consumer, pin) in branch_sites:
        return Fault(site=src, value=value, consumer=consumer, pin=pin)
    return Fault(site=src, value=value)


def equivalence_classes(
    circuit: Circuit, faults: Optional[Iterable[Fault]] = None
) -> List[List[Fault]]:
    """Group the fault universe into gate-local equivalence classes."""
    universe = list(faults) if faults is not None else generate_faults(circuit)
    universe_set = set(universe)
    branch_sites = {
        (f.site, f.consumer, f.pin) for f in universe if f.is_branch
    }

    uf = _UnionFind()
    for fault in universe:
        uf.find(fault)

    for gate in circuit.iter_gates():
        out = gate.output
        base = gate.gtype.base
        if base is GateType.AND:
            in_value, out_value = 0, gate.gtype.inversion_parity
        elif base is GateType.OR:
            in_value, out_value = 1, 1 ^ gate.gtype.inversion_parity
        elif base is GateType.BUF:
            # NOT/BUF: both polarities are equivalent across the gate.
            for in_value in (0, 1):
                out_value = in_value ^ gate.gtype.inversion_parity
                pin_f = _pin_fault(branch_sites, gate.inputs[0], out, 0, in_value)
                out_f = Fault(site=out, value=out_value)
                if pin_f in universe_set and out_f in universe_set:
                    uf.union(out_f, pin_f)
            continue
        else:
            continue  # XOR family, constants: no equivalences
        out_f = Fault(site=out, value=out_value)
        if out_f not in universe_set:
            continue
        for pin, src in enumerate(gate.inputs):
            pin_f = _pin_fault(branch_sites, src, out, pin, in_value)
            if pin_f in universe_set:
                uf.union(out_f, pin_f)

    classes: Dict[Fault, List[Fault]] = {}
    for fault in universe:
        classes.setdefault(uf.find(fault), []).append(fault)
    grouped = [sorted(members, key=fault_key) for members in classes.values()]
    grouped.sort(key=lambda members: fault_key(members[0]))
    return grouped


def collapse_faults(
    circuit: Circuit, faults: Optional[Iterable[Fault]] = None
) -> List[Fault]:
    """One representative fault per equivalence class.

    The representative is the class's stem fault closest to the outputs
    when one exists (the gate-output fault), which keeps reports readable;
    concretely we prefer non-branch faults and break ties by name.
    """
    representatives: List[Fault] = []
    for members in equivalence_classes(circuit, faults):
        stems = [f for f in members if not f.is_branch]
        pick_from = stems if stems else members
        representatives.append(min(pick_from, key=fault_key))
    representatives.sort(key=fault_key)
    return representatives


def collapse_ratio(circuit: Circuit) -> float:
    """|collapsed| / |universe| -- a sanity metric used in tests."""
    universe = generate_faults(circuit)
    collapsed = collapse_faults(circuit, universe)
    return len(collapsed) / len(universe) if universe else 1.0
