"""Parallel-pattern single-fault propagation (PPSFP).

The combinational counterpart of :mod:`repro.faults.fault_sim`: the
circuit is treated as its full-scan combinational expansion (inputs = PIs
and flop outputs, observation points = POs and flop D nets), 64 input
patterns are packed per word, and each fault is simulated against all
patterns in one evaluation pass.

This is the engine behind the single-vector random BIST baseline (the
classical scheme the paper improves on) and the random phase of fault
detectability classification.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.faults.model import Fault, FaultGraph
from repro.simulation.compiled import Injections


def pack_patterns(patterns: np.ndarray) -> np.ndarray:
    """Pack a ``(n_patterns, n_inputs)`` 0/1 matrix into words.

    Returns a ``(n_inputs, n_words)`` uint64 matrix; pattern ``p`` lives
    at word ``p // 64``, bit ``p % 64``.
    """
    patterns = np.asarray(patterns, dtype=np.uint8)
    if patterns.ndim != 2:
        raise ValueError("patterns must be a 2-D 0/1 matrix")
    n_patterns, n_inputs = patterns.shape
    n_words = (n_patterns + 63) // 64
    words = np.zeros((n_inputs, n_words), dtype=np.uint64)
    for p in range(n_patterns):
        word, bit = divmod(p, 64)
        mask = np.uint64(1) << np.uint64(bit)
        rows = np.flatnonzero(patterns[p])
        words[rows, word] |= mask
    return words


class CombinationalFaultSimulator:
    """PPSFP over the full-scan combinational expansion."""

    def __init__(self, graph: FaultGraph) -> None:
        self.graph = graph
        self.model = graph.model
        #: combined input rows: PIs then flop outputs (scan order)
        self.input_idx = np.concatenate([self.model.pi_idx, self.model.q_idx]).astype(
            np.intp
        )
        #: observation rows: POs then flop D nets
        self.obs_idx = np.concatenate([self.model.po_idx, self.model.d_idx]).astype(
            np.intp
        )

    @property
    def num_inputs(self) -> int:
        return len(self.input_idx)

    def fault_free(self, input_words: np.ndarray) -> np.ndarray:
        """Fault-free observation values for packed patterns."""
        vals = self.model.alloc(input_words.shape[1])
        vals[self.input_idx, :] = input_words
        self.model.eval(vals)
        return vals[self.obs_idx, :].copy()

    def detected(
        self,
        input_words: np.ndarray,
        faults: Sequence[Fault],
        valid_mask: np.ndarray = None,
        n_jobs: int = 1,
    ) -> List[Fault]:
        """Faults detected by any packed pattern.

        ``valid_mask`` (``(n_words,)`` uint64) limits which bit positions
        are real patterns when the count is not a multiple of 64.

        ``n_jobs > 1`` shards the fault list across worker processes --
        each fault is an independent single-fault pass, so the split is
        embarrassingly parallel; a pool failure falls back to the serial
        loop with a warning.  The returned order is always the input
        fault order.
        """
        if n_jobs != 1:
            return self._detected_sharded(input_words, faults, valid_mask, n_jobs)
        if input_words.shape[0] != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input rows, got {input_words.shape[0]}"
            )
        n_words = input_words.shape[1]
        if valid_mask is None:
            valid_mask = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF))
        good = self.fault_free(input_words)

        vals = self.model.alloc(n_words)
        hits: List[Fault] = []
        for fault in faults:
            sig = self.graph.signal_of(fault)
            inj = Injections.build_whole_word(
                [(sig, w, fault.value) for w in range(n_words)],
                self.model.level_of_signal,
            )
            vals[:, :] = 0
            vals[self.input_idx, :] = input_words
            self.model.eval(vals, injections=inj)
            diff = (vals[self.obs_idx, :] ^ good) & valid_mask
            if diff.any():
                hits.append(fault)
        return hits

    def _detected_sharded(
        self,
        input_words: np.ndarray,
        faults: Sequence[Fault],
        valid_mask: np.ndarray,
        n_jobs: int,
    ) -> List[Fault]:
        import warnings

        from repro.faults.sharding import SimulatorPool, resolve_n_jobs
        from repro.simulation.compiled import shard_word_ranges

        faults = list(faults)
        jobs = resolve_n_jobs(n_jobs)
        shards = [
            faults[lo:hi] for lo, hi in shard_word_ranges(len(faults), jobs)
        ]
        if jobs <= 1 or len(shards) <= 1:
            return self.detected(input_words, faults, valid_mask)
        try:
            with SimulatorPool(self, jobs) as pool:
                results = pool.map_method(
                    "detected",
                    [((input_words, shard, valid_mask), {}) for shard in shards],
                )
        except Exception as exc:
            warnings.warn(
                f"parallel PPSFP failed ({exc!r}); "
                "falling back to the serial loop",
                RuntimeWarning,
                stacklevel=2,
            )
            return self.detected(input_words, faults, valid_mask)
        # Shards are contiguous slices, so concatenation preserves the
        # serial loop's input-order result.
        return [fault for shard_hits in results for fault in shard_hits]

    def detection_counts(
        self, input_words: np.ndarray, faults: Sequence[Fault]
    ) -> Dict[Fault, int]:
        """Per-fault count of detecting patterns (profiling helper)."""
        good = self.fault_free(input_words)
        n_words = input_words.shape[1]
        vals = self.model.alloc(n_words)
        counts: Dict[Fault, int] = {}
        for fault in faults:
            sig = self.graph.signal_of(fault)
            inj = Injections.build_whole_word(
                [(sig, w, fault.value) for w in range(n_words)],
                self.model.level_of_signal,
            )
            vals[:, :] = 0
            vals[self.input_idx, :] = input_words
            self.model.eval(vals, injections=inj)
            diff = vals[self.obs_idx, :] ^ good
            detecting = np.bitwise_or.reduce(diff, axis=0)
            counts[fault] = int(
                sum(bin(int(word)).count("1") for word in detecting)
            )
        return counts
