"""Maximal-length linear feedback shift registers.

A Fibonacci LFSR of width ``n`` with primitive feedback polynomial visits
all ``2**n - 1`` nonzero states before repeating, which is why LFSRs are
the canonical low-cost pseudo-random pattern generator in BIST.  The tap
table below lists one primitive polynomial per width (taps as bit positions
``n .. 1``, XOR feedback form), following the widely used XAPP052 table.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

#: Primitive polynomial taps per width: ``feedback = XOR of state bits at
#: these 1-based positions`` (position 1 is the register's output end).
PRIMITIVE_TAPS = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
    33: (33, 20),
    34: (34, 27, 2, 1),
    35: (35, 33),
    36: (36, 25),
    37: (37, 5, 4, 3, 2, 1),
    38: (38, 6, 5, 1),
    39: (39, 35),
    40: (40, 38, 21, 19),
    41: (41, 38),
    42: (42, 41, 20, 19),
    43: (43, 42, 38, 37),
    44: (44, 43, 18, 17),
    45: (45, 44, 42, 41),
    46: (46, 45, 26, 25),
    47: (47, 42),
    48: (48, 47, 21, 20),
    49: (49, 40),
    50: (50, 49, 24, 23),
    51: (51, 50, 36, 35),
    52: (52, 49),
    53: (53, 52, 38, 37),
    54: (54, 53, 18, 17),
    55: (55, 31),
    56: (56, 55, 35, 34),
    57: (57, 50),
    58: (58, 39),
    59: (59, 58, 38, 37),
    60: (60, 59),
    61: (61, 60, 46, 45),
    62: (62, 61, 6, 5),
    63: (63, 62),
    64: (64, 63, 61, 60),
}


class Lfsr:
    """A Fibonacci LFSR producing one pseudo-random bit per step.

    The register state is held as an integer whose bit ``i`` (0-based) is
    stage ``i + 1`` of the register.  Each :meth:`step` outputs stage 1,
    shifts the register down, and feeds the XOR of the tap stages into the
    top stage.  The all-zero state is a lock-up state in the XOR form and
    is rejected as a seed.
    """

    def __init__(
        self,
        width: int,
        seed: int = 1,
        taps: Optional[Sequence[int]] = None,
    ) -> None:
        if taps is None:
            if width not in PRIMITIVE_TAPS:
                raise ValueError(f"no built-in primitive taps for width {width}")
            taps = PRIMITIVE_TAPS[width]
        if any(t < 1 or t > width for t in taps):
            raise ValueError(f"tap out of range for width {width}: {taps}")
        if width not in taps:
            raise ValueError("tap list must include the register width")
        self.width = width
        self.taps: Tuple[int, ...] = tuple(sorted(set(taps), reverse=True))
        self._mask = (1 << width) - 1
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        """Load a new register state (nonzero, truncated to the width)."""
        state = seed & self._mask
        if state == 0:
            raise ValueError("LFSR seed must be nonzero in the register width")
        self._state = state

    @property
    def state(self) -> int:
        return self._state

    def step(self) -> int:
        """Advance one clock and return the output bit (stage 1).

        With the register emitting stage 1 and shifting toward it, the
        recurrence realized by tap list ``{n, t2, ...}`` is
        ``a[k+n] = a[k] ^ a[k+n-t2] ^ ...`` -- the reciprocal of the
        published polynomial, which is primitive iff the original is, so
        the sequence is maximal length either way.
        """
        state = self._state
        out = state & 1
        fb = 0
        for tap in self.taps:
            fb ^= (state >> (self.width - tap)) & 1
        self._state = (state >> 1) | (fb << (self.width - 1))
        return out

    def bits(self, n: int) -> List[int]:
        """The next ``n`` output bits."""
        return [self.step() for _ in range(n)]

    def word(self, n: int) -> int:
        """The next ``n`` bits packed MSB-first into an integer."""
        value = 0
        for _ in range(n):
            value = (value << 1) | self.step()
        return value

    def period(self, limit: Optional[int] = None) -> int:
        """Count steps until the state recurs (test helper; exponential!)."""
        start = self._state
        cap = limit if limit is not None else (1 << self.width)
        count = 0
        while count < cap + 1:
            self.step()
            count += 1
            if self._state == start:
                return count
        raise RuntimeError("period exceeds limit")


def lfsr_sequence(width: int, seed: int, n: int) -> List[int]:
    """Convenience: the first ``n`` output bits of a fresh LFSR."""
    return Lfsr(width, seed).bits(n)


def taps_to_polynomial(taps: Iterable[int]) -> int:
    """Represent taps as the coefficient bitmask of the feedback polynomial.

    Bit ``i`` of the result is the coefficient of ``x**i``; the constant
    term (``x**0 = 1``) is always set.
    """
    poly = 1
    for tap in taps:
        poly |= 1 << tap
    return poly
