"""Weighted random pattern generation.

Section 1 of the paper lists weighted random patterns as one of the
standard remedies when plain random patterns leave faults undetected.  We
implement it as an extension/baseline: a :class:`WeightedSource` produces
bits whose probability of being 1 is a per-position weight drawn from a
small discrete weight set (as in classic weighted-random BIST, where
weights are realized by ANDing/ORing a few LFSR cells).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.rpg.prng import RandomSource

#: The classic 3-bit weight set: probabilities realizable by combining up
#: to three equiprobable LFSR bits.
CLASSIC_WEIGHTS = (0.125, 0.25, 0.5, 0.75, 0.875)


class WeightedSource:
    """Produce weighted bits from an underlying uniform source.

    Each position ``i`` of a pattern has weight ``weights[i % len]``; a
    weight ``w`` means ``P(bit = 1) = w``.  Weights must be multiples of
    1/8 so they are realizable with three uniform bits, mirroring hardware
    weighted-pattern generators.
    """

    def __init__(self, base: RandomSource, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        self._thresholds: List[int] = []
        for w in weights:
            scaled = round(w * 8)
            if not 0 <= scaled <= 8 or abs(scaled - w * 8) > 1e-9:
                raise ValueError(f"weight {w} is not a multiple of 1/8 in [0, 1]")
            self._thresholds.append(scaled)
        self._base = base

    def bit(self, position: int = 0) -> int:
        """Next bit, weighted for pattern position ``position``."""
        threshold = self._thresholds[position % len(self._thresholds)]
        # A 3-bit uniform draw u in [0, 8); bit = 1 iff u < 8w.
        u = (self._base.bit() << 2) | (self._base.bit() << 1) | self._base.bit()
        return 1 if u < threshold else 0

    def pattern(self, n: int) -> List[int]:
        """An ``n``-bit weighted pattern (position-indexed weights)."""
        return [self.bit(i) for i in range(n)]


def uniform_weights(n: int) -> List[float]:
    """The degenerate weight vector that reduces to unweighted patterns."""
    return [0.5] * n


def profile_weights(
    care_ones: Sequence[int],
    care_total: Sequence[int],
    floor: float = 0.125,
    ceil: float = 0.875,
) -> List[float]:
    """Derive per-position weights from a deterministic test-cube profile.

    ``care_ones[i]`` / ``care_total[i]`` estimate how often position ``i``
    wants to be 1 among care bits; the result is snapped to the classic
    1/8-grid and clamped away from 0/1 so every pattern remains possible.
    """
    if len(care_ones) != len(care_total):
        raise ValueError("care_ones and care_total must have equal length")
    weights: List[float] = []
    for ones, total in zip(care_ones, care_total):
        w = 0.5 if total == 0 else ones / total
        w = min(max(round(w * 8) / 8, floor), ceil)
        weights.append(w)
    return weights
