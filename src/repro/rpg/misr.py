"""Multiple-input signature registers (MISR) for BIST response compaction.

A real BIST implementation of the paper's scheme would not compare every
primary output against stored good values; it would compact the response
stream into an LFSR-based signature and compare one signature at the end.
This module provides that substrate:

- :class:`Misr` -- a multiple-input signature register over GF(2): each
  clock, the register shifts with primitive-polynomial feedback and XORs
  the parallel input word into its stages,
- :class:`SignatureCollector` -- adapts the observation streams of the
  fault simulator (POs per cycle, limited-scan-out bits, final scan-out)
  into MISR updates and produces the final signature,
- :func:`aliasing_probability` -- the classical ``2**-n`` estimate.

Signature-based detection is pessimistic only through aliasing; the
experiments use it to show the paper's coverage survives realistic
response compaction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.rpg.lfsr import PRIMITIVE_TAPS


class Misr:
    """A multiple-input signature register of ``width`` stages.

    State bit ``i`` is stage ``i``.  Each :meth:`clock` performs the
    LFSR shift (feedback from the primitive taps) and XORs the input
    word into the low stages.  Input words wider than the register are
    rejected -- fold them first or use a wider MISR.
    """

    def __init__(self, width: int, seed: int = 0) -> None:
        if width not in PRIMITIVE_TAPS:
            raise ValueError(f"no primitive polynomial for width {width}")
        self.width = width
        self._mask = (1 << width) - 1
        self.taps = PRIMITIVE_TAPS[width]
        self.reset(seed)

    def reset(self, seed: int = 0) -> None:
        """A MISR may start all-zero (inputs break the lockup)."""
        self._state = seed & self._mask

    @property
    def signature(self) -> int:
        return self._state

    def clock(self, input_word: int = 0) -> None:
        """One compaction clock with a parallel input word."""
        if input_word < 0 or input_word > self._mask:
            raise ValueError(
                f"input word 0x{input_word:x} wider than {self.width} stages"
            )
        state = self._state
        fb = 0
        for tap in self.taps:
            fb ^= (state >> (self.width - tap)) & 1
        state = ((state >> 1) | (fb << (self.width - 1))) & self._mask
        self._state = state ^ input_word

    def compact(self, words: Iterable[int]) -> int:
        for word in words:
            self.clock(word)
        return self.signature


def fold_bits(bits: Sequence[int], width: int) -> int:
    """Fold a bit vector into a ``width``-bit input word (XOR overlay)."""
    word = 0
    for i, bit in enumerate(bits):
        if bit:
            word ^= 1 << (i % width)
    return word


class SignatureCollector:
    """Compacts a test's observation streams into one signature.

    The collector mirrors the fault simulator's observation points: call
    :meth:`outputs` once per functional cycle, :meth:`scan_bits` for the
    bits leaving the chain during a limited scan operation, and
    :meth:`final_state` after the last scan-out.  Two machines with the
    same call sequence and the same observed values produce the same
    signature; any difference almost surely (1 - 2**-width) perturbs it.
    """

    def __init__(self, width: int = 32, seed: int = 0) -> None:
        self.misr = Misr(width, seed)
        self.width = width

    def outputs(self, po_bits: Sequence[int]) -> None:
        self.misr.clock(fold_bits(po_bits, self.width))

    def scan_bits(self, bits: Sequence[int]) -> None:
        for bit in bits:  # serial stream: one compaction clock per bit
            self.misr.clock(bit & 1)

    def final_state(self, state_bits: Sequence[int]) -> None:
        self.scan_bits(state_bits)

    @property
    def signature(self) -> int:
        return self.misr.signature


def aliasing_probability(width: int) -> float:
    """The classical steady-state aliasing estimate ``2**-width``."""
    return 2.0 ** -width


def signature_of_trace(trace, width: int = 32, seed: int = 0) -> int:
    """Signature of a :class:`~repro.simulation.trace.TestTrace`.

    Convenience for experiments: compacts the trace's outputs, its
    limited-scan-out bits, and the final state, in simulation order.
    """
    collector = SignatureCollector(width, seed)
    for u in range(trace.length):
        if trace.scanout[u]:
            collector.scan_bits(trace.scanout[u])
        collector.outputs([int(b) for b in trace.outputs[u]])
    collector.final_state([int(b) for b in trace.states[trace.length]])
    return collector.signature
