"""Reproducible random sources and the paper's modulo draws.

The generation procedures in the paper only need two primitives:

- a stream of uniform bits (scan-in states, test vectors, limited-scan
  fill bits), and
- draws ``r mod D`` where ``r`` is uniform on ``[0, R]`` with ``R >> D``
  (Procedure 1's ``r1 mod D1`` insertion test and ``r2 mod D2`` shift
  amount).

:class:`RandomSource` captures that contract.  Two implementations are
provided: :class:`LfsrSource` (hardware-faithful, an on-chip LFSR would
produce the identical sequence) and :class:`NumpySource` (PCG64-backed,
faster for large circuits).  Both are deterministic given their seed, which
is what makes the paper's scheme storable: re-applying a test set only
requires re-seeding.
"""

from __future__ import annotations

from typing import List, Protocol

import numpy as np

from repro.rpg.lfsr import Lfsr

#: Width of the uniform draws backing ``mod_draw``; ``R = 2**16 - 1`` is
#: ``>> D`` for every D the procedures use (D1 <= 10, D2 = N_SV + 1).
DRAW_BITS = 16


class RandomSource(Protocol):
    """Deterministic stream of bits and small uniform integers."""

    def bit(self) -> int:
        """Next uniform bit (0 or 1)."""

    def bits(self, n: int) -> List[int]:
        """Next ``n`` uniform bits."""

    def draw(self) -> int:
        """Next uniform integer in ``[0, 2**DRAW_BITS - 1]``."""

    def mod_draw(self, d: int) -> int:
        """The paper's ``r mod D`` draw (approximately uniform on [0, d))."""

    def fork(self, salt: int) -> "RandomSource":
        """An independent source derived deterministically from this seed."""


class LfsrSource:
    """A :class:`RandomSource` backed by a 32-bit maximal-length LFSR."""

    def __init__(self, seed: int, width: int = 32) -> None:
        if seed <= 0:
            seed = -seed + 1 or 1
        self._seed = seed
        self._width = width
        self._lfsr = Lfsr(width, seed=(seed % ((1 << width) - 1)) or 1)

    def bit(self) -> int:
        return self._lfsr.step()

    def bits(self, n: int) -> List[int]:
        return self._lfsr.bits(n)

    def draw(self) -> int:
        return self._lfsr.word(DRAW_BITS)

    def mod_draw(self, d: int) -> int:
        if d < 1:
            raise ValueError(f"modulus must be >= 1, got {d}")
        return self.draw() % d

    def fork(self, salt: int) -> "LfsrSource":
        # Mix the salt into the seed with an odd multiplier so that
        # consecutive salts land far apart in the LFSR's state space.
        mixed = (self._seed * 0x9E3779B1 + salt * 0x85EBCA77 + 1) & 0x7FFFFFFF
        return LfsrSource(mixed or 1, width=self._width)


class NumpySource:
    """A :class:`RandomSource` backed by numpy's PCG64 generator."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._rng = np.random.Generator(np.random.PCG64(self._seed))

    def bit(self) -> int:
        return int(self._rng.integers(0, 2))

    def bits(self, n: int) -> List[int]:
        return self._rng.integers(0, 2, size=n).tolist()

    def draw(self) -> int:
        return int(self._rng.integers(0, 1 << DRAW_BITS))

    def mod_draw(self, d: int) -> int:
        if d < 1:
            raise ValueError(f"modulus must be >= 1, got {d}")
        return self.draw() % d

    def fork(self, salt: int) -> "NumpySource":
        return NumpySource((self._seed * 0x9E3779B1 + salt * 0x85EBCA77 + 1) & 0x7FFFFFFFFFFF)


def make_source(seed: int, kind: str = "numpy") -> RandomSource:
    """Construct a :class:`RandomSource` of the requested kind.

    ``kind='lfsr'`` gives the hardware-faithful generator; ``kind='numpy'``
    (the default) is statistically stronger and faster, which matters for
    fault-simulation experiments.  Both are fully reproducible.
    """
    if kind == "lfsr":
        return LfsrSource(seed)
    if kind == "numpy":
        return NumpySource(seed)
    raise ValueError(f"unknown random source kind: {kind!r}")
