"""STUMPS-style parallel pattern generation.

STUMPS (Self-Test Using MISR and Parallel Shift register sequence
generator) is the standard architecture for multi-chain scan BIST: one
LFSR drives all scan chains in parallel through a *phase shifter* -- an
XOR network giving every chain a distinct, widely separated phase of the
LFSR sequence, so parallel chains do not receive correlated (shifted)
copies of the same stream.

Together with :mod:`repro.simulation.multichain` and
:class:`repro.rpg.misr.Misr`, this completes the hardware picture of the
[5]/[6]-style configuration the paper compares against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.rpg.lfsr import Lfsr


class PhaseShifter:
    """A fixed XOR network over the LFSR state.

    Channel ``c`` outputs the XOR of ``taps_per_channel`` distinct LFSR
    stages, drawn deterministically from the seed.  Three taps per
    channel is the classical choice (good phase separation, tiny area).
    """

    def __init__(
        self,
        width: int,
        channels: int,
        taps_per_channel: int = 3,
        seed: int = 1,
    ) -> None:
        if channels < 1:
            raise ValueError("need at least one channel")
        if not 1 <= taps_per_channel <= width:
            raise ValueError("taps_per_channel out of range")
        rng = np.random.Generator(np.random.PCG64(seed))
        self.width = width
        self.channels = channels
        self.taps: List[List[int]] = []
        seen = set()
        for _c in range(channels):
            while True:
                taps = tuple(
                    sorted(
                        int(t)
                        for t in rng.choice(
                            width, size=taps_per_channel, replace=False
                        )
                    )
                )
                if taps not in seen:
                    seen.add(taps)
                    break
            self.taps.append(list(taps))

    def outputs(self, state: int) -> List[int]:
        """One bit per channel from the current LFSR state."""
        bits = []
        for taps in self.taps:
            b = 0
            for t in taps:
                b ^= (state >> t) & 1
            bits.append(b)
        return bits


class StumpsGenerator:
    """LFSR + phase shifter feeding ``channels`` scan chains."""

    def __init__(
        self,
        channels: int,
        lfsr_width: int = 32,
        seed: int = 1,
        shifter_seed: int = 7,
        taps_per_channel: int = 3,
    ) -> None:
        self.lfsr = Lfsr(lfsr_width, seed=seed)
        self.shifter = PhaseShifter(
            lfsr_width, channels, taps_per_channel, shifter_seed
        )
        self.channels = channels

    def shift_cycle(self) -> List[int]:
        """One scan clock: every chain receives one bit."""
        bits = self.shifter.outputs(self.lfsr.state)
        self.lfsr.step()
        return bits

    def load_chains(self, chain_lengths: Sequence[int]) -> List[List[int]]:
        """A complete parallel scan load.

        All chains shift for ``max(chain_lengths)`` cycles; shorter
        chains simply stop capturing early (their first bits fall out),
        so each chain ``c`` keeps its *last* ``chain_lengths[c]`` bits.
        Returns per-chain content, scan-in order (index 0 = the bit
        closest to scan-in after the load).
        """
        if len(chain_lengths) != self.channels:
            raise ValueError("need one length per channel")
        cycles = max(chain_lengths, default=0)
        streams: List[List[int]] = [[] for _ in range(self.channels)]
        for _ in range(cycles):
            for c, bit in enumerate(self.shift_cycle()):
                streams[c].append(bit)
        out: List[List[int]] = []
        for c, length in enumerate(chain_lengths):
            kept = streams[c][cycles - length :] if length else []
            # The last bit scanned in sits at the scan-in end (index 0).
            out.append(list(reversed(kept)))
        return out

    def state_bits(self, chain_lengths: Sequence[int]) -> List[int]:
        """Flattened state vector for
        :class:`repro.simulation.multichain.MultiChainConfig` chain order."""
        chains = self.load_chains(chain_lengths)
        flat: List[int] = []
        for chain in chains:
            flat.extend(chain)
        return flat


def phase_separation_check(
    generator: StumpsGenerator, cycles: int = 256
) -> float:
    """Fraction of channel pairs whose streams are NOT plain shifted
    copies of each other over a window (1.0 = fully decorrelated).

    The whole point of the phase shifter; asserted in tests.
    """
    streams: List[List[int]] = [[] for _ in range(generator.channels)]
    for _ in range(cycles):
        for c, bit in enumerate(generator.shift_cycle()):
            streams[c].append(bit)
    n = generator.channels
    ok = 0
    pairs = 0
    max_shift = min(8, cycles // 4)
    for a in range(n):
        for b in range(a + 1, n):
            pairs += 1
            shifted_copy = False
            for s in range(max_shift):
                if streams[a][s : s + cycles // 2] == streams[b][: cycles // 2]:
                    shifted_copy = True
                    break
                if streams[b][s : s + cycles // 2] == streams[a][: cycles // 2]:
                    shifted_copy = True
                    break
            if not shifted_copy:
                ok += 1
    return ok / pairs if pairs else 1.0
