"""Random pattern generation.

The paper assumes on-chip LFSRs generate (a) the test vectors and scan-in
states of the initial test set ``TS0`` and (b) the draws that control the
random insertion of limited scan operations.  This package provides:

- :mod:`repro.rpg.lfsr` -- maximal-length Fibonacci LFSRs with a primitive
  polynomial table for widths 2..64,
- :mod:`repro.rpg.prng` -- the :class:`RandomSource` abstraction used by
  the rest of the library (LFSR-backed for hardware fidelity, numpy-backed
  for speed), including the paper's ``r mod D`` draws,
- :mod:`repro.rpg.weighted` -- weighted random pattern sources (the
  Section 1 alternative technique, implemented as an extension).
"""

from repro.rpg.lfsr import Lfsr, PRIMITIVE_TAPS
from repro.rpg.misr import Misr, SignatureCollector, signature_of_trace
from repro.rpg.prng import LfsrSource, NumpySource, RandomSource, make_source
from repro.rpg.weighted import WeightedSource

__all__ = [
    "Lfsr",
    "PRIMITIVE_TAPS",
    "RandomSource",
    "LfsrSource",
    "NumpySource",
    "make_source",
    "WeightedSource",
    "Misr",
    "SignatureCollector",
    "signature_of_trace",
]
