"""Command-line interface.

Usage::

    python -m repro list
    python -m repro stats s208
    python -m repro faults s208
    python -m repro lint s208 [--json] [--strict]
    python -m repro analyze s208 [--json] [--top 10]
    python -m repro run s208 --la 8 --lb 16 --n 64
    python -m repro run s208 --checkpoint s208.journal [--resume]
    python -m repro first-complete s208
    python -m repro table 6 [--full]
    python -m repro serve --data-dir serve-data [--port 8472]
    python -m repro serve --healthz --data-dir serve-data
    python -m repro convert s27.bench s27.v

Circuits are catalog names (``python -m repro list``) or paths to
``.bench`` / ``.v`` netlist files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench_circuits import available_circuits, circuit_info, load_circuit
from repro.circuit.bench_parser import (
    BenchParseError,
    parse_bench_file,
    write_bench_file,
)
from repro.circuit.netlist import Circuit
from repro.circuit.stats import circuit_stats
from repro.circuit.verilog import (
    VerilogParseError,
    parse_verilog_file,
    write_verilog_file,
)
from repro.core.config import BistConfig, D1_DECREASING, D1_INCREASING
from repro.core.session import LimitedScanBist


class IngestionError(KeyError):
    """A netlist could not be loaded; the message is user-presentable.

    Subclasses ``KeyError`` so existing callers that treated an unknown
    benchmark name as a lookup failure keep working.
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes the message; we want it verbatim.
        return str(self.args[0]) if self.args else ""


def resolve_circuit(spec: str) -> Circuit:
    """A catalog name, or a path ending in .bench / .v.

    This is the CLI's ingestion boundary: every malformed input surfaces
    as :class:`IngestionError` with the parser's full diagnostic list,
    never as a raw traceback.
    """
    path = Path(spec)
    try:
        if path.suffix == ".bench" and path.exists():
            return parse_bench_file(path)
        if path.suffix in (".v", ".sv") and path.exists():
            return parse_verilog_file(path)
        return load_circuit(spec)
    except (BenchParseError, VerilogParseError) as exc:
        raise IngestionError(f"cannot parse {spec}:\n{exc}") from exc
    except KeyError as exc:
        raise IngestionError(str(exc.args[0]) if exc.args else str(exc)) from exc
    except (OSError, UnicodeDecodeError) as exc:
        raise IngestionError(f"cannot read {spec}: {exc}") from exc


def cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'name':<10} {'pi':>4} {'po':>4} {'ff':>6} {'gates':>7} "
          f"{'tier':<7} source")
    for name in available_circuits():
        e = circuit_info(name)
        source = "synthetic" if e.synthetic else "real netlist"
        print(f"{e.name:<10} {e.n_pi:>4} {e.n_po:>4} {e.n_ff:>6} "
              f"{e.n_gates:>7} {e.tier:<7} {source}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    print(circuit_stats(circuit).as_row())
    if args.testability:
        from repro.atpg.scoap import testability_profile

        profile = testability_profile(circuit)
        print("SCOAP difficulty profile over collapsed faults:")
        for key, value in profile.items():
            print(f"  {key}: {value:.2f}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.atpg.classify import classify_faults
    from repro.faults.collapse import collapse_faults
    from repro.faults.model import generate_faults

    circuit = resolve_circuit(args.circuit)
    universe = generate_faults(circuit)
    collapsed = collapse_faults(circuit, universe)
    print(f"fault universe: {len(universe)}  collapsed: {len(collapsed)}")
    cls = classify_faults(circuit, faults=collapsed)
    print(f"classification: {cls.summary()}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import CATALOG_SUPPRESSIONS, LintOptions, lint_circuit

    if args.all:
        targets = [
            (name, load_circuit(name))
            for name in available_circuits(tier=args.tier)
        ]
    elif args.tier:
        print("lint: --tier only applies with --all", file=sys.stderr)
        return 2
    elif args.circuit:
        # A netlist that does not even parse is the hardest lint failure;
        # report the parse diagnostics in place of a lint report.
        try:
            targets = [(args.circuit, resolve_circuit(args.circuit))]
        except IngestionError as exc:
            print(f"{args.circuit}: {exc}")
            return 1
    else:
        print("lint: give a circuit or --all", file=sys.stderr)
        return 2

    suppress = tuple(s for s in args.suppress.split(",") if s)
    exit_code = 0
    payload = []
    for name, circuit in targets:
        per_circuit = suppress
        if args.all:
            # Documented expected findings on catalog stand-ins.
            per_circuit = suppress + CATALOG_SUPPRESSIONS.get(name, ())
        options = LintOptions(suppress=per_circuit)
        if args.scoap_threshold is not None:
            options = LintOptions(
                scoap_difficulty_threshold=args.scoap_threshold,
                suppress=per_circuit,
            )
        report = lint_circuit(circuit, options)
        if args.json:
            payload.append(report.to_dict())
        else:
            print(report.render())
        if report.has_errors or (args.strict and report.warnings):
            exit_code = 1
    if args.json:
        print(json.dumps(payload if args.all else payload[0], indent=2))
    return exit_code


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.cop import analyze_circuit
    from repro.circuit.cache import CompileCache
    from repro.circuit.levelize import CombinationalCycleError

    try:
        circuit = resolve_circuit(args.circuit)
    except IngestionError as exc:
        print(f"{args.circuit}: {exc}", file=sys.stderr)
        return 1
    cache = (
        CompileCache(args.cache_dir) if args.cache_dir
        else CompileCache.from_env()
    )
    try:
        analysis = analyze_circuit(
            circuit, rpr_threshold=args.threshold, cache=cache
        )
    except (KeyError, CombinationalCycleError) as exc:
        # Structurally broken netlist; `repro lint` pinpoints the cause.
        print(
            f"{args.circuit}: cannot analyze ({exc}); run `repro lint` "
            f"for the structural diagnosis",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(analysis.to_dict(top_k=args.top), indent=2))
    else:
        print(analysis.render(top_k=args.top))
    return 0


def _config_from_args(args: argparse.Namespace) -> BistConfig:
    return BistConfig(
        la=args.la,
        lb=args.lb,
        n=args.n,
        base_seed=args.seed,
        d1_values=(
            D1_DECREASING if args.d1_order == "decreasing" else D1_INCREASING
        ),
        max_iterations=args.max_iterations,
        candidate_bias=args.candidate_bias,
        n_jobs=args.jobs,
        pool=args.pool,
        candidate_batch=args.candidate_batch,
        shard_timeout=args.shard_timeout,
        shard_retries=args.shard_retries,
    )


def _bist_from_args(args: argparse.Namespace, circuit: Circuit,
                    config: BistConfig) -> LimitedScanBist:
    """Session construction shared by ``run`` and ``first-complete``.

    Wires up the compile cache (``--cache-dir`` or ``$REPRO_CACHE_DIR``)
    and the target-fault universe.  ``--targets collapsed`` skips the
    PODEM detectability classification and targets the full collapsed
    set -- the right choice at real-silicon sizes, where classification
    costs far more than the fault simulation it would trim.
    """
    from repro.circuit.cache import CompileCache

    cache = (
        CompileCache(args.cache_dir) if args.cache_dir
        else CompileCache.from_env()
    )
    targets = None
    if args.targets == "collapsed":
        from repro.faults.collapse import collapse_faults

        targets = collapse_faults(circuit)
    return LimitedScanBist(
        circuit, config=config, target_faults=targets, cache=cache
    )


def cmd_run(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("run: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    circuit = resolve_circuit(args.circuit)
    config = _config_from_args(args)
    bist = _bist_from_args(args, circuit, config)
    if args.checkpoint:
        result = bist.run_checkpointed(args.checkpoint, resume=args.resume)
    else:
        result = bist.run()
    print(result.summary())
    for pair in result.pairs:
        print(f"  I={pair.iteration:<3} D1={pair.d1:<3} "
              f"+{pair.newly_detected} faults, {pair.nsh} shift cycles")
    if result.degradation is not None:
        print(f"degraded: {result.degradation.summary()}", file=sys.stderr)
    return 0 if result.complete else 1


def cmd_first_complete(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    bist = _bist_from_args(args, circuit, _config_from_args(args))
    report = bist.first_complete(max_combos=args.max_combos)
    print(report.row())
    print(report.result.summary())
    return 0 if report.result.complete else 1


def cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import table1, table3, table4, table5, table6, table7, table8

    drivers = {
        "1": lambda: table1.run().render(),
        "3": lambda: table3.run(full=args.full).render(),
        "4": lambda: table4.run(full=args.full).render(),
        "5": lambda: table5.run().render(),
        "6": lambda: table6.run(
            table6.PAPER_CIRCUITS if args.full else table6.DEFAULT_CIRCUITS
        ).render(),
        "7": lambda: table7.run().render(),
        "8": lambda: table8.run().render(),
    }
    if args.number not in drivers:
        print(f"no driver for table {args.number}; available: "
              f"{', '.join(sorted(drivers))}", file=sys.stderr)
        return 2
    print(drivers[args.number]())
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz.corpus import load_corpus, replay_entry
    from repro.fuzz.runner import FuzzConfig, run_fuzz

    if args.replay:
        entries = load_corpus(args.replay)
        if not entries:
            print(f"fuzz: no corpus entries under {args.replay}",
                  file=sys.stderr)
            return 2
        failures = 0
        for entry in entries:
            problem = replay_entry(entry)
            status = "ok" if problem is None else f"FAIL ({problem})"
            print(f"{entry.path.name}: {status}")
            failures += problem is not None
        return 1 if failures else 0

    config = FuzzConfig(
        budget=args.budget,
        seed=args.seed,
        timeout_s=args.timeout,
        mem_mb=args.mem_mb,
        sandbox=not args.no_sandbox,
        minimize=args.minimize,
        corpus_dir=args.corpus,
    )
    report = run_fuzz(config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.clean else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.robustness.chaos import ServeChaosPlan
    from repro.serve.budgets import JobBudget
    from repro.serve.jobs import JobManager
    from repro.serve.queue import MultiTenantQueue
    from repro.serve.server import serve_forever

    if args.healthz:
        # Probe mode: hit a running server's /healthz and print the JSON.
        from repro.serve.client import ServeClient
        from repro.serve.errors import ServeError

        port = args.port
        port_file = Path(args.data_dir) / "serve.port"
        if port == 0 and port_file.exists():
            port = int(port_file.read_text("utf-8").strip())
        if port == 0:
            print("serve: --healthz needs --port or a serve.port file",
                  file=sys.stderr)
            return 2
        try:
            payload = ServeClient(args.host, port).healthz()
        except (ServeError, OSError) as exc:
            print(f"serve: health check failed: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    chaos = ServeChaosPlan(
        exit_after_submits=args.chaos_exit_after_submits,
    )
    manager = JobManager(
        args.data_dir,
        queue=MultiTenantQueue(
            max_depth=args.max_queue,
            rate_per_s=args.rate_per_s,
            burst=args.burst,
        ),
        budget=JobBudget(
            wall_s=args.wall_budget,
            mem_mb=args.mem_mb or None,
            max_retries=args.retries,
        ),
        compile_cache_dir=args.cache_dir,
        chaos=chaos,
        allow_request_chaos=args.enable_chaos,
    )
    print(
        f"repro serve: data dir {manager.data_dir}, "
        f"{manager.recovered_jobs} job(s) recovered",
        file=sys.stderr,
    )
    try:
        asyncio.run(
            serve_forever(
                manager,
                host=args.host,
                port=args.port,
                workers=args.workers,
                port_file=manager.data_dir / "serve.port",
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - loop usually handles it
        pass
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.source)
    dest = Path(args.dest)
    if dest.suffix == ".bench":
        write_bench_file(circuit, dest)
    elif dest.suffix in (".v", ".sv"):
        write_verilog_file(circuit, dest)
    else:
        print(f"unknown output format: {dest.suffix}", file=sys.stderr)
        return 2
    print(f"wrote {dest}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Random limited-scan BIST (DAC 2001)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list catalog circuits").set_defaults(
        func=cmd_list
    )

    p = sub.add_parser("stats", help="circuit statistics")
    p.add_argument("circuit")
    p.add_argument("--testability", action="store_true",
                   help="include the SCOAP difficulty profile")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("faults", help="fault counts and classification")
    p.add_argument("circuit")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("lint", help="design-rule & testability lint")
    p.add_argument("circuit", nargs="?",
                   help="catalog name or netlist path (or use --all)")
    p.add_argument("--all", action="store_true",
                   help="lint every catalog circuit (with its documented "
                        "suppressions)")
    p.add_argument("--json", action="store_true",
                   help="emit the structured report as JSON")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too, not just errors")
    p.add_argument("--suppress", default="",
                   help="comma-separated rule IDs to skip (e.g. S006,T002)")
    p.add_argument("--scoap-threshold", type=int, default=None,
                   help="T001 random-pattern-resistance difficulty cutoff")
    p.add_argument("--tier", choices=("small", "medium", "large"),
                   default=None,
                   help="with --all: lint only the named catalog tier "
                        "instead of compiling everything")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="static COP testability report (RPR faults, scan benefit)",
    )
    p.add_argument("circuit",
                   help="catalog name or netlist path")
    p.add_argument("--json", action="store_true",
                   help="emit the structured report as JSON")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="how many RPR faults / state bits to list "
                        "(default 10)")
    p.add_argument("--threshold", type=float, default=1e-3, metavar="P",
                   help="RPR cutoff: faults with estimated detection "
                        "probability below P (default 1e-3)")
    p.add_argument("--cache-dir", metavar="DIR", dest="cache_dir",
                   help="compile-cache directory (default: "
                        "$REPRO_CACHE_DIR if set); COP measures are "
                        "cached by circuit fingerprint")
    p.set_defaults(func=cmd_analyze)

    def add_bist_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("circuit")
        p.add_argument("--la", type=int, default=8)
        p.add_argument("--lb", type=int, default=16)
        p.add_argument("--n", type=int, default=64)
        p.add_argument("--seed", type=int, default=20010618)
        p.add_argument("--d1-order", choices=("increasing", "decreasing"),
                       default="increasing")
        p.add_argument("--candidate-bias",
                       choices=("uniform", "testability"),
                       default="uniform", dest="candidate_bias",
                       help="candidate (I, D1) search order: 'uniform' "
                            "walks --d1-order as-is (byte-identical to "
                            "previous releases); 'testability' reorders "
                            "D1 around the COP scan-benefit pivot so "
                            "effective depths are tried first")
        p.add_argument("--jobs", type=int, default=1,
                       help="fault-simulation worker processes "
                            "(1 = serial, -1 = all cores)")
        p.add_argument("--pool", choices=("persistent", "sharded"),
                       default="persistent",
                       help="parallel back end for --jobs > 1: the "
                            "persistent shared-memory worker pool or the "
                            "legacy per-dispatch sharded executor")
        p.add_argument("--candidate-batch", type=int, default=1,
                       metavar="N", dest="candidate_batch",
                       help="candidate test sets evaluated per "
                            "simulation pass (1 = one at a time); "
                            "results are byte-identical for any value")
        p.add_argument("--shard-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-shard watchdog timeout before a hung "
                            "worker pool is respawned (default: wait "
                            "forever)")
        p.add_argument("--shard-retries", type=int, default=2,
                       help="parallel retries for a failed shard before "
                            "it is re-run serially (default: 2)")
        p.add_argument("--max-iterations", type=int, default=60,
                       metavar="N", dest="max_iterations",
                       help="Procedure 2 iteration budget (default 60); "
                            "a run that exhausts it reports incomplete "
                            "coverage as data, not an error")
        p.add_argument("--targets", choices=("detectable", "collapsed"),
                       default="detectable",
                       help="fault universe: 'detectable' classifies "
                            "faults first (PODEM; precise but slow), "
                            "'collapsed' targets the whole collapsed set "
                            "(the scalable choice on large circuits)")
        p.add_argument("--cache-dir", metavar="DIR", dest="cache_dir",
                       help="compile-cache directory (default: "
                            "$REPRO_CACHE_DIR if set); circuits are "
                            "levelized/compiled once per fingerprint")

    p = sub.add_parser("run", help="Procedure 2 for one (LA, LB, N)")
    add_bist_args(p)
    p.add_argument("--checkpoint", metavar="PATH",
                   help="journal every iteration to PATH so a killed run "
                        "can be resumed")
    p.add_argument("--resume", action="store_true",
                   help="continue from --checkpoint's journal if it "
                        "exists (byte-identical to an uninterrupted run)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("first-complete",
                       help="cheapest combination reaching 100% coverage")
    add_bist_args(p)
    p.add_argument("--max-combos", type=int, default=8)
    p.set_defaults(func=cmd_first_complete)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number")
    p.add_argument("--full", action="store_true")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser(
        "fuzz",
        help="deterministic fuzzing of the netlist ingestion pipeline",
    )
    p.add_argument("--budget", type=int, default=200,
                   help="number of fuzz cases (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed; same seed => byte-identical "
                        "case list and report")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                   help="per-case wall-clock budget (default 10s)")
    p.add_argument("--mem-mb", type=int, default=1024,
                   help="per-case address-space budget in MiB (default 1024)")
    p.add_argument("--corpus", metavar="DIR",
                   help="write each unique failure (minimized if "
                        "--minimize) as a corpus file under DIR")
    p.add_argument("--minimize", action="store_true",
                   help="delta-debug each unique failure down to a "
                        "minimal reproducer")
    p.add_argument("--replay", metavar="DIR",
                   help="replay a regression corpus instead of fuzzing")
    p.add_argument("--no-sandbox", action="store_true",
                   help="run cases in-process (no timeout/memory guard); "
                        "faster, for trusted case sources")
    p.add_argument("--json", action="store_true",
                   help="emit the triage report as JSON")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="durable crash-safe job service over HTTP (see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port; 0 (default) picks an ephemeral port "
                        "and records it in <data-dir>/serve.port")
    p.add_argument("--data-dir", default="serve-data", dest="data_dir",
                   help="journal, spooled jobs, and result cache "
                        "(default ./serve-data); restart with the same "
                        "dir to recover in-flight jobs")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent job executions (default 1)")
    p.add_argument("--max-queue", type=int, default=64, dest="max_queue",
                   help="bounded queue depth before Q001 shedding")
    p.add_argument("--rate-per-s", type=float, default=2.0,
                   dest="rate_per_s",
                   help="per-tenant submission refill rate (default 2/s)")
    p.add_argument("--burst", type=float, default=10.0,
                   help="per-tenant submission burst size (default 10)")
    p.add_argument("--wall-budget", type=float, default=300.0,
                   dest="wall_budget", metavar="SECONDS",
                   help="wall-clock budget per job attempt (default 300s)")
    p.add_argument("--mem-mb", type=int, default=2048,
                   help="RLIMIT_AS per job child in MiB; 0 = unlimited")
    p.add_argument("--retries", type=int, default=1,
                   help="retries per job after the first attempt "
                        "(each resumes from the checkpoint; default 1)")
    p.add_argument("--cache-dir", metavar="DIR", dest="cache_dir",
                   help="compile-cache directory shared by job children")
    p.add_argument("--enable-chaos", action="store_true",
                   dest="enable_chaos",
                   help="accept per-request chaos plans (tests only)")
    p.add_argument("--chaos-exit-after-submits", type=int, default=None,
                   dest="chaos_exit_after_submits", metavar="N",
                   help="chaos: hard-exit the server after N accepted "
                        "submissions (crash-recovery tests)")
    p.add_argument("--healthz", action="store_true",
                   help="probe a running server's /healthz (using --port "
                        "or <data-dir>/serve.port) and print the JSON")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("convert", help="convert between .bench and .v")
    p.add_argument("source")
    p.add_argument("dest")
    p.set_defaults(func=cmd_convert)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except IngestionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
