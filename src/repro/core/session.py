"""High-level user API: run the full scheme on a circuit.

:class:`LimitedScanBist` owns the expensive per-circuit artifacts (fault
graph, collapsed fault list, detectability classification) and exposes:

- :meth:`run` -- Procedure 2 for one ``(L_A, L_B, N)``,
- :meth:`first_complete` -- the paper's Table 6 flow: try combinations in
  increasing ``Ncyc0`` order and report the first that achieves complete
  coverage of the detectable faults,
- :meth:`analyze` -- the static COP testability report (RPR faults,
  state-bit scan benefit) for the same circuit and cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.atpg.classify import Classification, classify_faults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.cache import CompileCache
from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.core.metrics import format_optional, human_cycles
from repro.core.parameter_selection import ParameterCombo, enumerate_combinations
from repro.core.procedure2 import Procedure2Result, run_procedure2
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ObservationPolicy
from repro.faults.model import Fault, FaultGraph


@dataclass
class CircuitReport:
    """One row of the paper's Table 6 / Table 8."""

    circuit_name: str
    combo: ParameterCombo
    result: Procedure2Result
    combos_tried: int = 1

    def row(self) -> str:
        r = self.result
        ls = format_optional(r.ls_average)
        cycles_total = human_cycles(r.ncyc_total) if r.app else ""
        det_total = str(r.det_total) if r.app else ""
        return (
            f"{self.circuit_name:<8} {self.combo.label():<12} "
            f"{r.det_initial:<6} {human_cycles(r.ncyc0):<7} "
            f"{r.app:<4} {det_total:<6} {cycles_total:<7} {ls}"
        )


class LimitedScanBist:
    """Random limited-scan BIST for one circuit.

    The constructor is cheap; fault collapsing and detectability
    classification happen lazily and are cached for the session.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: Optional[BistConfig] = None,
        target_faults: Optional[Sequence[Fault]] = None,
        classification_patterns: int = 2048,
        podem_backtrack_limit: int = 1000,
        cache: Optional["CompileCache"] = None,
    ) -> None:
        self.circuit = circuit
        self.config = config or BistConfig()
        self.cache = cache
        self.graph = FaultGraph(circuit, cache=cache)
        self.simulator = FaultSimulator(self.graph)
        self._explicit_targets = (
            list(target_faults) if target_faults is not None else None
        )
        self._classification: Optional[Classification] = None
        self._classification_patterns = classification_patterns
        self._podem_backtrack_limit = podem_backtrack_limit
        self._run_cache: dict = {}

    # ------------------------------------------------------------------
    @property
    def collapsed_faults(self) -> List[Fault]:
        return collapse_faults(self.circuit)

    @property
    def classification(self) -> Classification:
        if self._classification is None:
            self._classification = classify_faults(
                self.graph,
                random_patterns=self._classification_patterns,
                backtrack_limit=self._podem_backtrack_limit,
            )
        return self._classification

    @property
    def target_faults(self) -> List[Fault]:
        """The faults Procedure 2 must detect (detectable collapsed set)."""
        if self._explicit_targets is not None:
            return list(self._explicit_targets)
        return self.classification.target_faults

    def analyze(self, rpr_threshold: Optional[float] = None):
        """Static COP testability report for this session's circuit.

        Runs over the collapsed fault list and shares the session's
        compile cache, so repeated calls (and prior ``repro analyze``
        invocations with the same cache directory) hit the cached
        measures.  Returns a
        :class:`~repro.analysis.cop.TestabilityAnalysis`.
        """
        from repro.analysis.cop import DEFAULT_RPR_THRESHOLD, analyze_circuit

        return analyze_circuit(
            self.circuit,
            faults=self.collapsed_faults,
            rpr_threshold=(
                DEFAULT_RPR_THRESHOLD
                if rpr_threshold is None
                else rpr_threshold
            ),
            cache=self.cache,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        la: Optional[int] = None,
        lb: Optional[int] = None,
        n: Optional[int] = None,
        config: Optional[BistConfig] = None,
        policy: Optional[ObservationPolicy] = None,
    ) -> Procedure2Result:
        """Procedure 2 for one parameter combination."""
        cfg = config or self.config
        if la is not None or lb is not None or n is not None:
            cfg = cfg.with_lengths(
                la if la is not None else cfg.la,
                lb if lb is not None else cfg.lb,
                n if n is not None else cfg.n,
            )
        # Procedure 2 is deterministic in (config, policy, targets); cache
        # results so Table 7/8 style experiments never recompute Table 6.
        key = (cfg, None if policy is None else repr(policy))
        if key not in self._run_cache:
            self._run_cache[key] = run_procedure2(
                self.circuit,
                cfg,
                self.target_faults,
                simulator=self.simulator,
                policy=policy,
            )
        return self._run_cache[key]

    def run_checkpointed(
        self,
        checkpoint,
        resume: bool = False,
        policy: Optional[ObservationPolicy] = None,
    ) -> Procedure2Result:
        """Procedure 2 with a crash-safe journal at ``checkpoint``.

        ``checkpoint`` is a path or a
        :class:`~repro.robustness.checkpoint.CheckpointPolicy`.  With
        ``resume=True`` and an existing journal, the run continues from
        the journal's committed state and is byte-identical to an
        uninterrupted run; otherwise a fresh journal is written (an
        existing file is overwritten).  This is the session-level entry
        point the job service (:mod:`repro.serve`) drives, so every
        serving-side retry goes through exactly the code path the
        checkpoint test suite pins.
        """
        from pathlib import Path

        from repro.core.procedure2 import resume_procedure2, run_procedure2
        from repro.robustness.checkpoint import CheckpointPolicy

        ckpt = (
            checkpoint
            if isinstance(checkpoint, CheckpointPolicy)
            else CheckpointPolicy(path=checkpoint)
        )
        if resume and Path(ckpt.path).exists():
            return resume_procedure2(
                self.circuit,
                self.config,
                self.target_faults,
                ckpt,
                simulator=self.simulator,
                policy=policy,
            )
        return run_procedure2(
            self.circuit,
            self.config,
            self.target_faults,
            simulator=self.simulator,
            policy=policy,
            checkpoint=ckpt,
        )

    def first_complete(
        self,
        combos: Optional[Sequence[ParameterCombo]] = None,
        max_combos: int = 10,
        policy: Optional[ObservationPolicy] = None,
    ) -> CircuitReport:
        """Table 6 flow: cheapest combination that reaches 100% coverage.

        If no tried combination is complete, the best-coverage result is
        returned with ``result.complete == False`` (never an exception:
        incompleteness is data, as in the paper's Tables 3/4 dashes).
        """
        if combos is None:
            combos = enumerate_combinations(self.circuit.num_state_vars)
        combos = list(combos)[:max_combos]
        if not combos:
            raise ValueError("no parameter combinations to try")
        best: Optional[Tuple[ParameterCombo, Procedure2Result]] = None
        for tried, combo in enumerate(combos, start=1):
            result = self.run(combo.la, combo.lb, combo.n, policy=policy)
            if result.complete:
                return CircuitReport(
                    circuit_name=self.circuit.name,
                    combo=combo,
                    result=result,
                    combos_tried=tried,
                )
            if best is None or result.det_total > best[1].det_total:
                best = (combo, result)
        combo, result = best
        return CircuitReport(
            circuit_name=self.circuit.name,
            combo=combo,
            result=result,
            combos_tried=len(combos),
        )
