"""Reporting metrics and the paper's number formatting.

Table 6/7/8 report cycles as ``2.6K``, ``1.2M`` etc.; this module
provides that rendering plus coverage helpers shared by experiments.
"""

from __future__ import annotations

from typing import Optional


def human_cycles(cycles: Optional[int]) -> str:
    """Render a cycle count the way the paper's tables do.

    <1000 exact; thousands as ``x.yK`` (three significant-ish digits as in
    the paper: ``2.6K``, ``25.4K``, ``316K``); millions as ``x.yM``.
    """
    if cycles is None:
        return ""
    if cycles < 1000:
        return str(cycles)
    if cycles < 100_000:
        return f"{cycles / 1000:.1f}K"
    if cycles < 1_000_000:
        return f"{cycles / 1000:.0f}K"
    return f"{cycles / 1_000_000:.1f}M"


def coverage_percent(detected: int, total: int) -> float:
    """Fault coverage in percent (100.0 when there is nothing to detect)."""
    if total == 0:
        return 100.0
    return 100.0 * detected / total


def ls_to_run_length(ls_average: Optional[float]) -> Optional[float]:
    """The paper's reading of ``ls``: with ``ls = 0.5`` a limited scan
    occurs every ``1/0.5 = 2`` time units, i.e. primary input sequences of
    average length 2 run at speed between scan operations."""
    if ls_average is None or ls_average == 0:
        return None
    return 1.0 / ls_average


def format_optional(value, fmt: str = "{:.2f}", empty: str = "") -> str:
    """Render ``value`` with ``fmt``, or ``empty`` when it is ``None``."""
    return empty if value is None else fmt.format(value)
