"""Procedure 1: random insertion of limited scan operations.

Given the initial test set ``TS0`` and a pair ``(I, D1)``, every test
``tau_i`` acquires a limited-scan schedule: at each interior time unit
``0 < u < L_i`` a draw ``r1`` inserts a limited scan operation iff
``r1 mod D1 == 0`` (probability ``1/D1``); the shift amount is
``r2 mod D2`` with ``D2 = N_SV + 1``, spanning "no scan" (0) through a
complete scan operation (``N_SV``); the bits scanned in on the left come
from the same stream.

The schedule RNG is seeded with ``seed(I)``.  As literally written in
the paper the generator is re-initialized for **every test**
(``reseed_per_test=True``); the one-stream variant is available as an
ablation.  Note ``D1`` intentionally does not enter the seed: the same
draw sequence thresholded by different ``D1`` values is exactly what a
hardware implementation comparing LFSR digits against a stored constant
would produce.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.config import BistConfig
from repro.faults.fault_sim import ScanTest, ScheduleStep
from repro.rpg.prng import RandomSource, make_source


def schedule_for_test(
    source: RandomSource, length: int, d1: int, d2: int
) -> List[ScheduleStep]:
    """Draw the limited-scan schedule for one test of ``length`` vectors.

    Returns one ``(shift, fill_bits)`` step per time unit; time unit 0 is
    always ``(0, ())`` -- the state was just scanned in.
    """
    if d1 < 1:
        raise ValueError("D1 must be >= 1")
    if d2 < 1:
        raise ValueError("D2 must be >= 1")
    steps: List[ScheduleStep] = [(0, ())]
    for _u in range(1, length):
        r1 = source.draw()
        if r1 % d1 == 0:
            r2 = source.draw()
            shift = r2 % d2
            fill = tuple(source.bits(shift)) if shift else ()
            steps.append((shift, fill))
        else:
            steps.append((0, ()))
    return steps


def build_limited_scan_test_set(
    ts0: Sequence[ScanTest],
    iteration: int,
    d1: int,
    config: BistConfig,
    n_sv: int,
) -> List[ScanTest]:
    """Procedure 1: the test set ``TS(I, D1)`` derived from ``ts0``.

    Every returned test is identical to the corresponding ``TS0`` test
    except for its limited-scan schedule.
    """
    d2 = config.effective_d2(n_sv)
    seed = config.seed_for_iteration(iteration)
    source = make_source(seed, config.rng_kind)
    # Re-seeding per test makes the schedule a pure function of the test
    # length, so equal-length tests share one PRNG walk instead of
    # redrawing it n times per candidate.
    by_length: dict = {}
    tests: List[ScanTest] = []
    for test in ts0:
        if config.reseed_per_test:
            schedule = by_length.get(test.length)
            if schedule is None:
                schedule = schedule_for_test(
                    make_source(seed, config.rng_kind), test.length, d1, d2
                )
                by_length[test.length] = schedule
            schedule = list(schedule)
        else:
            schedule = schedule_for_test(source, test.length, d1, d2)
        tests.append(
            ScanTest(si=list(test.si), vectors=[list(v) for v in test.vectors],
                     schedule=schedule)
        )
    return tests


def limited_scan_time_units(tests: Sequence[ScanTest]) -> int:
    """Number of time units with ``shift > 0`` (the ``n_ls`` numerator)."""
    return sum(t.num_limited_scans for t in tests)


def shift_cycles(tests: Sequence[ScanTest]) -> int:
    """Total shift cycles ``N_SH`` contributed by the schedules."""
    return sum(t.total_shift_cycles for t in tests)
