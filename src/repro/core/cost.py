"""The paper's clock-cycle cost model.

Applying ``TS0`` costs

    Ncyc0 = (2N + 1) * N_SV  +  N * (L_A + L_B)

(the ``2N`` tests need ``2N + 1`` complete scan operations because the
scan-out of one test overlaps the scan-in of the next, plus one vector
clock per primary input vector; scan clock and functional clock are
assumed to share a cycle time).  Applying ``TS(I, D1)`` additionally
pays one cycle per limited-scan shift:

    Ncyc(I, D1) = Ncyc0 + N_SH(I, D1)

and the complete scheme pays

    Ncyc_total = Ncyc0 + sum over selected pairs of Ncyc(I, D1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.faults.fault_sim import ScanTest


def ncyc0(n_sv: int, la: int, lb: int, n: int) -> int:
    """Clock cycles to apply the initial test set ``TS0``."""
    if min(n_sv, la, lb, n) < 0:
        raise ValueError("cost-model arguments must be non-negative")
    return (2 * n + 1) * n_sv + n * (la + lb)


def ncyc0_scaled(
    n_sv: int, la: int, lb: int, n: int, scan_clock_ratio: float = 1.0
) -> float:
    """``Ncyc0`` with a slower/faster scan clock (the paper notes the
    formula can be adjusted when the functional clock is faster)."""
    if scan_clock_ratio <= 0:
        raise ValueError("scan_clock_ratio must be positive")
    return (2 * n + 1) * n_sv * scan_clock_ratio + n * (la + lb)


def nsh(tests: Sequence[ScanTest]) -> int:
    """``N_SH(I, D1)``: total limited-scan shift cycles of a test set."""
    return sum(t.total_shift_cycles for t in tests)


def ncyc_pair(base_ncyc0: int, pair_nsh: int) -> int:
    """``Ncyc(I, D1) = Ncyc0 + N_SH(I, D1)``."""
    return base_ncyc0 + pair_nsh


def total_cycles(base_ncyc0: int, pair_nshs: Iterable[int]) -> int:
    """``Ncyc_total``: TS0 once, plus every selected pair's application."""
    return base_ncyc0 + sum(base_ncyc0 + s for s in pair_nshs)
