"""Generation of the initial random test set ``TS0``.

``TS0 = {tau_1 .. tau_N, tau_{N+1} .. tau_{2N}}``: ``N`` tests of length
``L_A`` followed by ``N`` tests of length ``L_B``.  For each test, the
scan-in state ``SI_i`` and the vectors of ``T_i`` are drawn from one
dedicated generator initialized with a fixed seed, so the identical
``TS0`` can be re-generated any number of times -- the property the
paper's Procedure 1 relies on (``TS(I, D1)`` replays ``TS0`` with scan
operations spliced in).
"""

from __future__ import annotations

from typing import List

from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.faults.fault_sim import ScanTest
from repro.rpg.prng import RandomSource, make_source


def draw_test(
    source: RandomSource, n_sv: int, n_pi: int, length: int
) -> ScanTest:
    """Draw one test: ``SI`` first, then the ``length`` vectors of ``T``."""
    si = source.bits(n_sv)
    vectors = [source.bits(n_pi) for _ in range(length)]
    return ScanTest(si=si, vectors=vectors)


def generate_ts0(circuit: Circuit, config: BistConfig) -> List[ScanTest]:
    """The initial test set for ``circuit`` under ``config``.

    Deterministic: the same circuit interface and config always produce
    the same tests.
    """
    source = make_source(config.base_seed, config.rng_kind)
    n_sv = circuit.num_state_vars
    n_pi = circuit.num_inputs
    tests = [
        draw_test(source, n_sv, n_pi, config.la) for _ in range(config.n)
    ]
    tests += [
        draw_test(source, n_sv, n_pi, config.lb) for _ in range(config.n)
    ]
    return tests


def total_vectors(tests: List[ScanTest]) -> int:
    """Total number of primary input vectors (``sum of L_i``)."""
    return sum(t.length for t in tests)
