"""Compaction of the selected ``(I, D1)`` pair list.

Procedure 2 is greedy in discovery order: a pair enters ``ID1_PAIRS``
because it detected something new *at the time*.  Later pairs often
re-detect those faults, so some earlier pairs become redundant.  Since
each stored pair costs both storage and a full ``Ncyc(I, D1)`` re-
application, dropping covered pairs is free coverage-preserving savings.
This module implements the classical reverse-order compaction:

1. fault-simulate every selected pair against the *full* target set
   (no dropping) to get its complete detection set,
2. walk the pairs newest-first, dropping any whose detections are
   covered by ``TS0`` plus the pairs kept so far.

Compaction preserves complete coverage exactly; the experiments report
pairs/cycles before and after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.core.cost import total_cycles
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.procedure2 import PairResult, Procedure2Result
from repro.core.test_set import generate_ts0
from repro.faults.fault_sim import FaultSimulator, ObservationPolicy
from repro.faults.model import Fault


@dataclass
class CompactionResult:
    """Before/after view of the pair list."""

    kept: List[PairResult]
    dropped: List[PairResult]
    cycles_before: int
    cycles_after: int
    coverage_before: int
    coverage_after: int

    @property
    def pairs_before(self) -> int:
        return len(self.kept) + len(self.dropped)

    @property
    def pairs_after(self) -> int:
        return len(self.kept)

    def summary(self) -> str:
        return (
            f"compaction: {self.pairs_before} -> {self.pairs_after} pairs, "
            f"{self.cycles_before} -> {self.cycles_after} cycles "
            f"(coverage {self.coverage_before} -> {self.coverage_after})"
        )


def pair_detection_sets(
    circuit: Circuit,
    config: BistConfig,
    pairs: Sequence[PairResult],
    target_faults: Sequence[Fault],
    simulator: Optional[FaultSimulator] = None,
    policy: Optional[ObservationPolicy] = None,
) -> Dict[Tuple[int, int], Set[Fault]]:
    """Full (no-drop) detection set of each pair's ``TS(I, D1)``."""
    simulator = simulator or FaultSimulator(circuit)
    ts0 = generate_ts0(circuit, config)
    n_sv = simulator.chain_length
    out: Dict[Tuple[int, int], Set[Fault]] = {}
    for pair in pairs:
        ts = build_limited_scan_test_set(
            ts0, pair.iteration, pair.d1, config, n_sv
        )
        hits = simulator.simulate_grouped(ts, target_faults, policy)
        out[(pair.iteration, pair.d1)] = set(hits)
    return out


def compact_pairs(
    circuit: Circuit,
    result: Procedure2Result,
    target_faults: Sequence[Fault],
    simulator: Optional[FaultSimulator] = None,
    policy: Optional[ObservationPolicy] = None,
) -> CompactionResult:
    """Reverse-order compaction of ``result``'s selected pairs."""
    simulator = simulator or FaultSimulator(circuit)
    config = result.config
    ts0 = generate_ts0(circuit, config)
    ts0_hits = set(simulator.simulate_grouped(ts0, target_faults, policy))

    detections = pair_detection_sets(
        circuit, config, result.pairs, target_faults, simulator, policy
    )
    full_union: Set[Fault] = set(ts0_hits)
    for hits in detections.values():
        full_union |= hits

    kept: List[PairResult] = []
    kept_union: Set[Fault] = set(ts0_hits)
    dropped: List[PairResult] = []
    # Newest-first: late pairs were selected against the hardest residue
    # and tend to be irreplaceable; early pairs often became redundant.
    for pair in reversed(result.pairs):
        key = (pair.iteration, pair.d1)
        if detections[key] - kept_union:
            kept.append(pair)
            kept_union |= detections[key]
        else:
            dropped.append(pair)
    kept.reverse()

    assert kept_union == full_union, "compaction must preserve coverage"
    return CompactionResult(
        kept=kept,
        dropped=dropped,
        cycles_before=total_cycles(result.ncyc0, [p.nsh for p in result.pairs]),
        cycles_after=total_cycles(result.ncyc0, [p.nsh for p in kept]),
        coverage_before=len(full_union),
        coverage_after=len(kept_union),
    )
