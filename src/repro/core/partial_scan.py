"""Partial-scan extension (the paper's concluding remark).

"Limited scan can be used to improve the fault coverage for partial scan
circuits as well."  Here only a subset of the flip-flops is on the scan
chain; the rest reset to 0 at the start of every test and evolve purely
through the functional logic.  Scan-in, limited scan operations and
scan-out all act on the chain subset, so the paper's procedures carry
over unchanged with ``N_SV`` replaced by the chain length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.core.procedure2 import Procedure2Result, run_procedure2
from repro.core.test_set import draw_test
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault, FaultGraph
from repro.rpg.prng import make_source


def select_scan_flops(
    circuit: Circuit, fraction: float, seed: int = 1
) -> List[int]:
    """A deterministic scan-chain subset: every ``1/fraction``-th flop.

    Structural selection heuristics (cycle cutting) are out of scope; a
    spread subset is what the extension experiments need.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    n_sv = circuit.num_state_vars
    count = max(1, round(n_sv * fraction)) if n_sv else 0
    if count >= n_sv:
        return list(range(n_sv))
    stride = n_sv / count
    positions = sorted({min(n_sv - 1, int(i * stride)) for i in range(count)})
    # Collisions from rounding: fill from the front deterministically.
    i = 0
    while len(positions) < count:
        if i not in positions:
            positions.append(i)
        i += 1
    return sorted(positions)


@dataclass
class PartialScanBist:
    """Run the limited-scan scheme on a partial-scan configuration."""

    circuit: Circuit
    chain: Sequence[int]
    config: BistConfig = BistConfig()

    def __post_init__(self) -> None:
        self.graph = FaultGraph(self.circuit)
        self.simulator = FaultSimulator(self.graph, chain=self.chain)

    def generate_ts0(self) -> List[ScanTest]:
        """TS0 with scan-in states sized to the chain, not ``N_SV``."""
        source = make_source(self.config.base_seed, self.config.rng_kind)
        n_chain = len(self.simulator.chain)
        n_pi = self.circuit.num_inputs
        tests = [
            draw_test(source, n_chain, n_pi, self.config.la)
            for _ in range(self.config.n)
        ]
        tests += [
            draw_test(source, n_chain, n_pi, self.config.lb)
            for _ in range(self.config.n)
        ]
        return tests

    def run(self, target_faults: Sequence[Fault]) -> Procedure2Result:
        """Procedure 2 with chain-length semantics.

        ``D2 = chain_length + 1`` takes the role of ``N_SV + 1`` and the
        cost model's ``N_SV`` becomes the chain length (complete scan
        operations only move the scanned flops).
        """
        n_chain = len(self.simulator.chain)
        cfg = self.config
        if cfg.d2 is None:
            cfg = BistConfig(
                la=cfg.la,
                lb=cfg.lb,
                n=cfg.n,
                base_seed=cfg.base_seed,
                d1_values=cfg.d1_values,
                n_same_fc=cfg.n_same_fc,
                max_iterations=cfg.max_iterations,
                d2=n_chain + 1,
                reseed_per_test=cfg.reseed_per_test,
                rng_kind=cfg.rng_kind,
            )
        # run_procedure2 consults circuit.num_state_vars only for D2 (now
        # pinned) and for schedule generation; TS0 must carry chain-sized
        # scan-in states, so it is supplied explicitly.
        return run_procedure2(
            self.circuit,
            cfg,
            target_faults,
            simulator=self.simulator,
            ts0=self.generate_ts0(),
        )
