"""The paper's contribution: random limited-scan BIST.

- :mod:`repro.core.config` -- the reproducible configuration record,
- :mod:`repro.core.test_set` -- the initial random test set ``TS0``
  (two lengths ``L_A``/``L_B``, ``N`` tests of each),
- :mod:`repro.core.limited_scan` -- Procedure 1: deriving ``TS(I, D1)``
  from ``TS0`` by random limited-scan insertion,
- :mod:`repro.core.procedure2` -- Procedure 2: greedy selection of
  ``(I, D1)`` pairs until complete coverage of detectable faults,
- :mod:`repro.core.cost` -- the clock-cycle cost model,
- :mod:`repro.core.parameter_selection` -- ``(L_A, L_B, N)`` enumeration
  by increasing ``Ncyc0`` (Table 5) and the first-complete search,
- :mod:`repro.core.metrics` -- the paper's reporting metrics
  (det / cycles / app / ls),
- :mod:`repro.core.baselines` -- comparison schemes (TS0-only,
  multi-seed, single-vector BIST, full-scan insertion),
- :mod:`repro.core.session` -- the high-level user API,
- :mod:`repro.core.partial_scan` -- the concluding-remark extension.
"""

from repro.core.config import BistConfig
from repro.core.test_set import generate_ts0
from repro.core.limited_scan import build_limited_scan_test_set, schedule_for_test
from repro.core.procedure2 import Procedure2Result, PairResult, run_procedure2
from repro.core.cost import ncyc0, total_cycles
from repro.core.parameter_selection import (
    ParameterCombo,
    enumerate_combinations,
    first_combinations,
)
from repro.core.session import LimitedScanBist, CircuitReport
from repro.core.compaction import compact_pairs, CompactionResult
from repro.core.run_lengths import analyze_run_lengths, RunLengthStats
from repro.core.coverage_curve import CoverageCurve, proposed_scheme_curve

__all__ = [
    "BistConfig",
    "generate_ts0",
    "schedule_for_test",
    "build_limited_scan_test_set",
    "run_procedure2",
    "Procedure2Result",
    "PairResult",
    "ncyc0",
    "total_cycles",
    "ParameterCombo",
    "enumerate_combinations",
    "first_combinations",
    "LimitedScanBist",
    "CircuitReport",
    "compact_pairs",
    "CompactionResult",
    "analyze_run_lengths",
    "RunLengthStats",
    "CoverageCurve",
    "proposed_scheme_curve",
]
