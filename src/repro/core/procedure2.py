"""Procedure 2: greedy selection of ``(I, D1)`` pairs.

Starting from ``TS0``, iterate ``I = 1, 2, ...``; for each ``I`` try the
configured ``D1`` values in preference order, fault-simulate
``TS(I, D1)`` against the remaining target faults with dropping, and keep
the pair iff it detects something new.  Terminate at 100% coverage of the
target faults or after ``N_SAME_FC`` consecutive iterations of ``I``
without improvement (plus a hard ``max_iterations`` safety cap).

Long runs are crash-safe: pass a
:class:`~repro.robustness.checkpoint.CheckpointPolicy` and every
iteration is journaled (selected pairs, detection records, the
``(iteration, n_same_fc)`` cursor); :func:`resume_procedure2` replays
the journal, re-derives ``TS(I, D1)`` deterministically, skips the
completed work, and produces a result byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.core.cost import ncyc0 as ncyc0_formula
from repro.core.cost import total_cycles
from repro.core.test_set import generate_ts0, total_vectors
from repro.faults.fault_sim import (
    DetectionRecord,
    FaultSimulator,
    ObservationPolicy,
    ScanTest,
)
from repro.faults.model import Fault
from repro.faults.pool import CandidateEvaluator
from repro.faults.sharding import (
    RecoveryPolicy,
    ShardedFaultSimulator,
    resolve_n_jobs,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.robustness.checkpoint import CheckpointPolicy, CheckpointWriter
    from repro.robustness.degradation import DegradationReport


@dataclass
class PairResult:
    """One selected ``(I, D1)`` pair and its contribution."""

    iteration: int
    d1: int
    newly_detected: int
    nsh: int  # limited-scan shift cycles of TS(I, D1)
    ls_time_units: int  # time units with shift > 0 (the n_ls numerator)
    total_time_units: int  # sum of test lengths (the n_ls denominator part)


@dataclass
class Procedure2Result:
    """Everything the paper reports per circuit, plus bookkeeping."""

    circuit_name: str
    config: BistConfig
    n_sv: int
    num_targets: int
    ts0_detected: int = 0
    pairs: List[PairResult] = field(default_factory=list)
    complete: bool = False
    iterations_run: int = 0
    remaining_faults: List[Fault] = field(default_factory=list)
    detections: Dict[Fault, DetectionRecord] = field(default_factory=dict)
    #: Worker-pool recovery actions of this run (execution metadata:
    #: populated only when a sharded run degraded, never serialized).
    degradation: Optional["DegradationReport"] = None
    #: Which candidate search order produced this run (``'uniform'`` or
    #: ``'testability'``).  Execution metadata like ``degradation``:
    #: recorded for provenance, excluded from serialized results and
    #: journal headers so uniform runs stay byte-identical across
    #: releases.
    candidate_bias: str = "uniform"

    # ---- the paper's reported metrics ---------------------------------
    @property
    def ncyc0(self) -> int:
        """Clock cycles for the initial test set (Table 6 'cycles')."""
        cfg = self.config
        return ncyc0_formula(self.n_sv, cfg.la, cfg.lb, cfg.n)

    @property
    def app(self) -> int:
        """Number of test sets applied with limited scan operations."""
        return len(self.pairs)

    @property
    def det_initial(self) -> int:
        return self.ts0_detected

    @property
    def det_total(self) -> int:
        return self.ts0_detected + sum(p.newly_detected for p in self.pairs)

    @property
    def ncyc_total(self) -> int:
        """Clock cycles for TS0 plus every selected ``TS(I, D1)``."""
        return total_cycles(self.ncyc0, [p.nsh for p in self.pairs])

    @property
    def ls_average(self) -> Optional[float]:
        """The paper's ``ls``: limited-scan time units per time unit,
        averaged over all selected test sets (``TS0`` excluded)."""
        denom = sum(p.total_time_units for p in self.pairs)
        if denom == 0:
            return None
        return sum(p.ls_time_units for p in self.pairs) / denom

    @property
    def fault_coverage(self) -> float:
        if self.num_targets == 0:
            return 1.0
        return self.det_total / self.num_targets

    def summary(self) -> str:
        ls = f"{self.ls_average:.2f}" if self.ls_average is not None else "-"
        return (
            f"{self.circuit_name}: initial {self.ts0_detected}/{self.num_targets}"
            f" ({self.ncyc0} cycles); +{self.app} limited-scan sets ->"
            f" {self.det_total}/{self.num_targets}"
            f" ({self.ncyc_total} cycles, ls={ls},"
            f" {'complete' if self.complete else 'INCOMPLETE'})"
        )


@dataclass
class _ResumeState:
    """Replayed journal state handed to the Procedure 2 loop."""

    result: Procedure2Result
    remaining: List[Fault]
    iteration: int
    n_same_fc: int
    ts0_done: bool


def _lint_gate(circuit: Circuit, config: BistConfig) -> None:
    if config.lint == "off":
        return
    from repro.analysis import LintError, lint_structural

    lint_report = lint_structural(circuit)
    if lint_report.has_errors:
        if config.lint == "error":
            raise LintError(lint_report)
        warnings.warn(
            f"circuit {circuit.name} has structural lint errors: "
            + "; ".join(i.message for i in lint_report.errors),
            RuntimeWarning,
            stacklevel=3,
        )


def _recovery_from_config(config: BistConfig) -> RecoveryPolicy:
    return RecoveryPolicy(
        shard_timeout=config.shard_timeout,
        max_retries=config.shard_retries,
        seed=config.base_seed,
    )


def _attach_degradation(
    result: Procedure2Result,
    sim: Union[FaultSimulator, ShardedFaultSimulator],
) -> None:
    if isinstance(sim, ShardedFaultSimulator) and sim.degradation.degraded:
        result.degradation = sim.degradation


def _journal_header(
    circuit: Circuit,
    config: BistConfig,
    n_sv: int,
    target_faults: Sequence[Fault],
) -> Dict[str, Any]:
    from repro.robustness.checkpoint import JOURNAL_VERSION, fingerprint_faults

    return {
        "kind": "header",
        "version": JOURNAL_VERSION,
        "circuit": circuit.name,
        "config": config.to_dict(),
        "n_sv": n_sv,
        "num_targets": len(target_faults),
        "targets_sha256": fingerprint_faults(target_faults),
    }


def _detection_rows(
    hits: Dict[Fault, DetectionRecord], positions: Dict[Fault, int]
) -> List[List[Any]]:
    """Detection records as compact journal rows, in detection order."""
    return [
        [positions[f], rec.test_index, rec.time_unit, rec.where]
        for f, rec in hits.items()
    ]


def run_procedure2(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    simulator: Optional[FaultSimulator] = None,
    policy: Optional[ObservationPolicy] = None,
    ts0: Optional[List[ScanTest]] = None,
    n_jobs: Optional[int] = None,
    checkpoint: Optional[Union["CheckpointPolicy", str]] = None,
) -> Procedure2Result:
    """Run Procedure 2 for ``circuit`` under ``config``.

    ``target_faults`` should be the *detectable* collapsed faults (from
    :func:`repro.atpg.classify_faults`); including undetectable faults
    simply makes 100% coverage unreachable, which is reported as an
    incomplete run, never an error.

    ``n_jobs`` (default: ``config.n_jobs``) shards the fault list across
    worker processes for every fault-simulation call.  With
    ``config.pool == 'persistent'`` (the default) one
    :class:`~repro.faults.pool.PersistentWorkerPool` lives for the whole
    run: the compiled circuit and target faults are published once into
    shared memory and each dispatch ships only shard indices plus
    pattern seeds.  ``config.pool == 'sharded'`` selects the legacy
    per-dispatch :class:`~repro.faults.sharding.ShardedFaultSimulator`.
    ``config.candidate_batch`` additionally scores that many candidate
    ``(I, D1)`` test sets per dispatch in one fanned-out pass.  Results
    are byte-identical to the serial run for any combination of these
    knobs; worker failures are recovered shard by shard and recorded on
    ``result.degradation``.

    ``config.candidate_bias == 'testability'`` reorders the D1 stream
    around the COP scan-benefit pivot before the loop starts (see
    :func:`repro.analysis.cop.testability_d1_order`); ``'uniform'``
    (default) walks ``d1_values`` as configured, byte-identical to
    releases without the knob.  The mode used is recorded on
    ``result.candidate_bias``.

    ``checkpoint`` (a :class:`~repro.robustness.checkpoint.CheckpointPolicy`
    or a path) journals every iteration so a killed run can be continued
    with :func:`resume_procedure2` -- byte-identical to an uninterrupted
    run.  The journal at that path is overwritten.

    Per ``config.lint``, the circuit is design-rule checked before any
    simulation cycle is spent: a malformed netlist either raises
    :class:`repro.analysis.LintError` (``'error'``) or emits a
    ``RuntimeWarning`` and proceeds at your own risk (``'warn'``).
    """
    _lint_gate(circuit, config)
    target_faults = list(target_faults)
    simulator = simulator or FaultSimulator(circuit)
    jobs = resolve_n_jobs(config.n_jobs if n_jobs is None else n_jobs)
    sim = (
        simulator.sharded(jobs, recovery=_recovery_from_config(config))
        if jobs > 1 and config.pool == "sharded"
        else simulator
    )
    writer = None
    if checkpoint is not None:
        from repro.robustness.checkpoint import CheckpointPolicy, CheckpointWriter

        ckpt = (
            checkpoint
            if isinstance(checkpoint, CheckpointPolicy)
            else CheckpointPolicy(path=checkpoint)
        )
        writer = CheckpointWriter(
            ckpt,
            header=_journal_header(
                circuit, config, sim.chain_length, target_faults
            ),
        )
    try:
        result = _run_procedure2_body(
            circuit, config, target_faults, sim, policy, ts0,
            writer=writer, n_jobs=jobs,
        )
    finally:
        if sim is not simulator:
            sim.close()
        if writer is not None:
            writer.close()
    _attach_degradation(result, sim)
    return result


def resume_procedure2(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    checkpoint: Union["CheckpointPolicy", str],
    simulator: Optional[FaultSimulator] = None,
    policy: Optional[ObservationPolicy] = None,
    ts0: Optional[List[ScanTest]] = None,
    n_jobs: Optional[int] = None,
) -> Procedure2Result:
    """Continue a checkpointed Procedure 2 run from its journal.

    The journal's committed state (TS0 detections, selected pairs,
    cursor) is replayed without any simulation; the loop then continues
    exactly where the interrupted run left off, appending to the same
    journal.  The returned result -- including a finished journal, which
    returns immediately -- is byte-identical (via
    :mod:`repro.experiments.serialize`) to an uninterrupted run of the
    same ``(circuit, config, target_faults)``.

    Raises :class:`~repro.robustness.checkpoint.CheckpointError` if the
    journal is missing or unreadable, and
    :class:`~repro.robustness.checkpoint.CheckpointMismatchError` if it
    was written for a different circuit, config, or target-fault list.
    ``n_jobs`` may freely differ from the original run.
    """
    from repro.robustness.checkpoint import (
        CheckpointMismatchError,
        CheckpointPolicy,
        CheckpointWriter,
        fingerprint_faults,
        load_checkpoint,
    )

    ckpt = (
        checkpoint
        if isinstance(checkpoint, CheckpointPolicy)
        else CheckpointPolicy(path=checkpoint)
    )
    state = load_checkpoint(ckpt.path)
    target_faults = list(target_faults)
    header = state.header
    mismatches = []
    if header.get("circuit") != circuit.name:
        mismatches.append(
            f"circuit {header.get('circuit')!r} != {circuit.name!r}"
        )
    if header.get("config") != config.to_dict():
        mismatches.append("config differs")
    if header.get("num_targets") != len(target_faults):
        mismatches.append(
            f"{header.get('num_targets')} target faults != {len(target_faults)}"
        )
    elif header.get("targets_sha256") != fingerprint_faults(target_faults):
        mismatches.append("target-fault fingerprint differs")
    if mismatches:
        raise CheckpointMismatchError(
            f"journal {ckpt.path} does not match this run: "
            + "; ".join(mismatches)
        )

    # ---- replay the committed journal ---------------------------------
    result = Procedure2Result(
        circuit_name=circuit.name,
        config=config,
        n_sv=header["n_sv"],
        num_targets=len(target_faults),
        candidate_bias=config.candidate_bias,
    )
    detected: set = set()
    for idx, test_index, time_unit, where in state.detected_rows:
        fault = target_faults[idx]
        result.detections[fault] = DetectionRecord(
            fault=fault, test_index=test_index, time_unit=time_unit, where=where
        )
        detected.add(idx)
    if state.ts0 is not None:
        result.ts0_detected = len(state.ts0["detected"])
    result.pairs = [
        PairResult(
            iteration=p["iteration"],
            d1=p["d1"],
            newly_detected=p["newly_detected"],
            nsh=p["nsh"],
            ls_time_units=p["ls_time_units"],
            total_time_units=p["total_time_units"],
        )
        for p in state.pairs
    ]
    remaining = [
        f for i, f in enumerate(target_faults) if i not in detected
    ]
    iteration, n_same_fc = state.cursor

    if state.final is not None:
        result.complete = state.final["complete"]
        result.iterations_run = state.final["iterations_run"]
        result.remaining_faults = remaining
        return result

    # ---- continue the run ---------------------------------------------
    simulator = simulator or FaultSimulator(circuit)
    jobs = resolve_n_jobs(config.n_jobs if n_jobs is None else n_jobs)
    sim = (
        simulator.sharded(jobs, recovery=_recovery_from_config(config))
        if jobs > 1 and config.pool == "sharded"
        else simulator
    )
    if sim.chain_length != header["n_sv"]:
        if sim is not simulator:
            sim.close()
        raise CheckpointMismatchError(
            f"journal n_sv {header['n_sv']} != simulator chain length "
            f"{sim.chain_length}"
        )
    start = _ResumeState(
        result=result,
        remaining=remaining,
        iteration=iteration,
        n_same_fc=n_same_fc,
        ts0_done=state.ts0 is not None,
    )
    writer = CheckpointWriter(ckpt)  # append to the existing journal
    try:
        result = _run_procedure2_body(
            circuit,
            config,
            target_faults,
            sim,
            policy,
            ts0,
            writer=writer,
            start=start,
            n_jobs=jobs,
        )
    finally:
        if sim is not simulator:
            sim.close()
        writer.close()
    _attach_degradation(result, sim)
    return result


def _run_procedure2_body(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    simulator: Union[FaultSimulator, ShardedFaultSimulator],
    policy: Optional[ObservationPolicy],
    ts0: Optional[List[ScanTest]],
    writer: Optional["CheckpointWriter"] = None,
    start: Optional[_ResumeState] = None,
    n_jobs: int = 1,
) -> Procedure2Result:
    ts0 = ts0 if ts0 is not None else generate_ts0(circuit, config)
    d1_values = tuple(config.d1_values)
    if config.candidate_bias == "testability":
        from repro.analysis.cop import testability_d1_order

        # Deterministic function of (circuit, d1_values, targets), so a
        # resumed run re-derives the identical candidate order without
        # journaling it.
        d1_values = testability_d1_order(
            circuit, d1_values, target_faults=target_faults
        )
    # Under partial scan the chain length plays the role of N_SV in both
    # the cost model and Procedure 1's D2; under full scan they coincide.
    n_sv = simulator.chain_length
    positions = (
        {f: i for i, f in enumerate(target_faults)} if writer else None
    )
    evaluator = CandidateEvaluator(
        simulator,
        ts0,
        config,
        n_sv,
        policy,
        n_jobs=n_jobs,
        targets=target_faults,
        circuit_name=circuit.name,
        recovery=_recovery_from_config(config),
    )
    try:
        return _procedure2_loop(
            circuit, config, target_faults, evaluator, positions,
            writer=writer, start=start, d1_values=d1_values,
        )
    finally:
        evaluator.close()


def _procedure2_loop(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    evaluator: CandidateEvaluator,
    positions: Optional[Dict[Fault, int]],
    writer: Optional["CheckpointWriter"] = None,
    start: Optional[_ResumeState] = None,
    d1_values: Optional[Sequence[int]] = None,
) -> Procedure2Result:
    # The D1 preference order for the candidate stream: config order for
    # uniform search, or the testability-pivoted reordering computed by
    # the body.  Selection semantics are order-agnostic -- every D1 that
    # detects something new is kept either way -- but trying effective
    # depths first absorbs faults early and stores fewer pairs.
    d1_values = tuple(d1_values if d1_values is not None else config.d1_values)
    def finish(res: Procedure2Result) -> Procedure2Result:
        if evaluator.degradation.degraded:
            res.degradation = evaluator.degradation
        return res

    if start is not None and start.ts0_done:
        result = start.result
        remaining = start.remaining
        iteration = start.iteration
        n_same_fc = start.n_same_fc
        if not remaining:
            # Journaled to 100% coverage but killed before the final
            # record: only the bookkeeping is left to redo.
            result.complete = True
            result.iterations_run = iteration
            if writer:
                writer.write_final(True, iteration)
            return finish(result)
    else:
        result = Procedure2Result(
            circuit_name=circuit.name,
            config=config,
            n_sv=evaluator.n_sv,
            num_targets=len(target_faults),
            candidate_bias=config.candidate_bias,
        )
        remaining = list(target_faults)
        ts0_hits = evaluator.evaluate_ts0(remaining).hits_for(remaining)
        result.detections.update(ts0_hits)
        result.ts0_detected = len(ts0_hits)
        remaining = [f for f in remaining if f not in ts0_hits]
        if writer:
            writer.write_ts0(_detection_rows(ts0_hits, positions))
        if not remaining:
            result.complete = True
            if writer:
                writer.write_final(True, 0)
            return finish(result)
        iteration = 0
        n_same_fc = 0

    # The candidate sequence (I = iteration+1.., each with every D1 in
    # preference order) is fully deterministic; only the stop point
    # depends on results.  The loop therefore streams it in windows of
    # up to evaluator.batch candidates, scoring each window against the
    # remaining list as of its dispatch.  Each candidate's exact hits
    # against its *then-current* remaining list (shrunk by earlier
    # candidates) are reconstructed from the dispatch rows, so any
    # window partition yields byte-identical results; at worst the tail
    # window past the stop point is wasted work.  Window sizing is
    # adaptive: while the run is still improving (n_same_fc == 0) the
    # remaining list shrinks fast, so windows stop at the iteration
    # boundary to avoid scoring future candidates against a stale,
    # larger fault list; once the run plateaus the list is static,
    # cross-iteration speculation is free, and windows widen to the
    # full batch.
    all_specs = [
        (it, d1)
        for it in range(iteration + 1, config.max_iterations + 1)
        for d1 in d1_values
    ]
    pos = 0  # next spec to dispatch; specs are consumed in list order
    n_d1 = len(d1_values)
    prefetched: Dict[Any, Any] = {}
    while n_same_fc < config.n_same_fc and iteration < config.max_iterations:
        iteration += 1
        improved = False
        journal_pairs: List[Dict[str, Any]] = []
        for k, d1 in enumerate(d1_values):
            table = prefetched.pop((iteration, d1), None)
            if table is None:
                # Everything before (iteration, d1) is consumed, so pos
                # points exactly at it.
                width = evaluator.batch
                if n_same_fc == 0:
                    width = min(width, n_d1 - k)
                specs = all_specs[pos : pos + width]
                pos += len(specs)
                tables = evaluator.evaluate_specs(specs, remaining)
                prefetched.update(zip(specs[1:], tables[1:]))
                table = tables[0]
            hits = table.hits_for(remaining)
            if hits:
                ts = table.tests
                result.detections.update(hits)
                pair = PairResult(
                    iteration=iteration,
                    d1=d1,
                    newly_detected=len(hits),
                    nsh=sum(t.total_shift_cycles for t in ts),
                    ls_time_units=sum(t.num_limited_scans for t in ts),
                    total_time_units=total_vectors(ts),
                )
                result.pairs.append(pair)
                if writer:
                    journal_pairs.append(
                        {
                            "iteration": pair.iteration,
                            "d1": pair.d1,
                            "newly_detected": pair.newly_detected,
                            "nsh": pair.nsh,
                            "ls_time_units": pair.ls_time_units,
                            "total_time_units": pair.total_time_units,
                            "detected": _detection_rows(hits, positions),
                        }
                    )
                remaining = [f for f in remaining if f not in hits]
                improved = True
            if not remaining:
                break
        n_same_fc_next = 0 if improved else n_same_fc + 1
        if writer:
            # One transaction per iteration: the pairs and the cursor land
            # in a single fsync'd append, so a crash can never journal a
            # half-iteration.
            writer.commit_iteration(iteration, n_same_fc_next, journal_pairs)
        if not remaining:
            break
        n_same_fc = n_same_fc_next

    result.iterations_run = iteration
    result.remaining_faults = remaining
    result.complete = not remaining
    if writer:
        writer.write_final(result.complete, iteration)
    return finish(result)
