"""Procedure 2: greedy selection of ``(I, D1)`` pairs.

Starting from ``TS0``, iterate ``I = 1, 2, ...``; for each ``I`` try the
configured ``D1`` values in preference order, fault-simulate
``TS(I, D1)`` against the remaining target faults with dropping, and keep
the pair iff it detects something new.  Terminate at 100% coverage of the
target faults or after ``N_SAME_FC`` consecutive iterations of ``I``
without improvement (plus a hard ``max_iterations`` safety cap).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.core.cost import ncyc0 as ncyc0_formula
from repro.core.cost import total_cycles
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.test_set import generate_ts0, total_vectors
from repro.faults.fault_sim import (
    DetectionRecord,
    FaultSimulator,
    ObservationPolicy,
    ScanTest,
)
from repro.faults.model import Fault
from repro.faults.sharding import ShardedFaultSimulator, resolve_n_jobs


@dataclass
class PairResult:
    """One selected ``(I, D1)`` pair and its contribution."""

    iteration: int
    d1: int
    newly_detected: int
    nsh: int  # limited-scan shift cycles of TS(I, D1)
    ls_time_units: int  # time units with shift > 0 (the n_ls numerator)
    total_time_units: int  # sum of test lengths (the n_ls denominator part)


@dataclass
class Procedure2Result:
    """Everything the paper reports per circuit, plus bookkeeping."""

    circuit_name: str
    config: BistConfig
    n_sv: int
    num_targets: int
    ts0_detected: int = 0
    pairs: List[PairResult] = field(default_factory=list)
    complete: bool = False
    iterations_run: int = 0
    remaining_faults: List[Fault] = field(default_factory=list)
    detections: Dict[Fault, DetectionRecord] = field(default_factory=dict)

    # ---- the paper's reported metrics ---------------------------------
    @property
    def ncyc0(self) -> int:
        """Clock cycles for the initial test set (Table 6 'cycles')."""
        cfg = self.config
        return ncyc0_formula(self.n_sv, cfg.la, cfg.lb, cfg.n)

    @property
    def app(self) -> int:
        """Number of test sets applied with limited scan operations."""
        return len(self.pairs)

    @property
    def det_initial(self) -> int:
        return self.ts0_detected

    @property
    def det_total(self) -> int:
        return self.ts0_detected + sum(p.newly_detected for p in self.pairs)

    @property
    def ncyc_total(self) -> int:
        """Clock cycles for TS0 plus every selected ``TS(I, D1)``."""
        return total_cycles(self.ncyc0, [p.nsh for p in self.pairs])

    @property
    def ls_average(self) -> Optional[float]:
        """The paper's ``ls``: limited-scan time units per time unit,
        averaged over all selected test sets (``TS0`` excluded)."""
        denom = sum(p.total_time_units for p in self.pairs)
        if denom == 0:
            return None
        return sum(p.ls_time_units for p in self.pairs) / denom

    @property
    def fault_coverage(self) -> float:
        if self.num_targets == 0:
            return 1.0
        return self.det_total / self.num_targets

    def summary(self) -> str:
        ls = f"{self.ls_average:.2f}" if self.ls_average is not None else "-"
        return (
            f"{self.circuit_name}: initial {self.ts0_detected}/{self.num_targets}"
            f" ({self.ncyc0} cycles); +{self.app} limited-scan sets ->"
            f" {self.det_total}/{self.num_targets}"
            f" ({self.ncyc_total} cycles, ls={ls},"
            f" {'complete' if self.complete else 'INCOMPLETE'})"
        )


def run_procedure2(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    simulator: Optional[FaultSimulator] = None,
    policy: Optional[ObservationPolicy] = None,
    ts0: Optional[List[ScanTest]] = None,
    n_jobs: Optional[int] = None,
) -> Procedure2Result:
    """Run Procedure 2 for ``circuit`` under ``config``.

    ``target_faults`` should be the *detectable* collapsed faults (from
    :func:`repro.atpg.classify_faults`); including undetectable faults
    simply makes 100% coverage unreachable, which is reported as an
    incomplete run, never an error.

    ``n_jobs`` (default: ``config.n_jobs``) shards the fault list across
    worker processes for every fault-simulation call; one pool lives for
    the whole run so workers keep their compiled model across iterations.
    Results are identical to the serial run for any ``n_jobs``.

    Per ``config.lint``, the circuit is design-rule checked before any
    simulation cycle is spent: a malformed netlist either raises
    :class:`repro.analysis.LintError` (``'error'``) or emits a
    ``RuntimeWarning`` and proceeds at your own risk (``'warn'``).
    """
    if config.lint != "off":
        from repro.analysis import LintError, lint_structural

        lint_report = lint_structural(circuit)
        if lint_report.has_errors:
            if config.lint == "error":
                raise LintError(lint_report)
            warnings.warn(
                f"circuit {circuit.name} has structural lint errors: "
                + "; ".join(i.message for i in lint_report.errors),
                RuntimeWarning,
                stacklevel=2,
            )
    simulator = simulator or FaultSimulator(circuit)
    jobs = resolve_n_jobs(config.n_jobs if n_jobs is None else n_jobs)
    sim = simulator.sharded(jobs) if jobs > 1 else simulator
    try:
        return _run_procedure2_body(circuit, config, target_faults, sim, policy, ts0)
    finally:
        if sim is not simulator:
            sim.close()


def _run_procedure2_body(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    simulator: Union[FaultSimulator, ShardedFaultSimulator],
    policy: Optional[ObservationPolicy],
    ts0: Optional[List[ScanTest]],
) -> Procedure2Result:
    ts0 = ts0 if ts0 is not None else generate_ts0(circuit, config)
    # Under partial scan the chain length plays the role of N_SV in both
    # the cost model and Procedure 1's D2; under full scan they coincide.
    n_sv = simulator.chain_length

    result = Procedure2Result(
        circuit_name=circuit.name,
        config=config,
        n_sv=n_sv,
        num_targets=len(target_faults),
    )

    remaining: List[Fault] = list(target_faults)
    ts0_hits = simulator.simulate_grouped(ts0, remaining, policy)
    result.detections.update(ts0_hits)
    result.ts0_detected = len(ts0_hits)
    remaining = [f for f in remaining if f not in ts0_hits]
    if not remaining:
        result.complete = True
        return result

    iteration = 0
    n_same_fc = 0
    while n_same_fc < config.n_same_fc and iteration < config.max_iterations:
        iteration += 1
        improved = False
        for d1 in config.d1_values:
            ts = build_limited_scan_test_set(ts0, iteration, d1, config, n_sv)
            hits = simulator.simulate_grouped(ts, remaining, policy)
            if hits:
                result.detections.update(hits)
                result.pairs.append(
                    PairResult(
                        iteration=iteration,
                        d1=d1,
                        newly_detected=len(hits),
                        nsh=sum(t.total_shift_cycles for t in ts),
                        ls_time_units=sum(t.num_limited_scans for t in ts),
                        total_time_units=total_vectors(ts),
                    )
                )
                remaining = [f for f in remaining if f not in hits]
                improved = True
            if not remaining:
                break
        if not remaining:
            break
        n_same_fc = 0 if improved else n_same_fc + 1

    result.iterations_run = iteration
    result.remaining_faults = remaining
    result.complete = not remaining
    return result
