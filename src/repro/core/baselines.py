"""Baseline schemes the paper compares against (or implies).

The paper's quantitative comparison is with the scan-BIST schemes of
[5]/[6], which apply random multi-vector tests *without* limited scan and
report incomplete coverage within a 500,000-cycle budget.  We implement
the comparable baselines directly:

- :func:`ts0_only` -- the initial test set alone (the paper's "initial"
  columns),
- :func:`multi_seed` -- re-apply freshly seeded copies of ``TS0`` until a
  cycle budget is exhausted (the classic multiple-seed remedy from the
  introduction),
- :func:`single_vector_bist` -- classical full-scan random BIST with one
  vector per scan load (the combinational-view scheme of [1]-[4]),
- :func:`full_scan_insertion` -- the ablation that motivates *limited*
  scan: identical insertion time units, but every inserted operation is a
  complete scan (``N_SV`` shifts).  Detects at least as much, costs far
  more cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.core.cost import ncyc0 as ncyc0_formula
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.test_set import generate_ts0
from repro.faults.fault_sim import FaultSimulator, ObservationPolicy, ScanTest
from repro.faults.model import Fault
from repro.rpg.prng import make_source


@dataclass
class BaselineResult:
    """Coverage/cost outcome of a baseline scheme."""

    name: str
    detected: int
    num_targets: int
    cycles: int
    applications: int = 1

    @property
    def coverage(self) -> float:
        if self.num_targets == 0:
            return 1.0
        return self.detected / self.num_targets

    def summary(self) -> str:
        return (
            f"{self.name}: {self.detected}/{self.num_targets} "
            f"({100 * self.coverage:.2f}%) in {self.cycles} cycles"
        )


def ts0_only(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    simulator: Optional[FaultSimulator] = None,
) -> BaselineResult:
    """Apply ``TS0`` once (no limited scan)."""
    simulator = simulator or FaultSimulator(circuit)
    ts0 = generate_ts0(circuit, config)
    detected = simulator.simulate_grouped(ts0, target_faults)
    return BaselineResult(
        name="TS0-only",
        detected=len(detected),
        num_targets=len(target_faults),
        cycles=ncyc0_formula(circuit.num_state_vars, config.la, config.lb, config.n),
    )


def multi_seed(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    cycle_budget: int = 500_000,
    simulator: Optional[FaultSimulator] = None,
) -> BaselineResult:
    """Re-apply ``TS0`` with fresh seeds until the cycle budget runs out.

    This is the "multiple seeds" remedy from the paper's introduction:
    more randomness, no limited scan.  Stops early at full coverage.
    """
    simulator = simulator or FaultSimulator(circuit)
    per_application = ncyc0_formula(
        circuit.num_state_vars, config.la, config.lb, config.n
    )
    remaining: List[Fault] = list(target_faults)
    cycles = 0
    applications = 0
    seed = config.base_seed
    while remaining and cycles + per_application <= cycle_budget:
        cfg = BistConfig(
            la=config.la,
            lb=config.lb,
            n=config.n,
            base_seed=seed,
            rng_kind=config.rng_kind,
        )
        ts = generate_ts0(circuit, cfg)
        hits = simulator.simulate_grouped(ts, remaining)
        remaining = [f for f in remaining if f not in hits]
        cycles += per_application
        applications += 1
        seed = cfg.seed_for_iteration(applications)
    return BaselineResult(
        name="multi-seed-TS0",
        detected=len(target_faults) - len(remaining),
        num_targets=len(target_faults),
        cycles=cycles,
        applications=applications,
    )


def single_vector_bist(
    circuit: Circuit,
    target_faults: Sequence[Fault],
    cycle_budget: int = 500_000,
    seed: int = 20010618,
    rng_kind: str = "numpy",
    simulator: Optional[FaultSimulator] = None,
    batch: int = 256,
) -> BaselineResult:
    """Classical full-scan random BIST: one vector per scan load.

    Each test is scan-in + 1 at-speed vector (+ overlapped scan-out), i.e.
    ``N_SV + 1`` cycles, plus one trailing scan-out.  The circuit is
    treated as combinational -- the scheme of references [1]-[4] that the
    at-speed methods improve on.
    """
    simulator = simulator or FaultSimulator(circuit)
    n_sv = circuit.num_state_vars
    n_pi = circuit.num_inputs
    per_test = n_sv + 1
    max_tests = max(0, (cycle_budget - n_sv) // per_test) if per_test else 0
    source = make_source(seed, rng_kind)

    remaining: List[Fault] = list(target_faults)
    applied = 0
    while remaining and applied < max_tests:
        count = min(batch, max_tests - applied)
        tests = [
            ScanTest(si=source.bits(n_sv), vectors=[source.bits(n_pi)])
            for _ in range(count)
        ]
        hits = simulator.simulate_grouped(tests, remaining)
        remaining = [f for f in remaining if f not in hits]
        applied += count
    cycles = applied * per_test + (n_sv if applied else 0)
    return BaselineResult(
        name="single-vector-BIST",
        detected=len(target_faults) - len(remaining),
        num_targets=len(target_faults),
        cycles=cycles,
        applications=applied,
    )


def weighted_random_bist(
    circuit: Circuit,
    target_faults: Sequence[Fault],
    cycle_budget: int = 500_000,
    seed: int = 20010618,
    rng_kind: str = "numpy",
    simulator: Optional[FaultSimulator] = None,
    batch: int = 256,
) -> BaselineResult:
    """Weighted random patterns (the Section 1 alternative remedy).

    Single-vector full-scan tests whose bits are biased toward the values
    the random-pattern-resistant faults need: the classical recipe derives
    per-position weights from the deterministic test cubes that ATPG
    produces for the faults random patterns miss (here, the PODEM tests
    from the detectability classification).  Same cost model as
    :func:`single_vector_bist`; the comparison isolates the value of
    weighting vs. the value of limited scan.
    """
    from repro.atpg.classify import classify_faults
    from repro.rpg.weighted import WeightedSource, profile_weights

    simulator = simulator or FaultSimulator(circuit)
    n_sv = circuit.num_state_vars
    n_pi = circuit.num_inputs
    per_test = n_sv + 1
    max_tests = max(0, (cycle_budget - n_sv) // per_test) if per_test else 0

    # Weight profile from the deterministic cubes of hard faults.  The
    # random phase inside classify_faults leaves exactly the faults whose
    # cubes matter; with no hard faults the weights stay uniform.
    classification = classify_faults(simulator.graph)
    n_bits = n_pi + n_sv
    ones = [0] * n_bits
    totals = [0] * n_bits
    for cube in classification.tests.values():
        bits = list(cube["pi"]) + list(cube["si"])
        for i, b in enumerate(bits):
            totals[i] += 1
            ones[i] += b
    weights = profile_weights(ones, totals)
    source = WeightedSource(make_source(seed, rng_kind), weights)

    remaining: List[Fault] = list(target_faults)
    applied = 0
    while remaining and applied < max_tests:
        count = min(batch, max_tests - applied)
        tests = []
        for _ in range(count):
            bits = source.pattern(n_pi + n_sv)
            tests.append(ScanTest(si=bits[n_pi:], vectors=[bits[:n_pi]]))
        hits = simulator.simulate_grouped(tests, remaining)
        remaining = [f for f in remaining if f not in hits]
        applied += count
    cycles = applied * per_test + (n_sv if applied else 0)
    return BaselineResult(
        name="weighted-random-BIST",
        detected=len(target_faults) - len(remaining),
        num_targets=len(target_faults),
        cycles=cycles,
        applications=applied,
    )


def multichain_at_speed_bist(
    circuit: Circuit,
    target_faults: Sequence[Fault],
    cycle_budget: int = 500_000,
    max_chain_length: int = 10,
    lengths: Sequence[int] = (8, 16),
    tests_per_length: int = 64,
    seed: int = 20010618,
    rng_kind: str = "numpy",
    simulator: Optional[FaultSimulator] = None,
) -> BaselineResult:
    """The configuration of the paper's references [5]/[6].

    Multiple scan chains of length at most ``max_chain_length`` mean a
    complete scan operation costs at most ``max_chain_length`` cycles,
    and the last flip-flop of every chain is observed at every time unit.
    Random multi-vector tests (no limited scan) are applied until the
    cycle budget is exhausted -- this is the scheme the paper beats on
    coverage despite its much cheaper scan operations.
    """
    from repro.simulation.multichain import balanced_chains

    simulator = simulator or FaultSimulator(circuit)
    n_sv = circuit.num_state_vars
    n_pi = circuit.num_inputs
    config = balanced_chains(n_sv, max_chain_length)
    policy = ObservationPolicy(
        state_taps=[chain[-1] for chain in config.chains]
    )
    scan_cost = config.max_length
    source = make_source(seed, rng_kind)

    remaining: List[Fault] = list(target_faults)
    cycles = scan_cost  # the first scan-in (later ones overlap scan-out)
    applications = 0
    while remaining:
        batch: List[ScanTest] = []
        batch_cycles = 0
        for length in lengths:
            per_test = length + scan_cost
            for _ in range(tests_per_length):
                if cycles + batch_cycles + per_test > cycle_budget:
                    break
                batch.append(
                    ScanTest(
                        si=source.bits(n_sv),
                        vectors=[source.bits(n_pi) for _ in range(length)],
                    )
                )
                batch_cycles += per_test
        if not batch:
            break
        hits = simulator.simulate_grouped(batch, remaining, policy)
        remaining = [f for f in remaining if f not in hits]
        cycles += batch_cycles
        applications += len(batch)
    return BaselineResult(
        name=f"multi-chain-at-speed (chains<={max_chain_length})",
        detected=len(target_faults) - len(remaining),
        num_targets=len(target_faults),
        cycles=cycles,
        applications=applications,
    )


def full_scan_insertion(
    circuit: Circuit,
    config: BistConfig,
    target_faults: Sequence[Fault],
    iteration: int = 1,
    d1: int = 1,
    simulator: Optional[FaultSimulator] = None,
) -> BaselineResult:
    """Ablation: complete scans at the limited-scan time units.

    Builds ``TS(I, D1)`` exactly as Procedure 1 would, then widens every
    inserted operation to a complete scan (``N_SV`` shifts; the original
    fill bits are extended from the same deterministic stream).  The
    cycle count shows why the paper inserts *limited* scans instead.
    """
    simulator = simulator or FaultSimulator(circuit)
    n_sv = circuit.num_state_vars
    ts0 = generate_ts0(circuit, config)
    ts = build_limited_scan_test_set(ts0, iteration, d1, config, n_sv)
    fill_source = make_source(
        config.seed_for_iteration(iteration) ^ 0x5A5A5A, config.rng_kind
    )
    widened: List[ScanTest] = []
    for test in ts:
        schedule = []
        for k, fill in test.schedule:
            if k > 0:
                extra = fill_source.bits(n_sv - len(fill))
                schedule.append((n_sv, tuple(fill) + tuple(extra)))
            else:
                schedule.append((0, ()))
        widened.append(
            ScanTest(si=test.si, vectors=test.vectors, schedule=schedule)
        )
    hits = simulator.simulate_grouped(widened, target_faults)
    base = ncyc0_formula(n_sv, config.la, config.lb, config.n)
    nsh = sum(t.total_shift_cycles for t in widened)
    return BaselineResult(
        name=f"full-scan-insertion(I={iteration},D1={d1})",
        detected=len(hits),
        num_targets=len(target_faults),
        cycles=base + nsh,
    )
