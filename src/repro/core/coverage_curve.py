"""Coverage-versus-cycles curves.

The paper reports endpoint numbers (Tables 6-8); for analysis it is often
more useful to see *how* coverage accumulates against the clock-cycle
budget.  This module produces that series for the proposed scheme (TS0,
then each selected ``TS(I, D1)`` application in order) and for the
baselines, as plain data points suitable for any plotting tool (an
offline-friendly CSV writer is included).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.circuit.netlist import Circuit
from repro.core.config import BistConfig
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.procedure2 import Procedure2Result
from repro.core.test_set import generate_ts0
from repro.faults.fault_sim import FaultSimulator
from repro.faults.model import Fault


@dataclass
class CoverageCurve:
    """A monotone series of (cycles, detected) checkpoints."""

    label: str
    points: List[Tuple[int, int]] = field(default_factory=list)
    num_targets: int = 0

    def add(self, cycles: int, detected: int) -> None:
        if self.points and cycles < self.points[-1][0]:
            raise ValueError("cycles must be non-decreasing")
        self.points.append((cycles, detected))

    @property
    def final_coverage(self) -> float:
        if not self.points or self.num_targets == 0:
            return 0.0
        return self.points[-1][1] / self.num_targets

    def cycles_to_reach(self, coverage: float) -> Optional[int]:
        """First checkpoint reaching ``coverage`` (0..1), or None."""
        threshold = coverage * self.num_targets
        for cycles, detected in self.points:
            if detected >= threshold:
                return cycles
        return None

    def as_csv(self) -> str:
        lines = ["cycles,detected,coverage"]
        for cycles, detected in self.points:
            cov = detected / self.num_targets if self.num_targets else 0.0
            lines.append(f"{cycles},{detected},{cov:.6f}")
        return "\n".join(lines) + "\n"


def proposed_scheme_curve(
    circuit: Circuit,
    result: Procedure2Result,
    target_faults: Sequence[Fault],
    simulator: Optional[FaultSimulator] = None,
) -> CoverageCurve:
    """Checkpoint after TS0 and after each selected pair's application.

    Re-simulates the selected schedule in application order with fault
    dropping, mirroring what the hardware would do.
    """
    simulator = simulator or FaultSimulator(circuit)
    config = result.config
    ts0 = generate_ts0(circuit, config)
    n_sv = simulator.chain_length

    curve = CoverageCurve(
        label=f"{circuit.name} limited-scan", num_targets=len(target_faults)
    )
    remaining = list(target_faults)
    hits = simulator.simulate_grouped(ts0, remaining)
    remaining = [f for f in remaining if f not in hits]
    detected = len(target_faults) - len(remaining)
    cycles = result.ncyc0
    curve.add(cycles, detected)

    for pair in result.pairs:
        ts = build_limited_scan_test_set(
            ts0, pair.iteration, pair.d1, config, n_sv
        )
        hits = simulator.simulate_grouped(ts, remaining)
        remaining = [f for f in remaining if f not in hits]
        detected = len(target_faults) - len(remaining)
        cycles += result.ncyc0 + pair.nsh
        curve.add(cycles, detected)
    return curve


def single_vector_curve(
    circuit: Circuit,
    target_faults: Sequence[Fault],
    cycle_budget: int,
    checkpoints: int = 20,
    seed: int = 20010618,
    simulator: Optional[FaultSimulator] = None,
) -> CoverageCurve:
    """Classic single-vector random BIST, checkpointed over the budget."""
    from repro.rpg.prng import make_source
    from repro.faults.fault_sim import ScanTest

    simulator = simulator or FaultSimulator(circuit)
    n_sv = circuit.num_state_vars
    n_pi = circuit.num_inputs
    per_test = n_sv + 1
    max_tests = max(0, (cycle_budget - n_sv) // per_test)
    step = max(1, max_tests // checkpoints)
    source = make_source(seed)

    curve = CoverageCurve(
        label=f"{circuit.name} single-vector", num_targets=len(target_faults)
    )
    remaining = list(target_faults)
    applied = 0
    while applied < max_tests:
        count = min(step, max_tests - applied)
        tests = [
            ScanTest(si=source.bits(n_sv), vectors=[source.bits(n_pi)])
            for _ in range(count)
        ]
        hits = simulator.simulate_grouped(tests, remaining)
        remaining = [f for f in remaining if f not in hits]
        applied += count
        curve.add(
            applied * per_test + n_sv, len(target_faults) - len(remaining)
        )
        if not remaining:
            break
    return curve


def write_curves_csv(
    curves: Sequence[CoverageCurve], path: Union[str, Path]
) -> None:
    """All curves into one CSV with a ``label`` column."""
    lines = ["label,cycles,detected,coverage"]
    for curve in curves:
        for cycles, detected in curve.points:
            cov = detected / curve.num_targets if curve.num_targets else 0.0
            lines.append(f"{curve.label},{cycles},{detected},{cov:.6f}")
    Path(path).write_text("\n".join(lines) + "\n")
