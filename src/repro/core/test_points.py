"""Test point insertion (the paper's Section 1 alternative).

When random patterns leave faults undetected, the classical structural
remedy is to insert test points:

- an **observation point** taps a poorly observable net to an extra
  pseudo primary output (here: an extra scanned flip-flop, the usual
  full-scan realization),
- a **control point** ANDs (control-to-0) or ORs (control-to-1) a poorly
  controllable net with a dedicated test-enable primary input.

Selection is SCOAP-guided: the nets with the worst
observability/controllability among the undetected faults' sites are
fixed first.  The experiments compare this remedy's coverage gain and
hardware cost against the paper's limited-scan approach, which needs no
netlist change at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.atpg.scoap import INFINITY, ScoapResult, compute_scoap
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault


@dataclass(frozen=True)
class TestPoint:
    """One inserted test point."""

    __test__ = False  # not a pytest test class, despite the name

    kind: str  # 'observe', 'control0', or 'control1'
    net: str

    def __str__(self) -> str:
        return f"{self.kind}({self.net})"


@dataclass
class TestPointPlan:
    """A selection of test points and the instrumented circuit."""

    __test__ = False  # not a pytest test class, despite the name

    points: List[TestPoint]
    circuit: Circuit  # the instrumented copy

    @property
    def num_observe(self) -> int:
        return sum(1 for p in self.points if p.kind == "observe")

    @property
    def num_control(self) -> int:
        return sum(1 for p in self.points if p.kind.startswith("control"))

    @property
    def extra_flops(self) -> int:
        return self.num_observe

    @property
    def extra_inputs(self) -> int:
        return 1 if self.num_control else 0

    def summary(self) -> str:
        return (
            f"{len(self.points)} test points "
            f"({self.num_observe} observe, {self.num_control} control): "
            f"+{self.extra_flops} flops, +{self.extra_inputs} inputs, "
            f"+{self.num_control} gates"
        )


def select_test_points(
    circuit: Circuit,
    hard_faults: Sequence[Fault],
    max_points: int = 8,
    scoap: Optional[ScoapResult] = None,
) -> List[TestPoint]:
    """SCOAP-guided selection targeting ``hard_faults``.

    For each hard fault, whichever of its activation-controllability or
    observability cost dominates decides the point kind; candidates are
    ranked by that cost and deduplicated per net.
    """
    scoap = scoap or compute_scoap(circuit)
    candidates: List[Tuple[int, TestPoint]] = []
    for fault in hard_faults:
        net = fault.site
        obs = scoap.co[net]
        ctrl = scoap.controllability(net, 1 - fault.value)
        if obs >= ctrl:
            candidates.append((obs, TestPoint(kind="observe", net=net)))
            continue
        # Activation-limited.  A control point must NOT sit on the fault
        # site itself (it would mask the fault); it goes on the driving
        # gate's inputs, making the activation value likely.
        gate = circuit.gate_for(net)
        if gate is None:
            continue  # PIs / flop outputs are directly controllable
        want = 1 - fault.value  # value the site must take
        base = gate.gtype.base
        # Value the gate's core (pre-inversion) function must produce.
        core_needed = want ^ gate.gtype.inversion_parity
        if base is GateType.AND and core_needed == 1:
            all_inputs, in_value = True, 1
        elif base is GateType.AND:
            all_inputs, in_value = False, 0
        elif base is GateType.OR and core_needed == 0:
            all_inputs, in_value = True, 0
        elif base is GateType.OR:
            all_inputs, in_value = False, 1
        else:  # BUF/NOT/XOR: one input with the core value (XOR approx.)
            all_inputs, in_value = False, core_needed
        kind = "control1" if in_value else "control0"
        if all_inputs:
            for src in gate.inputs:
                cost = scoap.controllability(src, in_value)
                candidates.append((cost, TestPoint(kind=kind, net=src)))
        else:
            src = min(
                gate.inputs,
                key=lambda s: scoap.controllability(s, in_value),
            )
            candidates.append(
                (
                    scoap.controllability(src, in_value),
                    TestPoint(kind=kind, net=src),
                )
            )
    candidates.sort(key=lambda c: -min(c[0], INFINITY))
    chosen: List[TestPoint] = []
    seen_nets = set()
    for _cost, point in candidates:
        if point.net in seen_nets:
            continue
        seen_nets.add(point.net)
        chosen.append(point)
        if len(chosen) >= max_points:
            break
    return chosen


def insert_test_points(
    circuit: Circuit,
    points: Sequence[TestPoint],
    test_enable: str = "TEN",
) -> Circuit:
    """Return an instrumented copy of ``circuit``.

    Observation points become extra scanned flip-flops (appended at the
    scan-out end of the chain).  Control points rewrite every consumer of
    the net to read a gated version: ``net AND NOT TEN`` (control-to-0)
    or ``net OR TEN`` (control-to-1) -- with ``TEN = 0`` the circuit is
    functionally unchanged.
    """
    control_points = [p for p in points if p.kind.startswith("control")]
    observe_points = [p for p in points if p.kind == "observe"]

    out = Circuit(f"{circuit.name}+tp")
    for net in circuit.inputs:
        out.add_input(net)
    if control_points:
        out.add_input(test_enable)
    for net in circuit.outputs:
        out.add_output(net)

    gated = {}
    for i, point in enumerate(control_points):
        name = f"{point.net}$cp{i}"
        if point.kind == "control1":
            out.add_gate(name, GateType.OR, [point.net, test_enable])
        else:
            out.add_gate(f"{name}$n", GateType.NOT, [test_enable])
            out.add_gate(name, GateType.AND, [point.net, f"{name}$n"])
        gated[point.net] = name

    def feed(src: str) -> str:
        return gated.get(src, src)

    for flop in circuit.flops:
        out.add_flop(flop.q, feed(flop.d))
    for gate in circuit.iter_gates():
        out.add_gate(
            gate.output, gate.gtype, [feed(s) for s in gate.inputs]
        )
    # Observation flops appended after the original chain.
    for i, point in enumerate(observe_points):
        out.add_flop(f"op{i}$q", feed(point.net))
    return out


def plan_test_points(
    circuit: Circuit,
    hard_faults: Sequence[Fault],
    max_points: int = 8,
) -> TestPointPlan:
    points = select_test_points(circuit, hard_faults, max_points)
    return TestPointPlan(
        points=points, circuit=insert_test_points(circuit, points)
    )


def map_fault(fault: Fault) -> Fault:
    """Faults of the original circuit are valid in the instrumented one
    (stems keep their names; gated consumers read new nets but the stem
    still exists).  Branch faults whose consumer was rewired are mapped
    onto the stem conservatively."""
    if fault.is_branch:
        return Fault(site=fault.site, value=fault.value)
    return fault
