"""Configuration for the random limited-scan BIST scheme.

Everything the paper's hardware would store -- and nothing more -- plus
the simulation-side knobs.  A :class:`BistConfig` together with a circuit
fully determines every generated test set: the scheme's storage cost is
``(L_A, L_B, N)``, the base seed, and the selected ``(I, D1)`` pairs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: The paper's default exploration order for D1 in Procedure 2.
D1_INCREASING: Tuple[int, ...] = tuple(range(1, 11))
#: The Table 7 variant: prefer fewer limited scans.
D1_DECREASING: Tuple[int, ...] = tuple(range(10, 0, -1))


@dataclass(frozen=True)
class BistConfig:
    """Parameters of the generation scheme.

    Attributes:
        la, lb: the two test lengths (``L_A < L_B`` as in the paper).
        n: number of tests of each length (``|TS0| = 2N``).
        base_seed: seed of the dedicated TS0 generator and ancestor of
            every ``seed(I)``.
        d1_values: the D1 values Procedure 2 tries, in preference order.
        n_same_fc: Procedure 2's ``N_SAME_FC`` -- consecutive iterations
            of ``I`` without improvement before giving up.
        max_iterations: hard cap on ``I`` (safety net; the paper relies
            on ``N_SAME_FC`` alone).
        d2: maximum-shift modulus; ``None`` means the paper's
            ``N_SV + 1``.
        reseed_per_test: Procedure 1 as literally written re-seeds the
            schedule RNG with ``seed(I)`` for every test; ``False`` uses
            one continuous stream per test set (ablation knob).
        rng_kind: ``'numpy'`` or ``'lfsr'`` (hardware-faithful).
        n_jobs: worker processes for fault simulation (1 = serial,
            -1 = all cores).  Purely an execution knob: it shards the
            fault list across processes and never changes any result,
            so it is excluded from serialized configurations.
        lint: what Procedure 2 does about structural lint errors in the
            circuit before simulating: ``'warn'`` (default) emits a
            ``RuntimeWarning``, ``'error'`` raises
            :class:`repro.analysis.LintError`, ``'off'`` skips the
            check.  Like ``n_jobs`` it never changes results on valid
            circuits and is excluded from serialized configurations.
        shard_timeout: seconds the sharded simulator waits for a
            dispatch's worker shards before declaring the laggards hung
            and respawning the pool; ``None`` waits forever.  Execution
            knob (recovery re-runs the same deterministic work).
        shard_retries: parallel re-attempts for a failed shard before it
            is re-executed serially in the parent.  Execution knob.
        pool: which parallel back-end serves fault simulation when
            ``n_jobs > 1``: ``'persistent'`` (default) keeps one worker
            pool alive for the whole Procedure 2 run with the circuit
            and fault list published once through shared memory (see
            :mod:`repro.faults.pool`); ``'sharded'`` is the legacy
            per-dispatch :class:`~repro.faults.sharding.ShardedFaultSimulator`.
            Execution knob: results are byte-identical either way.
        candidate_batch: how many ``(I, D1)`` candidate test sets
            Procedure 2 scores per fault-simulation dispatch.  1
            (default) evaluates candidates one by one; larger values
            amortize the per-pass evaluation overhead across the batch
            (speculative evaluation with exact reconstruction -- see
            :meth:`repro.faults.fault_sim.FaultSimulator.simulate_candidates`).
            Execution knob: results are byte-identical for any value.
        candidate_bias: Procedure 2's candidate search order.
            ``'uniform'`` (default) tries D1 values exactly in
            ``d1_values`` order -- byte-identical to every release
            before the knob existed.  ``'testability'`` reorders the D1
            stream around the COP scan-benefit pivot
            (:func:`repro.analysis.cop.testability_d1_order`) so depths
            likely to absorb RPR faults are tried first, typically
            storing fewer ``(I, D1)`` pairs.  Unlike the execution
            knobs this is a *search-strategy* knob -- it legitimately
            changes which pairs are selected -- but it is still
            excluded from :meth:`to_dict`: the chosen pairs themselves
            are the result, the bias is provenance (recorded as
            execution metadata on :class:`~repro.core.procedure2.Procedure2Result`
            and in experiment manifests), and a resumed run re-derives
            the same deterministic order from the circuit.
    """

    la: int = 8
    lb: int = 16
    n: int = 64
    base_seed: int = 20010618
    d1_values: Tuple[int, ...] = D1_INCREASING
    n_same_fc: int = 3
    max_iterations: int = 60
    d2: Optional[int] = None
    reseed_per_test: bool = True
    rng_kind: str = "numpy"
    n_jobs: int = 1
    lint: str = "warn"
    shard_timeout: Optional[float] = None
    shard_retries: int = 2
    pool: str = "persistent"
    candidate_batch: int = 1
    candidate_bias: str = "uniform"

    def __post_init__(self) -> None:
        if self.la < 1 or self.lb < 1:
            raise ValueError("test lengths must be positive")
        if self.la >= self.lb:
            raise ValueError(
                f"the paper requires L_A < L_B, got {self.la} >= {self.lb}"
            )
        if self.n < 1:
            raise ValueError("N must be positive")
        if not self.d1_values or any(d < 1 for d in self.d1_values):
            raise ValueError("D1 values must be positive")
        if self.n_same_fc < 1:
            raise ValueError("N_SAME_FC must be positive")
        if self.d2 is not None and self.d2 < 1:
            raise ValueError("D2 must be positive")
        if self.n_jobs < 1 and self.n_jobs != -1:
            raise ValueError("n_jobs must be >= 1, or -1 for all cores")
        if self.lint not in ("off", "warn", "error"):
            raise ValueError("lint must be 'off', 'warn', or 'error'")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive, or None")
        if self.shard_retries < 0:
            raise ValueError("shard_retries must be >= 0")
        if self.pool not in ("persistent", "sharded"):
            raise ValueError("pool must be 'persistent' or 'sharded'")
        if self.candidate_batch < 1:
            raise ValueError("candidate_batch must be >= 1")
        if self.candidate_bias not in ("uniform", "testability"):
            raise ValueError(
                "candidate_bias must be 'uniform' or 'testability'"
            )

    def with_lengths(self, la: int, lb: int, n: int) -> "BistConfig":
        """A copy with different ``(L_A, L_B, N)`` (everything else kept)."""
        return dataclasses.replace(self, la=la, lb=lb, n=n)

    def to_dict(self) -> Dict[str, Any]:
        """The result-affecting parameters as a JSON-compatible dict.

        Execution knobs (``n_jobs``, ``lint``, ``shard_timeout``,
        ``shard_retries``, ``pool``, ``candidate_batch``) are
        intentionally omitted: they never change results on valid
        circuits, so serialized outputs and checkpoint journals stay
        byte-identical across serial/parallel, lint-mode, pool-backend,
        batching, and recovery-policy variations.  ``candidate_bias``
        is also omitted -- see its attribute docs: the selected pairs
        are the result, the search order that found them is provenance,
        and a resume re-derives it deterministically from the circuit.
        """
        return {
            "la": self.la,
            "lb": self.lb,
            "n": self.n,
            "base_seed": self.base_seed,
            "d1_values": list(self.d1_values),
            "n_same_fc": self.n_same_fc,
            "max_iterations": self.max_iterations,
            "d2": self.d2,
            "reseed_per_test": self.reseed_per_test,
            "rng_kind": self.rng_kind,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BistConfig":
        """Inverse of :meth:`to_dict` (execution knobs take defaults)."""
        return cls(
            la=data["la"],
            lb=data["lb"],
            n=data["n"],
            base_seed=data["base_seed"],
            d1_values=tuple(data["d1_values"]),
            n_same_fc=data["n_same_fc"],
            max_iterations=data["max_iterations"],
            d2=data.get("d2"),
            reseed_per_test=data["reseed_per_test"],
            rng_kind=data["rng_kind"],
        )

    def effective_d2(self, n_sv: int) -> int:
        """The paper's ``D2 = N_SV + 1`` unless overridden."""
        return self.d2 if self.d2 is not None else n_sv + 1

    def seed_for_iteration(self, iteration: int) -> int:
        """``seed(I)``: distinct, reproducible per-iteration seeds."""
        return (self.base_seed * 0x9E3779B1 + iteration * 0x85EBCA77 + 1) & (
            2**48 - 1
        )
