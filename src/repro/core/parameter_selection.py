"""Selection of ``(L_A, L_B, N)`` by increasing ``Ncyc0`` (Table 5).

The paper explores ``L_A in {8,16,32,64,128,256}``, ``L_B in
{16,32,64,128,256}`` and ``N in {64,128,256}`` with ``L_A < L_B``, orders
the combinations by the cost of the initial test set, and runs
Procedure 2 on them in that order until one achieves complete fault
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.core.cost import ncyc0

#: The paper's candidate values.
LA_CHOICES: Tuple[int, ...] = (8, 16, 32, 64, 128, 256)
LB_CHOICES: Tuple[int, ...] = (16, 32, 64, 128, 256)
N_CHOICES: Tuple[int, ...] = (64, 128, 256)


@dataclass(frozen=True)
class ParameterCombo:
    """One ``(L_A, L_B, N)`` candidate with its initial-test-set cost."""

    la: int
    lb: int
    n: int
    ncyc0: int

    def label(self) -> str:
        return f"{self.la},{self.lb},{self.n}"


def enumerate_combinations(
    n_sv: int,
    la_choices: Sequence[int] = LA_CHOICES,
    lb_choices: Sequence[int] = LB_CHOICES,
    n_choices: Sequence[int] = N_CHOICES,
) -> List[ParameterCombo]:
    """All ``L_A < L_B`` combinations, sorted by increasing ``Ncyc0``.

    Ties are broken by ``(N, L_B, L_A)`` so the order is deterministic.
    """
    combos = [
        ParameterCombo(la=la, lb=lb, n=n, ncyc0=ncyc0(n_sv, la, lb, n))
        for n in n_choices
        for lb in lb_choices
        for la in la_choices
        if la < lb
    ]
    combos.sort(key=lambda c: (c.ncyc0, c.n, c.lb, c.la))
    return combos


def first_combinations(n_sv: int, k: int = 10) -> List[ParameterCombo]:
    """The first ``k`` combinations by increasing ``Ncyc0`` (Table 5)."""
    return enumerate_combinations(n_sv)[:k]


def combos_in_search_order(n_sv: int) -> Iterator[ParameterCombo]:
    """The order in which Procedure 2 tries combinations (cheapest first)."""
    yield from enumerate_combinations(n_sv)
