"""Limited scan for test-application-time reduction (refs [7]-[11]).

The paper's introduction situates its contribution against earlier work
where limited scan operations *reduce the test application time of a
deterministic test set* (primary input sequences of length one).  The
idea: between consecutive tests the chain already holds the captured
response of the previous test; if the next test's scan-in state can be
obtained by shifting that response by ``k < N_SV`` positions (scanning
``k`` fresh bits in), the full ``N_SV``-cycle scan is unnecessary.

This module reproduces that technique:

- :func:`minimal_shift` -- the smallest ``k`` turning a response into a
  target state,
- :func:`plan_overlap` -- greedy nearest-neighbour test ordering that
  maximizes overlap,
- :func:`build_session` -- the whole ordered test set as **one**
  :class:`ScanTest` whose limited-scan schedule realizes the plan, so the
  existing fault simulator verifies the coverage of the optimized
  session,
- :func:`overlap_experiment` -- end-to-end: generate a deterministic
  test set, optimize, verify coverage, report the TAT saving.

Verification matters because partial scan-in observes only ``k`` of the
previous response's bits; coverage of the optimized session is
fault-simulated, never assumed (observation through later tests usually
recovers it -- the experiment quantifies this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.circuit.netlist import Circuit
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault, FaultGraph
from repro.simulation.compiled import CompiledModel
from repro.simulation.sequential import simulate_test


def minimal_shift(response: Sequence[int], target: Sequence[int]) -> int:
    """Smallest ``k`` such that shifting ``response`` right by ``k`` (with
    the right fill bits) yields ``target``: requires
    ``target[k:] == response[:n-k]``.  ``k = n`` (full scan) always works.
    """
    n = len(response)
    if len(target) != n:
        raise ValueError("response/target length mismatch")
    for k in range(n + 1):
        if list(target[k:]) == list(response[: n - k]):
            return k
    raise AssertionError("k = n must always match")  # pragma: no cover


def fill_bits_for(target: Sequence[int], k: int) -> Tuple[int, ...]:
    """The ``k`` bits to scan in: the first bit scanned ends deepest, so
    the fill sequence is ``target[:k]`` reversed."""
    return tuple(reversed(list(target[:k])))


@dataclass
class OverlapPlan:
    """An ordered test session with per-transition shift amounts."""

    order: List[int]  # indices into the original test list
    shifts: List[int]  # shifts[i]: scan cycles before ordered test i
    n_sv: int

    @property
    def num_tests(self) -> int:
        return len(self.order)

    def optimized_cycles(self) -> int:
        """Scan-in shifts + one functional cycle per test + final scan-out."""
        return sum(self.shifts) + self.num_tests + self.n_sv

    def full_scan_cycles(self) -> int:
        """The conventional cost: overlapped complete scans."""
        return (self.num_tests + 1) * self.n_sv + self.num_tests

    def saving(self) -> float:
        full = self.full_scan_cycles()
        return 1.0 - self.optimized_cycles() / full if full else 0.0


def plan_overlap(
    tests: Sequence[ScanTest],
    responses: Sequence[Sequence[int]],
    greedy_order: bool = True,
) -> OverlapPlan:
    """Order tests to maximize scan overlap.

    ``responses[i]`` is the fault-free captured state of test ``i``.
    Greedy nearest neighbour: start from test 0, repeatedly append the
    unvisited test whose scan-in needs the fewest shifts from the
    current response.  ``greedy_order=False`` keeps the original order
    (still exploiting whatever overlap happens to exist).
    """
    if len(tests) != len(responses):
        raise ValueError("need one response per test")
    n = len(tests)
    if n == 0:
        return OverlapPlan(order=[], shifts=[], n_sv=0)
    n_sv = len(tests[0].si)

    if not greedy_order:
        order = list(range(n))
    else:
        order = [0]
        visited = {0}
        while len(order) < n:
            current_resp = responses[order[-1]]
            best, best_k = None, n_sv + 1
            for j in range(n):
                if j in visited:
                    continue
                k = minimal_shift(current_resp, tests[j].si)
                if k < best_k:
                    best, best_k = j, k
                    if k == 0:
                        break
            order.append(best)
            visited.add(best)

    shifts = [n_sv]  # the first test needs a complete scan-in
    for prev, curr in zip(order, order[1:]):
        shifts.append(minimal_shift(responses[prev], tests[curr].si))
    return OverlapPlan(order=order, shifts=shifts, n_sv=n_sv)


def build_session(
    tests: Sequence[ScanTest], plan: OverlapPlan
) -> ScanTest:
    """Realize a plan as a single multi-vector :class:`ScanTest`.

    The session starts with a complete scan-in of the first test's state
    (the plan's leading ``n_sv`` shift is the ordinary scan-in, so the
    session's schedule holds the *remaining* transitions).
    """
    if plan.num_tests == 0:
        raise ValueError("empty plan")
    first = tests[plan.order[0]]
    vectors: List[List[int]] = [list(first.vectors[0])]
    schedule: List[Tuple[int, Tuple[int, ...]]] = [(0, ())]
    for idx, k in zip(plan.order[1:], plan.shifts[1:]):
        test = tests[idx]
        schedule.append((k, fill_bits_for(test.si, k)))
        vectors.append(list(test.vectors[0]))
    return ScanTest(si=list(first.si), vectors=vectors, schedule=schedule)


@dataclass
class OverlapOutcome:
    plan: OverlapPlan
    session: ScanTest
    baseline_detected: int
    optimized_detected: int
    num_targets: int
    repaired_transitions: int = 0

    def summary(self) -> str:
        repair = (
            f", {self.repaired_transitions} transitions reverted"
            if self.repaired_transitions
            else ""
        )
        return (
            f"{self.plan.num_tests} tests: full-scan TAT "
            f"{self.plan.full_scan_cycles()} cycles -> optimized "
            f"{self.plan.optimized_cycles()} cycles "
            f"({100 * self.plan.saving():.0f}% saved); coverage "
            f"{self.baseline_detected} -> {self.optimized_detected} "
            f"of {self.num_targets}{repair}"
        )


def _repair_plan(
    plan: OverlapPlan,
    tests: Sequence[ScanTest],
    simulator: FaultSimulator,
    targets: Sequence[Fault],
    baseline_records,
) -> Tuple[OverlapPlan, ScanTest, int, int]:
    """Revert overlapped transitions to complete scans until the session
    recovers the baseline coverage.

    Attribution-guided: a lost fault was detected by some test ``t`` in
    the conventional set; the transition *after* ``t`` in the session is
    the one whose partial scan hides ``t``'s response (and the one before
    perturbs its state), so those are reverted first.  Remaining
    overlapped transitions are swept cheapest-first as a fallback.
    """
    baseline = len(baseline_records)
    position = {test_idx: pos for pos, test_idx in enumerate(plan.order)}
    shifts = list(plan.shifts)
    reverted = 0
    session = build_session(tests, plan)
    optimized = simulator.simulate_grouped([session], targets)
    detected = len(optimized)

    def candidates_for(lost_faults) -> List[int]:
        ranked: List[int] = []
        for fault in lost_faults:
            rec = baseline_records.get(fault)
            if rec is None:
                continue
            pos = position.get(rec.test_index)
            if pos is None:
                continue
            for i in (pos + 1, pos):
                if 1 <= i < len(shifts) and shifts[i] < plan.n_sv:
                    if i not in ranked:
                        ranked.append(i)
        # Fallback sweep over whatever is left, cheapest overlap first.
        rest = sorted(
            (
                i
                for i in range(1, len(shifts))
                if shifts[i] < plan.n_sv and i not in ranked
            ),
            key=lambda i: shifts[i],
        )
        return ranked + rest

    lost = [f for f in baseline_records if f not in optimized]
    for i in candidates_for(lost):
        if detected >= baseline:
            break
        if shifts[i] == plan.n_sv:
            continue
        shifts[i] = plan.n_sv
        reverted += 1
        repaired = OverlapPlan(order=plan.order, shifts=shifts, n_sv=plan.n_sv)
        session = build_session(tests, repaired)
        detected = len(simulator.simulate_grouped([session], targets))
    final_plan = OverlapPlan(order=plan.order, shifts=shifts, n_sv=plan.n_sv)
    return final_plan, session, detected, reverted


def overlap_experiment(
    circuit_or_graph: Union[Circuit, FaultGraph],
    target_faults: Optional[Sequence[Fault]] = None,
    greedy_order: bool = True,
    repair: bool = False,
    seed: int = 20010618,
) -> OverlapOutcome:
    """The full [7]-[11]-style flow on one circuit."""
    from repro.atpg.test_generation import generate_deterministic_tests

    if isinstance(circuit_or_graph, FaultGraph):
        graph = circuit_or_graph
    else:
        graph = FaultGraph(circuit_or_graph)
    simulator = FaultSimulator(graph)

    det = generate_deterministic_tests(graph, faults=target_faults, seed=seed)
    targets = det.covered if target_faults is None else list(target_faults)

    # Fault-free responses for planning.
    responses = []
    for test in det.tests:
        trace = simulate_test(graph.model, test.si, test.vectors)
        responses.append([int(b) for b in trace.states[-1]])

    plan = plan_overlap(det.tests, responses, greedy_order=greedy_order)
    session = build_session(det.tests, plan)

    baseline = simulator.simulate_grouped(det.tests, targets)
    optimized = simulator.simulate_grouped([session], targets)
    reverted = 0
    if repair and len(optimized) < len(baseline):
        plan, session, detected, reverted = _repair_plan(
            plan, det.tests, simulator, targets, baseline
        )
        optimized_count = detected
    else:
        optimized_count = len(optimized)
    return OverlapOutcome(
        plan=plan,
        session=session,
        baseline_detected=len(baseline),
        optimized_detected=optimized_count,
        num_targets=len(targets),
        repaired_transitions=reverted,
    )
