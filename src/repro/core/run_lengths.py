"""At-speed run-length analysis.

The paper summarizes how "at-speed" a test set is with the scalar ``ls``
(average limited-scan time units): ``ls = 0.5`` means a scan operation
every 2 time units on average.  This module computes the underlying
*distribution*: the lengths of the maximal primary-input runs applied
at speed between (complete or limited) scan operations.  It validates
the paper's reading of ``ls`` (mean run length ~ ``1/ls``) and exposes
the tail (long at-speed bursts) that the scalar hides.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.faults.fault_sim import ScanTest


@dataclass
class RunLengthStats:
    """Distribution of at-speed run lengths over a test set."""

    histogram: Dict[int, int]  # run length -> count
    num_runs: int
    total_time_units: int
    ls_time_units: int  # time units with shift > 0

    @property
    def mean(self) -> float:
        if self.num_runs == 0:
            return 0.0
        return (
            sum(length * count for length, count in self.histogram.items())
            / self.num_runs
        )

    @property
    def maximum(self) -> int:
        return max(self.histogram, default=0)

    @property
    def ls_average(self) -> float:
        """The paper's ``ls`` for this test set."""
        if self.total_time_units == 0:
            return 0.0
        return self.ls_time_units / self.total_time_units

    def percentile(self, p: float) -> int:
        """Run length at percentile ``p`` (0..100)."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.num_runs == 0:
            return 0
        target = self.num_runs * p / 100.0
        seen = 0
        for length in sorted(self.histogram):
            seen += self.histogram[length]
            if seen >= target:
                return length
        return self.maximum

    def summary(self) -> str:
        return (
            f"{self.num_runs} at-speed runs: mean {self.mean:.2f}, "
            f"p50 {self.percentile(50)}, p90 {self.percentile(90)}, "
            f"max {self.maximum} (ls = {self.ls_average:.2f})"
        )


def run_lengths_of_test(test: ScanTest) -> List[int]:
    """Maximal at-speed runs of one test.

    The test starts right after a complete scan-in and ends at a complete
    scan-out, so runs are delimited by the test boundaries and by the
    time units where ``shift > 0``.  The vector at a limited-scan time
    unit starts the next run (it is applied after the shift).
    """
    runs: List[int] = []
    current = 0
    for u in range(test.length):
        k, _fill = test.step(u)
        if k > 0 and current:
            runs.append(current)
            current = 0
        current += 1
    if current:
        runs.append(current)
    return runs


def analyze_run_lengths(tests: Sequence[ScanTest]) -> RunLengthStats:
    """Run-length distribution over a whole test set."""
    histogram: Counter = Counter()
    total_units = 0
    ls_units = 0
    for test in tests:
        for run in run_lengths_of_test(test):
            histogram[run] += 1
        total_units += test.length
        ls_units += test.num_limited_scans
    return RunLengthStats(
        histogram=dict(histogram),
        num_runs=sum(histogram.values()),
        total_time_units=total_units,
        ls_time_units=ls_units,
    )
