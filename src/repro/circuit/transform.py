"""Netlist transforms used to build the fault-simulation graph.

Two rewrites are provided, both structural and behaviour-preserving:

- :func:`decompose_to_two_input` -- replace gates with fan-in > 2 by chains
  of two-input gates.  The compiled simulator only vectorizes one- and
  two-input operations, and pin faults on wide gates map onto the chain
  leaves.
- :func:`insert_fanout_branches` -- give every consumer pin of a
  multi-fanout net its own BUF-driven branch net.  After this rewrite every
  classical *pin* stuck-at fault is an *output* stuck-at fault on some net,
  which makes fault injection uniform.

Both functions return the rewritten circuit together with a mapping that
lets the fault model translate original-circuit pin coordinates into
rewritten-circuit nets.  Pin coordinates are ``(consumer, pin_index)``
where ``consumer`` is a gate output net, or a flop's ``q`` net for the
flop's D pin (pin index 0).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, Gate

PinCoord = Tuple[str, int]

#: Final-stage gate to use when decomposing an inverting wide gate.
_FINAL_STAGE = {
    GateType.NAND: (GateType.AND, GateType.NAND),
    GateType.NOR: (GateType.OR, GateType.NOR),
    GateType.XNOR: (GateType.XOR, GateType.XNOR),
    GateType.AND: (GateType.AND, GateType.AND),
    GateType.OR: (GateType.OR, GateType.OR),
    GateType.XOR: (GateType.XOR, GateType.XOR),
}


def decompose_to_two_input(
    circuit: Circuit,
) -> Tuple[Circuit, Dict[PinCoord, PinCoord]]:
    """Rewrite gates with fan-in > 2 into left-to-right two-input chains.

    Returns ``(new_circuit, pin_map)`` where ``pin_map`` maps every
    original gate pin to the chain pin that now reads the same source net.
    Pins of untouched gates map to themselves, so the map is total over
    gate pins (flop D pins are never rewritten and map to themselves).
    """
    out = Circuit(circuit.name)
    for net in circuit.inputs:
        out.add_input(net)
    for net in circuit.outputs:
        out.add_output(net)
    for flop in circuit.flops:
        out.add_flop(flop.q, flop.d)

    pin_map: Dict[PinCoord, PinCoord] = {}
    for flop in circuit.flops:
        pin_map[(flop.q, 0)] = (flop.q, 0)

    for gate in circuit.iter_gates():
        k = len(gate.inputs)
        if k <= 2:
            out.add_gate(gate.output, gate.gtype, gate.inputs)
            for pin in range(k):
                pin_map[(gate.output, pin)] = (gate.output, pin)
            continue
        chain_type, final_type = _FINAL_STAGE[gate.gtype]
        # t_1 = base(in0, in1); t_j = base(t_{j-1}, in_{j+1}); the last stage
        # carries the original output name and the original inversion.
        prev = gate.inputs[0]
        prev_is_input0 = True
        for stage in range(1, k):
            src = gate.inputs[stage]
            last = stage == k - 1
            dst = gate.output if last else f"{gate.output}$d{stage}"
            gtype = final_type if last else chain_type
            out.add_gate(dst, gtype, (prev, src))
            if prev_is_input0:
                pin_map[(gate.output, 0)] = (dst, 0)
                prev_is_input0 = False
            pin_map[(gate.output, stage)] = (dst, 1)
            prev = dst

    return out, pin_map


def insert_fanout_branches(
    circuit: Circuit,
) -> Tuple[Circuit, Dict[PinCoord, str]]:
    """Give each consumer pin of a multi-fanout net a private branch net.

    Returns ``(new_circuit, branch_of)`` where ``branch_of`` maps every
    consumer pin coordinate (of the *input* circuit) to the net that now
    feeds it: a fresh ``BUF``-driven branch net if the source had fanout
    greater than one, else the original source net.  Primary outputs are
    observation points, not consumers, and keep reading the stem.
    """
    fanout = circuit.fanout_map()
    # A primary-output tap counts as a fanout destination: a pin fault on a
    # net that also feeds a PO must not be directly observable at that PO.
    po_taps: Dict[str, int] = {}
    for net in circuit.outputs:
        po_taps[net] = po_taps.get(net, 0) + 1
    multi = {
        net
        for net, readers in fanout.items()
        if len(readers) + po_taps.get(net, 0) > 1
    }

    out = Circuit(circuit.name)
    for net in circuit.inputs:
        out.add_input(net)
    for net in circuit.outputs:
        out.add_output(net)

    branch_of: Dict[PinCoord, str] = {}
    branch_gates: List[Gate] = []
    counters: Dict[str, int] = {}

    def feed(src: str, consumer: str, pin: int) -> str:
        if src not in multi:
            branch_of[(consumer, pin)] = src
            return src
        idx = counters.get(src, 0)
        counters[src] = idx + 1
        branch = f"{src}$b{idx}"
        branch_gates.append(Gate(output=branch, gtype=GateType.BUF, inputs=(src,)))
        branch_of[(consumer, pin)] = branch
        return branch

    for flop in circuit.flops:
        out.add_flop(flop.q, feed(flop.d, flop.q, 0))
    for gate in circuit.iter_gates():
        new_inputs = tuple(
            feed(src, gate.output, pin) for pin, src in enumerate(gate.inputs)
        )
        out.add_gate(gate.output, gate.gtype, new_inputs)
    for gate in branch_gates:
        out.add_gate(gate.output, gate.gtype, gate.inputs)

    return out, branch_of
