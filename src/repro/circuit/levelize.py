"""Topological levelization of the combinational core of a circuit.

For simulation and ATPG the sequential circuit is treated as its
combinational core: level 0 holds the primary inputs and the flip-flop
outputs (pseudo primary inputs); each gate sits one level above the deepest
of its fan-ins.  Flip-flop *inputs* (pseudo primary outputs) are ordinary
gate-driven nets and carry the level of their driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.circuit.netlist import Circuit, Gate


class CombinationalCycleError(ValueError):
    """Raised when gates form a cycle that is not broken by a flip-flop."""

    def __init__(self, members: List[str]) -> None:
        super().__init__(f"combinational cycle through: {sorted(members)}")
        self.members = members


@dataclass
class Levelization:
    """Result of levelizing a circuit.

    Attributes:
        level_of: net name -> level (PIs and flop outputs are level 0).
        order: gates in a valid topological evaluation order.
        levels: gates grouped by level (index 1 = first gate level).
    """

    level_of: Dict[str, int]
    order: List[Gate]
    levels: List[List[Gate]]

    @property
    def depth(self) -> int:
        """Number of gate levels (0 for a circuit with no gates)."""
        return len(self.levels)


def levelize(circuit: Circuit) -> Levelization:
    """Levelize ``circuit``'s combinational core.

    Raises :class:`CombinationalCycleError` if the gates cannot be ordered,
    and ``KeyError`` if a gate reads an undriven net (validation proper is
    in :mod:`repro.circuit.validate`; this function only needs enough
    checking to avoid silent mis-simulation).
    """
    level_of: Dict[str, int] = {}
    for net in circuit.inputs:
        level_of[net] = 0
    for q in circuit.state_vars:
        level_of[q] = 0

    remaining: Dict[str, Gate] = {g.output: g for g in circuit.iter_gates()}
    order: List[Gate] = []
    levels: List[List[Gate]] = []

    # Kahn-style level-synchronous scheduling: a gate is ready once all its
    # inputs are levelled.  Nets that are never driven raise immediately.
    driven = set(level_of) | set(remaining)
    for gate in remaining.values():
        for src in gate.inputs:
            if src not in driven:
                raise KeyError(f"gate {gate.output} reads undriven net {src}")

    while remaining:
        ready: List[Gate] = []
        for gate in remaining.values():
            if all(src in level_of for src in gate.inputs):
                ready.append(gate)
        if not ready:
            raise CombinationalCycleError(list(remaining))
        # Assign exact levels (1 + max input level); gates whose computed
        # level exceeds the current frontier wait for a later sweep so that
        # ``levels[i]`` only depends on strictly earlier groups.
        frontier = len(levels) + 1
        this_level: List[Gate] = []
        for gate in ready:
            lvl = 1 + max((level_of[src] for src in gate.inputs), default=0)
            if lvl == frontier:
                this_level.append(gate)
        if not this_level:
            # Every ready gate computed a deeper level than the frontier;
            # cannot happen with exact levels, guard against regressions.
            raise AssertionError("levelization frontier stalled")
        for gate in this_level:
            level_of[gate.output] = frontier
            del remaining[gate.output]
            order.append(gate)
        levels.append(this_level)

    return Levelization(level_of=level_of, order=order, levels=levels)
