"""Topological levelization of the combinational core of a circuit.

For simulation and ATPG the sequential circuit is treated as its
combinational core: level 0 holds the primary inputs and the flip-flop
outputs (pseudo primary inputs); each gate sits one level above the deepest
of its fan-ins.  Flip-flop *inputs* (pseudo primary outputs) are ordinary
gate-driven nets and carry the level of their driver.

Two entry points share the same level semantics:

- :func:`levelize` works on the name-keyed :class:`Circuit` object form and
  returns gate objects -- the API the ATPG/analysis layers consume.
- :func:`levelize_arrays` works on the struct-of-arrays
  :class:`~repro.circuit.netlist.NetlistArrays` form and returns flat
  ``int32`` index arrays -- the form the compiled simulator builds from.

Both run in ``O(V + E)`` (Kahn's algorithm over an explicit consumer
adjacency), so 100k-gate circuits with 50k-deep logic chains levelize in
linear time with no recursion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.circuit.netlist import Circuit, Gate, NetlistArrays


class CombinationalCycleError(ValueError):
    """Raised when gates form a cycle that is not broken by a flip-flop."""

    def __init__(self, members: List[str]) -> None:
        super().__init__(f"combinational cycle through: {sorted(members)}")
        self.members = members


@dataclass
class Levelization:
    """Result of levelizing a circuit.

    Attributes:
        level_of: net name -> level (PIs and flop outputs are level 0).
        order: gates in a valid topological evaluation order.
        levels: gates grouped by level (index 1 = first gate level).
    """

    level_of: Dict[str, int]
    order: List[Gate]
    levels: List[List[Gate]]

    @property
    def depth(self) -> int:
        """Number of gate levels (0 for a circuit with no gates)."""
        return len(self.levels)


def levelize(circuit: Circuit) -> Levelization:
    """Levelize ``circuit``'s combinational core in ``O(V + E)``.

    Raises :class:`CombinationalCycleError` if the gates cannot be ordered,
    and ``KeyError`` if a gate reads an undriven net (validation proper is
    in :mod:`repro.circuit.validate`; this function only needs enough
    checking to avoid silent mis-simulation).

    Within a level, gates appear in circuit insertion order, and ``order``
    is the concatenation of the levels -- a stable order that downstream
    compilation relies on for byte-identical results.
    """
    level_of: Dict[str, int] = {}
    for net in circuit.inputs:
        level_of[net] = 0
    for q in circuit.state_vars:
        level_of[q] = 0

    gate_map: Dict[str, Gate] = {g.output: g for g in circuit.iter_gates()}
    driven = set(level_of) | set(gate_map)

    # Per-occurrence indegree over gate-driven fan-ins, plus the reverse
    # (consumer) adjacency Kahn's algorithm propagates along.  A gate
    # listing the same source twice is counted twice on both sides, so
    # the bookkeeping stays consistent.
    indegree: Dict[str, int] = {}
    consumers: Dict[str, List[str]] = {}
    for gate in gate_map.values():
        n = 0
        for src in gate.inputs:
            if src not in driven:
                raise KeyError(f"gate {gate.output} reads undriven net {src}")
            if src in gate_map:
                n += 1
                consumers.setdefault(src, []).append(gate.output)
        indegree[gate.output] = n

    queue = deque(out for out, n in indegree.items() if n == 0)
    n_levelled = 0
    max_level = 0
    while queue:
        out = queue.popleft()
        gate = gate_map[out]
        # Every fan-in is levelled by the time a gate is popped, so its
        # exact level is available immediately.
        lvl = 1 + max((level_of[src] for src in gate.inputs), default=0)
        level_of[out] = lvl
        if lvl > max_level:
            max_level = lvl
        n_levelled += 1
        for consumer in consumers.get(out, ()):
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                queue.append(consumer)

    if n_levelled != len(gate_map):
        raise CombinationalCycleError(
            [out for out in gate_map if out not in level_of]
        )

    # Bucket by level in one insertion-order sweep: within a level gates
    # keep circuit insertion order, matching the historical output.
    levels: List[List[Gate]] = [[] for _ in range(max_level)]
    for gate in gate_map.values():
        levels[level_of[gate.output] - 1].append(gate)
    order: List[Gate] = [g for level in levels for g in level]

    return Levelization(level_of=level_of, order=order, levels=levels)


@dataclass
class LevelArrays:
    """Array-form levelization of a :class:`NetlistArrays` netlist.

    Attributes:
        level_of: ``int32[n_nets]`` level per net index (0 for PIs/flop
            outputs).
        order: ``int32[n_gates]`` gate indices in topological order --
            levels ascending, ascending gate index within a level (gate
            index order *is* insertion order in the array form).
        level_offset: ``int32[depth + 1]`` prefix offsets into ``order``;
            the gates of level ``k`` (1-based) are
            ``order[level_offset[k-1]:level_offset[k]]``.
    """

    level_of: np.ndarray
    order: np.ndarray
    level_offset: np.ndarray

    @property
    def depth(self) -> int:
        return len(self.level_offset) - 1


def levelize_arrays(arrays: NetlistArrays) -> LevelArrays:
    """Levelize a struct-of-arrays netlist in ``O(V + E)``.

    The index form has no undriven-net failure mode (every fan-in is a
    valid net index by construction); cycles raise
    :class:`CombinationalCycleError` with the offending net names.
    """
    n_gates = arrays.n_gates
    first_gate = arrays.n_pi + arrays.n_ff
    fanin = arrays.fanin
    offset = arrays.fanin_offset

    # Indegree counts only gate-driven fan-ins (net index >= first_gate).
    indegree = np.zeros(n_gates, dtype=np.int32)
    gate_srcs = fanin >= first_gate
    if n_gates:
        np.add.at(
            indegree,
            np.repeat(np.arange(n_gates), np.diff(offset)),
            gate_srcs.astype(np.int32),
        )

    # Reverse adjacency in CSR form: for each *gate-driven* fan-in edge,
    # consumer gate of that edge, grouped by producer gate.
    edge_consumer = np.repeat(np.arange(n_gates, dtype=np.int32), np.diff(offset))
    producers = fanin[gate_srcs] - first_gate
    consumers_of = edge_consumer[gate_srcs]
    sort = np.argsort(producers, kind="stable")
    producers = producers[sort]
    consumers_csr = consumers_of[sort]
    consumer_offset = np.zeros(n_gates + 1, dtype=np.int64)
    np.cumsum(np.bincount(producers, minlength=n_gates), out=consumer_offset[1:])

    indeg = indegree.tolist()
    queue = deque(i for i in range(n_gates) if indeg[i] == 0)
    fanin_list = fanin.tolist()
    offset_list = offset.tolist()
    lvl_list = [0] * (arrays.n_nets)
    consumer_offset_list = consumer_offset.tolist()
    consumers_list = consumers_csr.tolist()
    n_levelled = 0
    max_level = 0
    while queue:
        g = queue.popleft()
        lo, hi = offset_list[g], offset_list[g + 1]
        lvl = 1
        for e in range(lo, hi):
            src_lvl = lvl_list[fanin_list[e]]
            if src_lvl >= lvl:
                lvl = src_lvl + 1
        lvl_list[first_gate + g] = lvl
        if lvl > max_level:
            max_level = lvl
        n_levelled += 1
        clo, chi = consumer_offset_list[g], consumer_offset_list[g + 1]
        for e in range(clo, chi):
            c = consumers_list[e]
            indeg[c] -= 1
            if indeg[c] == 0:
                queue.append(c)

    if n_levelled != n_gates:
        # Unprocessed gates (level still 0) are the cycle members plus
        # everything downstream of them.
        raise CombinationalCycleError(
            [
                arrays.names[first_gate + g]
                for g in range(n_gates)
                if lvl_list[first_gate + g] == 0
            ]
        )

    level_of = np.asarray(lvl_list, dtype=np.int32)
    gate_levels = level_of[first_gate:]
    # Stable sort by level preserves ascending gate index within a level.
    order = np.argsort(gate_levels, kind="stable").astype(np.int32)
    counts = np.bincount(gate_levels - 1, minlength=max_level) if n_gates else np.zeros(0, dtype=np.int64)
    level_offset = np.zeros(max_level + 1, dtype=np.int32)
    np.cumsum(counts, out=level_offset[1:])
    return LevelArrays(
        level_of=level_of, order=order, level_offset=level_offset
    )
