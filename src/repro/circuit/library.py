"""Gate library: gate types and their evaluation semantics.

Two evaluation entry points are provided:

- :func:`eval_gate_bits` -- scalar 0/1 evaluation, used by the reference
  (slow, obviously-correct) interpreter and by the ATPG engine's good-value
  computations.
- :func:`eval_gate_words` -- word-level evaluation over ``numpy.uint64``
  arrays where every bit position is an independent machine copy.  This is
  the kernel the bit-parallel simulators are built on.

All gates are positive-unate-or-inverting standard cells: AND, OR, NAND,
NOR, XOR, XNOR, NOT, BUF, plus constant generators CONST0/CONST1.  DFFs are
not part of the combinational library; they are modelled structurally by
:class:`repro.circuit.netlist.Flop`.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

#: All 64 bits set; used to implement NOT on uint64 words without relying on
#: numpy's signed-integer behaviour.
ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class GateType(enum.Enum):
    """Combinational gate types supported by the library."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_inverting(self) -> bool:
        """True if the gate's output inverts its core function."""
        return self in _INVERTING

    @property
    def base(self) -> "GateType":
        """The non-inverting counterpart (NAND -> AND, NOT -> BUF, ...)."""
        return _BASE[self]

    @property
    def min_arity(self) -> int:
        return _MIN_ARITY[self]

    @property
    def max_arity(self) -> int:
        """Maximum supported fan-in (0 means 'no inputs allowed')."""
        return _MAX_ARITY[self]

    @property
    def controlling_value(self) -> int | None:
        """The input value that determines the output alone, if any.

        AND/NAND: 0, OR/NOR: 1.  XOR-family and single-input gates have no
        controlling value and return None.
        """
        if self.base is GateType.AND:
            return 0
        if self.base is GateType.OR:
            return 1
        return None

    @property
    def inversion_parity(self) -> int:
        """1 if the gate inverts (NAND/NOR/XNOR/NOT), else 0."""
        return 1 if self.is_inverting else 0


_INVERTING = {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}

_BASE = {
    GateType.AND: GateType.AND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.OR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XOR,
    GateType.XNOR: GateType.XOR,
    GateType.NOT: GateType.BUF,
    GateType.BUF: GateType.BUF,
    GateType.CONST0: GateType.CONST0,
    GateType.CONST1: GateType.CONST1,
}

_MIN_ARITY = {
    GateType.AND: 2,
    GateType.NAND: 2,
    GateType.OR: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}

_MAX_ARITY = {
    GateType.AND: 64,
    GateType.NAND: 64,
    GateType.OR: 64,
    GateType.NOR: 64,
    GateType.XOR: 64,
    GateType.XNOR: 64,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}

#: Stable integer codes for the struct-of-arrays netlist form.  The codes
#: are part of the compile-cache payload format: reordering them would
#: silently reinterpret cached arrays, so only ever *append* new types.
GATE_CODE = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 2,
    GateType.NOR: 3,
    GateType.XOR: 4,
    GateType.XNOR: 5,
    GateType.NOT: 6,
    GateType.BUF: 7,
    GateType.CONST0: 8,
    GateType.CONST1: 9,
}

#: Inverse of :data:`GATE_CODE`, indexable by code.
CODE_GATE = tuple(
    sorted(GATE_CODE, key=GATE_CODE.__getitem__)
)

#: Names accepted by the ``.bench`` parser, mapped to gate types.
BENCH_NAMES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def eval_gate_bits(gtype: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a gate on scalar 0/1 inputs and return 0 or 1.

    Raises ``ValueError`` on an arity violation so that structural bugs
    surface immediately instead of producing silent garbage.
    """
    n = len(inputs)
    if n < gtype.min_arity or n > gtype.max_arity:
        raise ValueError(f"{gtype.value} gate with {n} inputs")
    if any(v not in (0, 1) for v in inputs):
        raise ValueError(f"non-binary input values: {inputs!r}")

    base = gtype.base
    if base is GateType.CONST0:
        out = 0
    elif base is GateType.CONST1:
        out = 1
    elif base is GateType.BUF:
        out = inputs[0]
    elif base is GateType.AND:
        out = int(all(inputs))
    elif base is GateType.OR:
        out = int(any(inputs))
    else:  # XOR family
        out = 0
        for v in inputs:
            out ^= v
    if gtype.is_inverting:
        out ^= 1
    return out


def eval_gate_words(gtype: GateType, inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate a gate bitwise over uint64 word arrays.

    Every bit of the words is an independent simulation copy (a pattern or
    a fault machine).  The result array has the broadcast shape of the
    inputs; CONST gates require a reference input-free call and therefore
    return a scalar-shaped array of one word.
    """
    n = len(inputs)
    if n < gtype.min_arity or n > gtype.max_arity:
        raise ValueError(f"{gtype.value} gate with {n} inputs")

    base = gtype.base
    if base is GateType.CONST0:
        out = np.uint64(0)
    elif base is GateType.CONST1:
        out = ALL_ONES
    elif base is GateType.BUF:
        out = inputs[0].copy() if isinstance(inputs[0], np.ndarray) else inputs[0]
    elif base is GateType.AND:
        out = inputs[0]
        for w in inputs[1:]:
            out = out & w
    elif base is GateType.OR:
        out = inputs[0]
        for w in inputs[1:]:
            out = out | w
    else:  # XOR family
        out = inputs[0]
        for w in inputs[1:]:
            out = out ^ w
    if gtype.is_inverting:
        out = out ^ ALL_ONES
    return np.asarray(out, dtype=np.uint64)
