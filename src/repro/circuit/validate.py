"""Structural validation of circuits.

The simulators and the fault model assume a well-formed netlist.  This
module is the stable, low-level API (:class:`CircuitError` and friends);
since the linter grew out of these checks, the actual rules live in the
:mod:`repro.analysis` registry and this module is a thin wrapper so
there is a single source of truth for structural issues.

Imports of :mod:`repro.analysis` are deferred to call time: ``analysis``
sits above ``circuit`` in the layering, and the lazy import keeps this
module importable from anywhere in the package without cycles.
"""

from __future__ import annotations

from typing import List

from repro.circuit.netlist import Circuit


class CircuitError(ValueError):
    """A structural problem in a circuit, with all issues listed."""

    def __init__(self, circuit_name: str, issues: List[str]) -> None:
        detail = "; ".join(issues)
        super().__init__(f"circuit {circuit_name}: {detail}")
        self.issues = issues


def find_issues(circuit: Circuit) -> List[str]:
    """Return a list of human-readable structural problems (empty if OK).

    Equivalent to the ERROR-severity findings of
    :func:`repro.analysis.lint_structural`; warnings (dangling nets,
    dead logic) are legal in benchmark files and reported only by the
    full linter.
    """
    from repro.analysis import lint_structural

    return [issue.message for issue in lint_structural(circuit).errors]


def find_dangling(circuit: Circuit) -> List[str]:
    """Nets that drive nothing and are not primary outputs.

    Faults on such nets are trivially undetectable; the synthetic circuit
    generator uses this to clean up its output.
    """
    from repro.analysis.structural import dangling_nets

    return dangling_nets(circuit)


def validate_circuit(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` if the circuit is structurally broken."""
    issues = find_issues(circuit)
    if issues:
        raise CircuitError(circuit.name, issues)
