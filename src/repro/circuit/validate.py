"""Structural validation of circuits.

The simulators and the fault model assume a well-formed netlist.  This
module centralizes the checks so that malformed circuits fail loudly at
load time instead of producing wrong coverage numbers later.
"""

from __future__ import annotations

from typing import List

from repro.circuit.levelize import CombinationalCycleError, levelize
from repro.circuit.netlist import Circuit


class CircuitError(ValueError):
    """A structural problem in a circuit, with all issues listed."""

    def __init__(self, circuit_name: str, issues: List[str]) -> None:
        detail = "; ".join(issues)
        super().__init__(f"circuit {circuit_name}: {detail}")
        self.issues = issues


def find_issues(circuit: Circuit) -> List[str]:
    """Return a list of human-readable structural problems (empty if OK)."""
    issues: List[str] = []
    driven = set(circuit.signals())

    for net in circuit.outputs:
        if net not in driven:
            issues.append(f"primary output {net} is undriven")
    for gate in circuit.iter_gates():
        for src in gate.inputs:
            if src not in driven:
                issues.append(f"gate {gate.output} reads undriven net {src}")
    for flop in circuit.flops:
        if flop.d not in driven:
            issues.append(f"flop {flop.q} reads undriven net {flop.d}")

    seen_q = set()
    for flop in circuit.flops:
        if flop.q in seen_q:
            issues.append(f"duplicate flop output {flop.q}")
        seen_q.add(flop.q)

    if not circuit.outputs and not circuit.flops:
        issues.append("circuit has no observable points (no POs, no flops)")

    if not issues:
        try:
            levelize(circuit)
        except CombinationalCycleError as exc:
            issues.append(str(exc))

    # Dangling nets are legal in benchmark files but worth flagging for
    # synthetic generation; they reduce observability.  Reported only via
    # find_dangling(), not as hard errors.
    return issues


def find_dangling(circuit: Circuit) -> List[str]:
    """Nets that drive nothing and are not primary outputs.

    Faults on such nets are trivially undetectable; the synthetic circuit
    generator uses this to clean up its output.
    """
    used = set(circuit.outputs)
    for gate in circuit.iter_gates():
        used.update(gate.inputs)
    for flop in circuit.flops:
        used.add(flop.d)
    return [net for net in circuit.signals() if net not in used]


def validate_circuit(circuit: Circuit) -> None:
    """Raise :class:`CircuitError` if the circuit is structurally broken."""
    issues = find_issues(circuit)
    if issues:
        raise CircuitError(circuit.name, issues)
