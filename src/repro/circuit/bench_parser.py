"""ISCAS-89 ``.bench`` format reader and writer.

The ``.bench`` dialect accepted here is the common ISCAS-89/ITC-99 one::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)
    G14 = NOT(G0)

Gate names are case-insensitive; ``INV``/``BUFF`` aliases are accepted.
Nets may be used before they are defined (forward references), as is usual
in distributed benchmark files.

The parser is the trust boundary of the ingestion pipeline and honours a
strict contract, fuzzed continuously by :mod:`repro.fuzz`:

    ``parse_bench`` either returns a :class:`Circuit` with **no**
    ERROR-severity structural lint findings, or raises
    :class:`BenchParseError` carrying *every* problem found (stable
    ``E###`` codes, line and column context) -- never a partial circuit,
    never a bare ``ValueError``/``KeyError`` from deeper layers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.circuit.levelize import CombinationalCycleError, levelize
from repro.circuit.library import BENCH_NAMES, GateType
from repro.circuit.netlist import Circuit

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]*)\s*\)\s*$", re.IGNORECASE)
_ASSIGN_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)\s*$"
)
#: Net names: anything without whitespace or ``.bench`` metacharacters.
_NAME_RE = re.compile(r"^[^\s(),=#]+$")

#: Stable parse-error codes (documented in docs/fuzzing.md).
E_SYNTAX = "E001"          # unrecognized statement
E_UNKNOWN_GATE = "E002"    # unknown gate/function name
E_ARITY = "E003"           # wrong number of gate or DFF inputs
E_DUP_INPUT = "E004"       # duplicate INPUT declaration
E_DUP_OUTPUT = "E005"      # duplicate OUTPUT declaration
E_REDEFINED = "E006"       # net driven by more than one statement
E_UNDRIVEN = "E007"        # net referenced but never driven
E_STRUCTURAL = "E008"      # self-loop / combinational cycle
E_EMPTY = "E009"           # no statements at all
E_BAD_NAME = "E010"        # net name contains metacharacters
E_LEGACY = "E000"          # legacy constructor, no code supplied


@dataclass(frozen=True)
class BenchParseIssue:
    """One problem found while parsing, with stable code and location.

    ``lineno``/``column`` are 1-based; 0 means file-level / unknown.
    """

    code: str
    lineno: int
    message: str
    column: int = 0
    token: str = ""

    def render(self) -> str:
        where = f"line {self.lineno}" if self.lineno else "file"
        if self.column:
            where += f", col {self.column}"
        return f"{where}: [{self.code}] {self.message}"


class BenchParseError(ValueError):
    """Raised on malformed ``.bench`` input.

    Carries every issue found in the file (the parser recovers and keeps
    scanning instead of stopping at the first problem); ``issues`` holds
    them in file order and ``lineno`` points at the first one for
    backward compatibility.
    """

    def __init__(
        self,
        issues: Union[Sequence[BenchParseIssue], int],
        message: Optional[str] = None,
    ) -> None:
        if isinstance(issues, int):  # legacy (lineno, message) signature
            issues = [
                BenchParseIssue(code=E_LEGACY, lineno=issues, message=message or "")
            ]
        self.issues: List[BenchParseIssue] = list(issues)
        self.lineno = self.issues[0].lineno if self.issues else 0
        super().__init__("\n".join(i.render() for i in self.issues))

    @property
    def codes(self) -> List[str]:
        """The issue codes in file order (duplicates preserved)."""
        return [i.code for i in self.issues]


@dataclass
class _Collector:
    """Accumulates issues so one parse reports everything at once."""

    issues: List[BenchParseIssue] = field(default_factory=list)

    def add(
        self,
        code: str,
        lineno: int,
        message: str,
        raw: str = "",
        token: str = "",
    ) -> None:
        column = 0
        if token and raw:
            pos = raw.find(token)
            if pos >= 0:
                column = pos + 1
        self.issues.append(
            BenchParseIssue(
                code=code, lineno=lineno, message=message,
                column=column, token=token,
            )
        )

    def raise_if_any(self) -> None:
        if self.issues:
            raise BenchParseError(
                sorted(self.issues, key=lambda i: (i.lineno, i.column))
            )


def _check_name(
    errors: _Collector, lineno: int, raw: str, token: str, role: str
) -> bool:
    if _NAME_RE.match(token):
        return True
    errors.add(
        E_BAD_NAME, lineno,
        f"invalid {role} name {token!r} (whitespace and '(),=#' are not "
        f"allowed in net names)",
        raw=raw, token=token,
    )
    return False


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Flip-flops appear in the scan chain in file order, which is the
    convention used by the rest of the library.  A UTF-8 BOM, CRLF line
    endings, and trailing whitespace are tolerated; everything else that
    is malformed raises one :class:`BenchParseError` listing all issues.
    """
    if text.startswith("\ufeff"):
        text = text[1:]

    errors = _Collector()
    # Parsed statements, with source context for diagnostics.
    inputs: List[Tuple[int, str]] = []
    outputs: List[Tuple[int, str, str]] = []  # (lineno, raw, net)
    flops: List[Tuple[int, str, str, str]] = []  # (lineno, raw, q, d)
    gates: List[Tuple[int, str, str, GateType, Tuple[str, ...]]] = []
    #: first driver of each net: net -> (lineno, kind)
    drivers: Dict[str, Tuple[int, str]] = {}
    #: first *read* of each net: net -> (lineno, raw, consumer description)
    reads: Dict[str, Tuple[int, str, str]] = {}
    declared_inputs: Dict[str, int] = {}
    declared_outputs: Dict[str, int] = {}
    saw_statement = False

    def claim_driver(lineno: int, raw: str, net: str, kind: str) -> bool:
        prior = drivers.get(net)
        if prior is None:
            drivers[net] = (lineno, kind)
            return True
        errors.add(
            E_REDEFINED, lineno,
            f"net {net} is redefined (already driven by {prior[1]} "
            f"on line {prior[0]})",
            raw=raw, token=net,
        )
        return False

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        saw_statement = True
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            if not net:
                errors.add(
                    E_SYNTAX, lineno,
                    f"{kind} declaration names no net", raw=raw,
                )
                continue
            if not _check_name(errors, lineno, raw, net, "net"):
                continue
            if kind == "INPUT":
                if net in declared_inputs:
                    errors.add(
                        E_DUP_INPUT, lineno,
                        f"duplicate INPUT declaration: {net} (first on "
                        f"line {declared_inputs[net]})",
                        raw=raw, token=net,
                    )
                    continue
                declared_inputs[net] = lineno
                if claim_driver(lineno, raw, net, "INPUT"):
                    inputs.append((lineno, net))
            else:
                if net in declared_outputs:
                    errors.add(
                        E_DUP_OUTPUT, lineno,
                        f"duplicate OUTPUT declaration: {net} (first on "
                        f"line {declared_outputs[net]})",
                        raw=raw, token=net,
                    )
                    continue
                declared_outputs[net] = lineno
                outputs.append((lineno, raw, net))
                reads.setdefault(net, (lineno, raw, "OUTPUT declaration"))
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            errors.add(
                E_SYNTAX, lineno,
                f"unrecognized statement: {line!r}", raw=raw,
            )
            continue
        output, func, arglist = assign.groups()
        if not _check_name(errors, lineno, raw, output, "net"):
            continue
        func_upper = func.upper()
        raw_args = [a.strip() for a in arglist.split(",")] if arglist else []
        args = tuple(a for a in raw_args if a)
        if len(args) != len(raw_args):
            errors.add(
                E_SYNTAX, lineno,
                f"empty argument in {func}(...) list", raw=raw,
            )
            continue
        if not all(
            _check_name(errors, lineno, raw, a, "net") for a in args
        ):
            continue
        if func_upper == "DFF":
            if len(args) != 1:
                errors.add(
                    E_ARITY, lineno,
                    f"DFF must have 1 input, got {len(args)}",
                    raw=raw, token=func,
                )
                continue
            if claim_driver(lineno, raw, output, "DFF"):
                flops.append((lineno, raw, output, args[0]))
                reads.setdefault(
                    args[0], (lineno, raw, f"flop {output}")
                )
        elif func_upper in BENCH_NAMES:
            gtype = BENCH_NAMES[func_upper]
            n = len(args)
            if n < gtype.min_arity or n > gtype.max_arity:
                errors.add(
                    E_ARITY, lineno,
                    f"{func_upper} takes {gtype.min_arity}"
                    + (
                        f"..{gtype.max_arity}"
                        if gtype.max_arity != gtype.min_arity
                        else ""
                    )
                    + f" input(s), got {n}",
                    raw=raw, token=func,
                )
                continue
            if claim_driver(lineno, raw, output, f"gate {func_upper}"):
                gates.append((lineno, raw, output, gtype, args))
                for a in args:
                    reads.setdefault(a, (lineno, raw, f"gate {output}"))
        else:
            errors.add(
                E_UNKNOWN_GATE, lineno,
                f"unknown gate type: {func}", raw=raw, token=func,
            )

    if not saw_statement:
        errors.add(E_EMPTY, 0, "empty netlist: no statements found")
        errors.raise_if_any()

    # Every referenced net must have a driver somewhere in the file
    # (forward references are fine; dangling *references* are not).
    for net, (lineno, raw, consumer) in reads.items():
        if net not in drivers:
            errors.add(
                E_UNDRIVEN, lineno,
                f"{consumer} reads undriven net {net}",
                raw=raw, token=net,
            )

    if not outputs and not flops:
        errors.add(
            E_STRUCTURAL, 0,
            "circuit has no observable points (no OUTPUTs, no flops)",
        )

    # Self-loops are cheap to catch with exact line context.
    for lineno, raw, output, gtype, args in gates:
        if output in args:
            errors.add(
                E_STRUCTURAL, lineno,
                f"gate {output} feeds its own input (self-loop)",
                raw=raw, token=output,
            )

    errors.raise_if_any()

    circuit = Circuit(name)
    for _lineno, net in inputs:
        circuit.add_input(net)
    for _lineno, _raw, q, d in flops:
        circuit.add_flop(q=q, d=d)
    for _lineno, _raw, output, gtype, args in gates:
        circuit.add_gate(output, gtype, args)
    for _lineno, _raw, net in outputs:
        circuit.add_output(net)

    # Combinational cycles span statements, so they are diagnosed on the
    # assembled circuit; the earliest member gate's line anchors the report.
    try:
        levelize(circuit)
    except CombinationalCycleError as exc:
        line_of = {output: lineno for lineno, _raw, output, _g, _a in gates}
        members = sorted(exc.members)
        anchor = min((line_of.get(m, 0) for m in members), default=0)
        errors.add(
            E_STRUCTURAL, anchor,
            f"combinational cycle through: {', '.join(members)}",
        )
    errors.raise_if_any()
    return circuit


def parse_bench_file(path: Union[str, Path]) -> Circuit:
    """Parse a ``.bench`` file; the circuit is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialize a :class:`Circuit` back to ``.bench`` text.

    Round-trips with :func:`parse_bench` (modulo comments/whitespace):
    flip-flop and gate order is preserved so scan-chain order survives,
    and re-serializing the reparsed circuit reproduces the text byte for
    byte (the fuzzer's fixpoint oracle).
    """
    lines = [f"# {circuit.name}"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for flop in circuit.flops:
        lines.append(f"{flop.q} = DFF({flop.d})")
    for gate in circuit.iter_gates():
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gtype.value}({args})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: Union[str, Path]) -> None:
    Path(path).write_text(write_bench(circuit))
