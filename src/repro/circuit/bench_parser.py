"""ISCAS-89 ``.bench`` format reader and writer.

The ``.bench`` dialect accepted here is the common ISCAS-89/ITC-99 one::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)
    G14 = NOT(G0)

Gate names are case-insensitive; ``INV``/``BUFF`` aliases are accepted.
Nets may be used before they are defined (forward references), as is usual
in distributed benchmark files.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple, Union

from repro.circuit.library import BENCH_NAMES, GateType
from repro.circuit.netlist import Circuit

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$", re.IGNORECASE)
_ASSIGN_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)\s*$"
)


class BenchParseError(ValueError):
    """Raised on malformed ``.bench`` input, with a line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Flip-flops appear in the scan chain in file order, which is the
    convention used by the rest of the library.
    """
    circuit = Circuit(name)
    pending_gates: List[Tuple[int, str, GateType, Tuple[str, ...]]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                circuit.add_input(net)
            else:
                circuit.add_output(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            raise BenchParseError(lineno, f"unrecognized statement: {raw.strip()!r}")
        output, func, arglist = assign.groups()
        func_upper = func.upper()
        args = tuple(a.strip() for a in arglist.split(",") if a.strip())
        if func_upper == "DFF":
            if len(args) != 1:
                raise BenchParseError(lineno, f"DFF must have 1 input, got {len(args)}")
            circuit.add_flop(q=output, d=args[0])
        elif func_upper in BENCH_NAMES:
            gtype = BENCH_NAMES[func_upper]
            # Defer gate insertion so error messages keep the line number but
            # duplicate-driver detection happens through the Circuit API.
            pending_gates.append((lineno, output, gtype, args))
        else:
            raise BenchParseError(lineno, f"unknown gate type: {func}")
    for lineno, output, gtype, args in pending_gates:
        try:
            circuit.add_gate(output, gtype, args)
        except ValueError as exc:
            raise BenchParseError(lineno, str(exc)) from exc
    return circuit


def parse_bench_file(path: Union[str, Path]) -> Circuit:
    """Parse a ``.bench`` file; the circuit is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialize a :class:`Circuit` back to ``.bench`` text.

    Round-trips with :func:`parse_bench` (modulo comments/whitespace):
    flip-flop and gate order is preserved so scan-chain order survives.
    """
    lines = [f"# {circuit.name}"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for flop in circuit.flops:
        lines.append(f"{flop.q} = DFF({flop.d})")
    for gate in circuit.iter_gates():
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gtype.value}({args})")
    return "\n".join(lines) + "\n"


def write_bench_file(circuit: Circuit, path: Union[str, Path]) -> None:
    Path(path).write_text(write_bench(circuit))
