"""Gate-level circuit modelling.

This package provides the structural substrate used by every other part of
the library:

- :mod:`repro.circuit.library` -- the gate library (types and word-level
  evaluation semantics),
- :mod:`repro.circuit.netlist` -- the :class:`Circuit` netlist container,
- :mod:`repro.circuit.bench_parser` -- ISCAS-89 ``.bench`` reader/writer,
- :mod:`repro.circuit.levelize` -- topological levelization of the
  combinational core,
- :mod:`repro.circuit.transform` -- netlist rewrites (two-input
  decomposition, explicit fanout branches),
- :mod:`repro.circuit.validate` -- structural sanity checks,
- :mod:`repro.circuit.stats` -- size/shape statistics.
"""

from repro.circuit.library import GateType, eval_gate_words, eval_gate_bits
from repro.circuit.netlist import Circuit, Gate, Flop
from repro.circuit.bench_parser import parse_bench, write_bench
from repro.circuit.verilog import parse_verilog, write_verilog
from repro.circuit.levelize import levelize
from repro.circuit.validate import validate_circuit, CircuitError
from repro.circuit.stats import circuit_stats, CircuitStats

__all__ = [
    "GateType",
    "eval_gate_words",
    "eval_gate_bits",
    "Circuit",
    "Gate",
    "Flop",
    "parse_bench",
    "write_bench",
    "parse_verilog",
    "write_verilog",
    "levelize",
    "validate_circuit",
    "CircuitError",
    "circuit_stats",
    "CircuitStats",
]
