"""Structural Verilog netlist reader and writer.

Supports the gate-primitive subset that structural DFT netlists use::

    module s27 (G0, G1, G2, G3, G17, clk);
      input G0, G1, G2, G3, clk;
      output G17;
      wire G5, G6, G7, G8;
      nand U1 (G9, G16, G15);
      not  U2 (G14, G0);
      dff  U3 (G5, G10, clk);     // (Q, D, clk)
    endmodule

Primitives: ``and, nand, or, nor, xor, xnor, not, buf`` with the output
first (Verilog primitive convention), plus a ``dff`` cell with ports
``(Q, D[, clk])``.  Continuous assignments of constants
(``assign n = 1'b0;``) map to CONST gates.  One module per file;
comments (`//` and `/* */`) are stripped.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

_PRIMITIVES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_MODULE_RE = re.compile(
    r"module\s+([A-Za-z_][\w$]*)\s*\((.*?)\)\s*;(.*?)endmodule",
    re.DOTALL,
)
_DECL_RE = re.compile(r"^(input|output|wire|reg)\s+(.+)$")
_INST_RE = re.compile(r"^([A-Za-z_][\w$]*)\s+([A-Za-z_][\w$]*)?\s*\((.+)\)$")
_ASSIGN_RE = re.compile(r"^assign\s+([\w$]+)\s*=\s*1'b([01])$")


class VerilogParseError(ValueError):
    pass


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", " ", text)


def parse_verilog(
    text: str,
    clock_names: Tuple[str, ...] = ("clk", "clock", "CK", "CLK"),
) -> Circuit:
    """Parse one structural Verilog module into a :class:`Circuit`.

    Nets named in ``clock_names`` are treated as the clock and dropped
    (the circuit model is cycle-based); a trailing ``dff`` port matching
    a clock name is likewise ignored.
    """
    text = _strip_comments(text)
    m = _MODULE_RE.search(text)
    if not m:
        raise VerilogParseError("no module found")
    name, _portlist, body = m.groups()
    circuit = Circuit(name)
    clocks = set(clock_names)
    outputs: List[str] = []

    statements = [s.strip() for s in body.split(";") if s.strip()]
    instances: List[Tuple[str, Tuple[str, ...]]] = []
    for stmt in statements:
        stmt = re.sub(r"\s+", " ", stmt)
        decl = _DECL_RE.match(stmt)
        if decl:
            kind, names = decl.groups()
            nets = [n.strip() for n in names.split(",") if n.strip()]
            if kind == "input":
                for net in nets:
                    if net not in clocks:
                        circuit.add_input(net)
            elif kind == "output":
                outputs.extend(nets)
            # wire/reg declarations carry no structure here.
            continue
        assign = _ASSIGN_RE.match(stmt)
        if assign:
            net, bit = assign.groups()
            gtype = GateType.CONST1 if bit == "1" else GateType.CONST0
            circuit.add_gate(net, gtype, [])
            continue
        inst = _INST_RE.match(stmt)
        if inst:
            prim, _iname, ports = inst.groups()
            port_nets = tuple(p.strip() for p in ports.split(","))
            instances.append((prim.lower(), port_nets))
            continue
        raise VerilogParseError(f"unrecognized statement: {stmt!r}")

    try:
        for prim, ports in instances:
            if prim == "dff":
                ports = tuple(p for p in ports if p not in clocks)
                if len(ports) != 2:
                    raise VerilogParseError(
                        f"dff needs (Q, D[, clk]) ports, got {ports}"
                    )
                circuit.add_flop(q=ports[0], d=ports[1])
            elif prim in _PRIMITIVES:
                if len(ports) < 2:
                    raise VerilogParseError(f"{prim} needs >= 2 ports")
                circuit.add_gate(ports[0], _PRIMITIVES[prim], ports[1:])
            else:
                raise VerilogParseError(f"unknown primitive: {prim}")

        for net in outputs:
            circuit.add_output(net)
    except ValueError as exc:
        # Circuit-construction failures (duplicate drivers, arity) are
        # still *parse* failures from the caller's point of view.
        if isinstance(exc, VerilogParseError):
            raise
        raise VerilogParseError(str(exc)) from exc
    return circuit


def parse_verilog_file(path: Union[str, Path]) -> Circuit:
    return parse_verilog(Path(path).read_text())


def write_verilog(circuit: Circuit, clock: str = "clk") -> str:
    """Serialize a :class:`Circuit` as structural Verilog.

    Round-trips with :func:`parse_verilog` (clock added iff the circuit
    has flip-flops).  If a circuit net already uses the requested clock
    name, a fresh ``<clock>_N`` name is chosen so the port list never
    contains duplicates.
    """
    has_ffs = circuit.num_state_vars > 0
    taken = set(circuit.signals()) | set(circuit.outputs)
    n = 0
    while clock in taken:
        clock = f"clk_{n}"
        n += 1
    ports = circuit.inputs + circuit.outputs + ([clock] if has_ffs else [])
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    ins = circuit.inputs + ([clock] if has_ffs else [])
    if ins:
        lines.append(f"  input {', '.join(ins)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(circuit.outputs)};")

    io_nets = set(circuit.inputs) | set(circuit.outputs)
    wires = [n for n in circuit.signals() if n not in io_nets]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")

    for i, flop in enumerate(circuit.flops):
        lines.append(f"  dff FF{i} ({flop.q}, {flop.d}, {clock});")
    for i, gate in enumerate(circuit.iter_gates()):
        if gate.gtype is GateType.CONST0:
            lines.append(f"  assign {gate.output} = 1'b0;")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  assign {gate.output} = 1'b1;")
        else:
            prim = gate.gtype.value.lower()
            args = ", ".join((gate.output,) + gate.inputs)
            lines.append(f"  {prim} U{i} ({args});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(circuit: Circuit, path: Union[str, Path]) -> None:
    Path(path).write_text(write_verilog(circuit))
