"""Circuit size/shape statistics.

Used by the benchmark catalog (to check synthetic stand-ins against the
published interface statistics) and by reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.circuit.levelize import levelize
from repro.circuit.netlist import Circuit


@dataclass
class CircuitStats:
    """Summary statistics of a circuit."""

    name: str
    num_inputs: int
    num_outputs: int
    num_flops: int
    num_gates: int
    depth: int
    max_fanin: int
    max_fanout: int
    gate_type_counts: Dict[str, int] = field(default_factory=dict)

    def as_row(self) -> str:
        return (
            f"{self.name:<12} pi={self.num_inputs:<4} po={self.num_outputs:<4} "
            f"ff={self.num_flops:<5} gates={self.num_gates:<6} "
            f"depth={self.depth:<3} fanin<={self.max_fanin} fanout<={self.max_fanout}"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for ``circuit``."""
    lev = levelize(circuit)
    type_counts = Counter(g.gtype.value for g in circuit.iter_gates())
    max_fanin = max((len(g.inputs) for g in circuit.iter_gates()), default=0)
    fanout_counts = Counter()
    for gate in circuit.iter_gates():
        for src in gate.inputs:
            fanout_counts[src] += 1
    for flop in circuit.flops:
        fanout_counts[flop.d] += 1
    # Primary-output taps load a net too: a net read only as a PO would
    # otherwise report fanout 0, under-reporting max_fanout on circuits
    # whose POs tap otherwise-unloaded nets.
    for net in circuit.outputs:
        fanout_counts[net] += 1
    max_fanout = max(fanout_counts.values(), default=0)
    return CircuitStats(
        name=circuit.name,
        num_inputs=circuit.num_inputs,
        num_outputs=circuit.num_outputs,
        num_flops=circuit.num_state_vars,
        num_gates=circuit.num_gates,
        depth=lev.depth,
        max_fanin=max_fanin,
        max_fanout=max_fanout,
        gate_type_counts=dict(type_counts),
    )
