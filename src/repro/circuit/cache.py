"""Content-addressed compile cache for levelization/compilation artifacts.

Compiling a 100k-gate circuit -- two-input decomposition, fanout-branch
insertion, levelization, kernel construction -- costs seconds and is a
pure function of circuit structure.  :class:`CompileCache` memoizes the
compiled state on disk, keyed by
:func:`repro.robustness.checkpoint.circuit_fingerprint` (SHA-256 of the
canonical ``.bench`` text, name excluded), so each circuit is compiled
once per machine no matter how many sessions, processes, or users touch
it.

Cache entries are pickle blobs written atomically
(:func:`repro.robustness.atomic.atomic_write_bytes`), so a crash mid-store
never leaves a torn entry.  The entry filename carries both the
fingerprint and :data:`CompileCache.FORMAT_VERSION`; bumping the version
(required whenever the pickled compiled-state layout or the
``GATE_CODE`` table changes) orphans old entries rather than
misinterpreting them.  A corrupt or unreadable entry is treated as a
miss and silently recompiled over.

The cache is opt-in: library code never consults it unless handed an
instance (tests stay hermetic), and the CLI enables it via
``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Environment variable the CLI reads to locate the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class CompileCache:
    """On-disk store of compiled-circuit state, keyed by fingerprint.

    Attributes:
        root: cache directory (created lazily on first store).
        hits / misses: per-instance counters, exposed for benchmarks and
            the CLI's cache reporting.
    """

    #: Bump when the stored state's layout changes incompatibly.
    FORMAT_VERSION = 1

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls) -> Optional["CompileCache"]:
        """A cache rooted at ``$REPRO_CACHE_DIR``, or None if unset/empty."""
        root = os.environ.get(CACHE_DIR_ENV, "").strip()
        return cls(root) if root else None

    @staticmethod
    def fingerprint(circuit: Any) -> str:
        from repro.robustness.checkpoint import circuit_fingerprint

        return circuit_fingerprint(circuit)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.v{self.FORMAT_VERSION}.pkl"

    def load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored state for ``fingerprint``, or None on a miss.

        Anything short of a well-formed entry -- absent file, torn or
        corrupt pickle, wrong payload shape, stale format -- counts as a
        miss; the caller recompiles and overwrites.
        """
        try:
            with open(self.path_for(fingerprint), "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # A corrupt pickle can raise nearly anything while
            # reconstructing objects; every failure mode is a miss.
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != self.FORMAT_VERSION
            or payload.get("fingerprint") != fingerprint
            or "state" not in payload
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["state"]

    def stats(self) -> Dict[str, int]:
        """On-disk entry census plus this instance's hit/miss counters.

        ``entries``/``bytes`` count current-format entries only; stale
        format versions are invisible (they are misses by filename).
        Cheap enough for a health endpoint to call per request.
        """
        entries = (
            list(self.root.glob(f"*.v{self.FORMAT_VERSION}.pkl"))
            if self.root.is_dir()
            else []
        )
        return {
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def store(self, fingerprint: str, state: Dict[str, Any]) -> None:
        """Atomically persist ``state`` under ``fingerprint``."""
        from repro.robustness.atomic import atomic_write_bytes

        self.root.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(
            {
                "format": self.FORMAT_VERSION,
                "fingerprint": fingerprint,
                "state": state,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        atomic_write_bytes(self.path_for(fingerprint), blob)
