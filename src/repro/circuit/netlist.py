"""Netlist container for full-scan sequential circuits.

A :class:`Circuit` is a synchronous sequential circuit in the ISCAS-89
style: named nets, primary inputs/outputs, combinational gates, and D
flip-flops.  The flip-flop declaration order defines the scan-chain order
used throughout the library (index 0 is the scan-in / "left" end, the last
index is the scan-out / "right" end, matching the paper's right-shift
convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.circuit.library import CODE_GATE, GATE_CODE, GateType


@dataclass(frozen=True)
class Gate:
    """A combinational gate: ``output = gtype(inputs...)``."""

    output: str
    gtype: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        n = len(self.inputs)
        if n < self.gtype.min_arity or n > self.gtype.max_arity:
            raise ValueError(
                f"gate {self.output}: {self.gtype.value} with {n} inputs"
            )


@dataclass(frozen=True)
class Flop:
    """A D flip-flop: state variable ``q`` latches net ``d`` each cycle."""

    q: str
    d: str


class Circuit:
    """A full-scan sequential circuit.

    Nets are identified by name.  Every net is driven by exactly one of:
    a primary input, a gate, or a flip-flop output (``q``).  The class
    enforces single drivers at construction time; deeper structural checks
    (undriven nets, combinational cycles) live in
    :mod:`repro.circuit.validate`.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._flops: List[Flop] = []
        self._flop_by_q: Dict[str, Flop] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> None:
        self._check_new_driver(name)
        self._inputs.append(name)

    def add_output(self, name: str) -> None:
        if name in self._outputs:
            raise ValueError(f"duplicate output declaration: {name}")
        self._outputs.append(name)

    def add_gate(self, output: str, gtype: GateType, inputs: Iterable[str]) -> Gate:
        gate = Gate(output=output, gtype=gtype, inputs=tuple(inputs))
        self._check_new_driver(output)
        self._gates[output] = gate
        return gate

    def add_flop(self, q: str, d: str) -> Flop:
        self._check_new_driver(q)
        flop = Flop(q=q, d=d)
        self._flops.append(flop)
        self._flop_by_q[q] = flop
        return flop

    def _check_new_driver(self, name: str) -> None:
        if name in self._gates or name in self._flop_by_q or name in self._inputs:
            raise ValueError(f"net {name} already has a driver")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[str]:
        """Primary input nets, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        """Primary output nets, in declaration order."""
        return list(self._outputs)

    @property
    def flops(self) -> List[Flop]:
        """Flip-flops in scan-chain order (index 0 = scan-in end)."""
        return list(self._flops)

    @property
    def gates(self) -> List[Gate]:
        """All combinational gates (insertion order)."""
        return list(self._gates.values())

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_state_vars(self) -> int:
        """The paper's ``N_SV``: number of scanned flip-flops."""
        return len(self._flops)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    @property
    def state_vars(self) -> List[str]:
        """Flip-flop output nets in scan-chain order."""
        return [f.q for f in self._flops]

    @property
    def next_state_nets(self) -> List[str]:
        """Flip-flop input (D) nets in scan-chain order."""
        return [f.d for f in self._flops]

    def gate_for(self, net: str) -> Optional[Gate]:
        """The gate driving ``net``, or None if it is a PI or flop output."""
        return self._gates.get(net)

    def flop_for(self, q: str) -> Optional[Flop]:
        return self._flop_by_q.get(q)

    def is_input(self, net: str) -> bool:
        return net in self._input_set()

    def is_state_var(self, net: str) -> bool:
        return net in self._flop_by_q

    def _input_set(self) -> set:
        # Small circuits dominate; recompute rather than cache+invalidate.
        return set(self._inputs)

    def signals(self) -> List[str]:
        """All driven nets: PIs, flop outputs, then gate outputs."""
        return self._inputs + [f.q for f in self._flops] + list(self._gates)

    def iter_gates(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def fanout_map(self) -> Dict[str, List[Tuple[str, int]]]:
        """Map each net to the (consumer, pin-index) pairs reading it.

        Flip-flop D connections are reported with the flop's ``q`` name as
        the consumer and pin index 0.  Primary outputs are not consumers.
        """
        fan: Dict[str, List[Tuple[str, int]]] = {s: [] for s in self.signals()}
        for gate in self._gates.values():
            for pin, src in enumerate(gate.inputs):
                fan.setdefault(src, []).append((gate.output, pin))
        for flop in self._flops:
            fan.setdefault(flop.d, []).append((flop.q, 0))
        return fan

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Structural deep copy (gates/flops are immutable, lists rebuilt)."""
        out = Circuit(name or self.name)
        out._inputs = list(self._inputs)
        out._outputs = list(self._outputs)
        out._gates = dict(self._gates)
        out._flops = list(self._flops)
        out._flop_by_q = dict(self._flop_by_q)
        return out

    def reorder_scan_chain(self, order: List[str]) -> "Circuit":
        """Return a copy with the scan chain reordered to ``order``.

        ``order`` must be a permutation of the current state variables.
        """
        if sorted(order) != sorted(self.state_vars):
            raise ValueError("scan order must be a permutation of state vars")
        out = self.copy()
        out._flops = [self._flop_by_q[q] for q in order]
        out._flop_by_q = {f.q: f for f in out._flops}
        return out

    def structurally_equal(self, other: "Circuit") -> bool:
        """True if both circuits have identical structure.

        Compares interface order (PIs, POs), scan-chain order (flops,
        including D connections), and the gate map (type + ordered
        inputs per output).  Names are compared exactly; the circuit
        ``name`` itself is ignored.  This is the round-trip oracle's
        definition of "the same circuit".
        """
        return (
            self._inputs == other._inputs
            and self._outputs == other._outputs
            and self._flops == other._flops
            and self._gates == other._gates
        )

    def to_arrays(self) -> "NetlistArrays":
        """Lower to the struct-of-arrays form (see :class:`NetlistArrays`).

        Raises ``KeyError`` if a gate fan-in, flop D pin, or primary
        output references an undriven net -- the array form indexes nets
        by driver, so every referenced net must have one.
        """
        names = self.signals()
        index = {name: i for i, name in enumerate(names)}
        n_gates = len(self._gates)
        gate_type = np.empty(n_gates, dtype=np.int32)
        fanin_offset = np.zeros(n_gates + 1, dtype=np.int32)
        fanin_flat: List[int] = []
        try:
            for i, gate in enumerate(self._gates.values()):
                gate_type[i] = GATE_CODE[gate.gtype]
                for src in gate.inputs:
                    fanin_flat.append(index[src])
                fanin_offset[i + 1] = len(fanin_flat)
            flop_d = np.array(
                [index[f.d] for f in self._flops], dtype=np.int32
            )
            po = np.array([index[o] for o in self._outputs], dtype=np.int32)
        except KeyError as exc:
            raise KeyError(f"undriven net referenced: {exc.args[0]}") from None
        return NetlistArrays(
            name=self.name,
            names=names,
            n_pi=len(self._inputs),
            n_ff=len(self._flops),
            gate_type=gate_type,
            fanin_offset=fanin_offset,
            fanin=np.array(fanin_flat, dtype=np.int32),
            flop_d=flop_d,
            po=po,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit({self.name!r}, pi={self.num_inputs}, po={self.num_outputs},"
            f" ff={self.num_state_vars}, gates={self.num_gates})"
        )


@dataclass
class NetlistArrays:
    """Struct-of-arrays netlist: the 100k-gate-capacity compiled form.

    Nets are indexed ``0 .. n_nets-1`` in :meth:`Circuit.signals` order:
    primary inputs, then flop outputs (scan order), then gate outputs in
    insertion order -- so gate ``i`` drives net ``n_pi + n_ff + i``.  All
    arrays are ``int32``: at 100k gates the whole structure is a few
    megabytes and ships through pickle/shared memory as flat buffers with
    no per-gate object overhead.

    Attributes:
        name: circuit name (not part of structural identity).
        names: net index -> net name.
        n_pi: number of primary inputs.
        n_ff: number of flip-flops.
        gate_type: ``int32[n_gates]`` :data:`~repro.circuit.library.GATE_CODE`
            per gate.
        fanin_offset: ``int32[n_gates + 1]`` CSR offsets into ``fanin``.
        fanin: ``int32[sum(arity)]`` net index of each gate input pin.
        flop_d: ``int32[n_ff]`` net index of each flop's D pin, scan order.
        po: ``int32[n_po]`` net index of each primary output.
    """

    name: str
    names: List[str]
    n_pi: int
    n_ff: int
    gate_type: np.ndarray
    fanin_offset: np.ndarray
    fanin: np.ndarray
    flop_d: np.ndarray
    po: np.ndarray

    @property
    def n_nets(self) -> int:
        return len(self.names)

    @property
    def n_gates(self) -> int:
        return len(self.gate_type)

    @property
    def n_po(self) -> int:
        return len(self.po)

    @property
    def first_gate(self) -> int:
        """Net index of gate 0's output (``n_pi + n_ff``)."""
        return self.n_pi + self.n_ff

    def gate_fanin(self, i: int) -> np.ndarray:
        """Net indices of gate ``i``'s input pins."""
        return self.fanin[self.fanin_offset[i] : self.fanin_offset[i + 1]]

    def gather_fanin(
        self, gates: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flattened fan-in segments for a subset of gates.

        The workhorse of the levelized analysis sweeps (COP, support
        bitsets): gathers the CSR rows of ``gates`` into one contiguous
        run so a whole level reduces with a single ``ufunc.reduceat``.

        Returns ``(edges, counts, seg_offset, edge_pos)``:

        - ``edges``: fan-in net index of every pin, segments concatenated
          in ``gates`` order;
        - ``counts``: pins per gate (``int64[len(gates)]``);
        - ``seg_offset``: exclusive prefix sum of ``counts``
          (``int64[len(gates) + 1]``) -- segment ``k`` of ``edges`` is
          ``edges[seg_offset[k]:seg_offset[k + 1]]``;
        - ``edge_pos``: position of each gathered pin in the global
          ``fanin`` array, for per-edge results aligned with ``fanin``.
        """
        gates = np.asarray(gates, dtype=np.int64)
        starts = self.fanin_offset[gates].astype(np.int64)
        counts = self.fanin_offset[gates + 1].astype(np.int64) - starts
        seg_offset = np.zeros(len(gates) + 1, dtype=np.int64)
        np.cumsum(counts, out=seg_offset[1:])
        edge_pos = np.arange(int(seg_offset[-1]), dtype=np.int64) + np.repeat(
            starts - seg_offset[:-1], counts
        )
        return self.fanin[edge_pos], counts, seg_offset, edge_pos


def circuit_from_arrays(arrays: NetlistArrays) -> Circuit:
    """Rebuild the object-form :class:`Circuit` from its array form.

    Inverse of :meth:`Circuit.to_arrays`: the result is
    ``structurally_equal`` to the original (and carries its name).
    """
    circuit = Circuit(arrays.name)
    names = arrays.names
    for i in range(arrays.n_pi):
        circuit.add_input(names[i])
    for o in arrays.po:
        circuit.add_output(names[o])
    for k in range(arrays.n_ff):
        circuit.add_flop(names[arrays.n_pi + k], names[arrays.flop_d[k]])
    first_gate = arrays.n_pi + arrays.n_ff
    for i in range(arrays.n_gates):
        circuit.add_gate(
            names[first_gate + i],
            CODE_GATE[arrays.gate_type[i]],
            (names[s] for s in arrays.gate_fanin(i)),
        )
    return circuit
