"""Combinational ATPG (PODEM) and fault detectability classification.

With full scan, a stuck-at fault is detectable if and only if it is
detectable in the combinational expansion of the circuit (primary inputs
and flop outputs controllable, primary outputs and flop D nets
observable).  Procedure 2's "100% fault coverage" target therefore means
*all faults PODEM proves detectable*; the remainder are redundant.

- :mod:`repro.atpg.podem` -- the PODEM test generator,
- :mod:`repro.atpg.classify` -- random-phase + PODEM classification
  pipeline producing the detectable/undetectable/aborted partition.
"""

from repro.atpg.podem import Podem, PodemResult, PodemStatus
from repro.atpg.classify import Classification, classify_faults

__all__ = [
    "Podem",
    "PodemResult",
    "PodemStatus",
    "Classification",
    "classify_faults",
]
