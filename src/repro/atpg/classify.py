"""Fault detectability classification.

Two phases, the standard recipe:

1. **Random phase** -- a batch of random full-scan patterns simulated with
   PPSFP knocks out the easily detectable majority cheaply.
2. **Deterministic phase** -- PODEM targets each remaining fault and
   either produces a test (detectable), proves redundancy
   (undetectable), or gives up at the backtrack limit (aborted).

The paper's Procedure 2 terminates at "100% fault coverage", which for
every benchmark it reports means *all detectable faults*; this module
supplies that target set.  Aborted faults are conservatively treated as
detectable by callers that want a guaranteed-sound target (they may then
fail to reach 100%, which is reported, never hidden).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault, FaultGraph
from repro.faults.ppsfp import CombinationalFaultSimulator, pack_patterns
from repro.atpg.podem import Podem, PodemStatus


@dataclass
class Classification:
    """Partition of a fault list by detectability."""

    detectable: List[Fault] = field(default_factory=list)
    undetectable: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)
    #: PODEM-found tests for deterministic-phase faults (debug/validation).
    tests: Dict[Fault, Dict[str, List[int]]] = field(default_factory=dict)

    @property
    def target_faults(self) -> List[Fault]:
        """The faults Procedure 2 must detect for "100% fault coverage"."""
        return list(self.detectable)

    @property
    def num_total(self) -> int:
        return len(self.detectable) + len(self.undetectable) + len(self.aborted)

    def summary(self) -> str:
        return (
            f"{self.num_total} faults: {len(self.detectable)} detectable, "
            f"{len(self.undetectable)} undetectable, {len(self.aborted)} aborted"
        )


def classify_faults(
    circuit_or_graph: Union[Circuit, FaultGraph],
    faults: Optional[Sequence[Fault]] = None,
    random_patterns: int = 512,
    seed: int = 20010618,
    backtrack_limit: int = 5000,
) -> Classification:
    """Classify ``faults`` (default: the collapsed universe).

    The random-phase pattern count and seed are part of the reproducible
    configuration: the same arguments always produce the same partition.
    """
    if isinstance(circuit_or_graph, FaultGraph):
        graph = circuit_or_graph
    else:
        graph = FaultGraph(circuit_or_graph)
    if faults is None:
        faults = collapse_faults(graph.circuit)

    result = Classification()
    remaining = list(faults)

    if random_patterns > 0 and remaining:
        sim = CombinationalFaultSimulator(graph)
        rng = np.random.Generator(np.random.PCG64(seed))
        patterns = rng.integers(
            0, 2, size=(random_patterns, sim.num_inputs), dtype=np.uint8
        )
        words = pack_patterns(patterns)
        n_words = words.shape[1]
        valid = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF))
        tail = random_patterns % 64
        if tail:
            valid[-1] = np.uint64((1 << tail) - 1)
        easy = set(sim.detected(words, remaining, valid_mask=valid))
        result.detectable.extend(f for f in remaining if f in easy)
        remaining = [f for f in remaining if f not in easy]

    podem = Podem(graph, backtrack_limit=backtrack_limit)
    sim = CombinationalFaultSimulator(graph)
    queue = list(remaining)
    while queue:
        fault = queue.pop(0)
        res = podem.run(fault)
        if res.status is PodemStatus.DETECTED:
            result.detectable.append(fault)
            result.tests[fault] = {"pi": res.pi_bits, "si": res.si_bits}
            if queue:
                # Cross-simulate the found test against the rest of the
                # queue: one PODEM test typically detects many faults,
                # which collapses the deterministic phase.
                pattern = np.array(
                    [res.pi_bits + res.si_bits], dtype=np.uint8
                )
                words = pack_patterns(pattern)
                valid = np.array([1], dtype=np.uint64)
                also = set(sim.detected(words, queue, valid_mask=valid))
                if also:
                    result.detectable.extend(f for f in queue if f in also)
                    queue = [f for f in queue if f not in also]
        elif res.status is PodemStatus.UNDETECTABLE:
            result.undetectable.append(fault)
        else:
            result.aborted.append(fault)
    return result
