"""SCOAP testability measures (Goldstein's controllability/observability).

Classic topological testability analysis over the full-scan combinational
expansion:

- ``CC0(n)`` / ``CC1(n)``: cost of setting net ``n`` to 0 / 1 from the
  controllable inputs (primary inputs and flop outputs are cost 1),
- ``CO(n)``: cost of observing ``n`` at an observation point (primary
  outputs and flop D nets are cost 0).

Uses: PODEM's backtrace picks the cheapest input (fewer backtracks), the
synthetic-benchmark profiler reports how random-pattern-resistant a
circuit is, and experiments can rank faults by expected detection
difficulty (``CC{v'}(site) + CO(site)`` for a stuck-at-v fault).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.levelize import Levelization, levelize
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, FaultGraph

#: Cost representing "not achievable" (kept finite to avoid overflow).
INFINITY = 10**9


@dataclass
class ScoapResult:
    """Testability measures per net of the analyzed circuit."""

    cc0: Dict[str, int]
    cc1: Dict[str, int]
    co: Dict[str, int]

    def controllability(self, net: str, value: int) -> int:
        return self.cc1[net] if value else self.cc0[net]

    def fault_difficulty(self, fault: Fault) -> int:
        """SCOAP detection-difficulty estimate for a stuck-at fault:
        cost of driving the site to the opposite value + observing it."""
        activation = self.controllability(fault.site, 1 - fault.value)
        return activation + self.co[fault.site]

    def hardest_faults(self, faults: List[Fault], k: int = 10) -> List[Fault]:
        return sorted(
            faults, key=lambda f: -min(self.fault_difficulty(f), INFINITY)
        )[:k]


def _combine(
    gtype: GateType, in0: Tuple[int, int], in1: Optional[Tuple[int, int]]
) -> Tuple[int, int]:
    """(cc0, cc1) of a 1- or 2-input gate from its inputs' (cc0, cc1)."""
    base = gtype.base
    if base is GateType.CONST0:
        out = (0, INFINITY)
    elif base is GateType.CONST1:
        out = (INFINITY, 0)
    elif base is GateType.BUF:
        out = (in0[0] + 1, in0[1] + 1)
    elif base is GateType.AND:
        # 0: cheapest single 0; 1: all inputs 1.
        out = (
            min(in0[0], in1[0]) + 1,
            min(in0[1] + in1[1] + 1, INFINITY),
        )
    elif base is GateType.OR:
        out = (
            min(in0[0] + in1[0] + 1, INFINITY),
            min(in0[1], in1[1]) + 1,
        )
    else:  # XOR
        out = (
            min(in0[0] + in1[0], in0[1] + in1[1]) + 1,
            min(in0[0] + in1[1], in0[1] + in1[0]) + 1,
        )
    if gtype.is_inverting:
        out = (out[1], out[0])
    return (min(out[0], INFINITY), min(out[1], INFINITY))


def compute_scoap(
    circuit: Circuit, levelization: Optional[Levelization] = None
) -> ScoapResult:
    """SCOAP over the full-scan combinational expansion of ``circuit``.

    Gates with more than two inputs are handled by folding inputs left to
    right (equivalent to analysing the two-input decomposition).  Pass a
    precomputed ``levelization`` to skip re-levelizing (the lint
    :class:`~repro.analysis.rules.AnalysisContext` shares one).

    SCOAP costs are integer *effort* estimates (how many pin assignments
    a deterministic ATPG needs); for random-pattern *probability*
    estimates over the same netlist see the vectorized COP engine in
    :mod:`repro.analysis.cop`.
    """
    lev = levelization if levelization is not None else levelize(circuit)
    cc0: Dict[str, int] = {}
    cc1: Dict[str, int] = {}
    for net in circuit.inputs + circuit.state_vars:
        cc0[net] = 1
        cc1[net] = 1

    for gate in lev.order:
        ins = [(cc0[s], cc1[s]) for s in gate.inputs]
        if not ins:
            pair = _combine(gate.gtype, (0, 0), None)
        elif len(ins) == 1:
            pair = _combine(gate.gtype, ins[0], None)
        else:
            base = gate.gtype.base
            acc = ins[0]
            for nxt in ins[1:-1]:
                # Fold with the non-inverting base; invert only at the end.
                folder = {
                    GateType.AND: GateType.AND,
                    GateType.OR: GateType.OR,
                    GateType.XOR: GateType.XOR,
                    GateType.BUF: GateType.BUF,
                    GateType.CONST0: GateType.CONST0,
                    GateType.CONST1: GateType.CONST1,
                }[base]
                acc = _combine(folder, acc, nxt)
            pair = _combine(gate.gtype, acc, ins[-1])
        cc0[gate.output], cc1[gate.output] = pair

    # Observability: backward pass in reverse level order.
    co: Dict[str, int] = {net: INFINITY for net in circuit.signals()}
    for net in circuit.outputs:
        co[net] = 0
    for flop in circuit.flops:
        co[flop.d] = min(co[flop.d], 0)  # scanned out -> observable

    for gate in reversed(lev.order):
        out_co = co[gate.output]
        if out_co >= INFINITY:
            continue
        base = gate.gtype.base
        for i, src in enumerate(gate.inputs):
            if base is GateType.AND:
                others = sum(cc1[s] for j, s in enumerate(gate.inputs) if j != i)
            elif base is GateType.OR:
                others = sum(cc0[s] for j, s in enumerate(gate.inputs) if j != i)
            elif base is GateType.XOR:
                others = sum(
                    min(cc0[s], cc1[s])
                    for j, s in enumerate(gate.inputs)
                    if j != i
                )
            else:  # BUF/NOT/CONST
                others = 0
            cost = min(out_co + others + 1, INFINITY)
            if cost < co[src]:
                co[src] = cost

    return ScoapResult(cc0=cc0, cc1=cc1, co=co)


def testability_profile(circuit: Circuit, percentiles=(50, 90, 99)) -> Dict[str, float]:
    """Summary statistics of SCOAP difficulty over the collapsed faults.

    Used to compare synthetic stand-ins against expectations: a healthy
    benchmark has a long difficulty tail (random-pattern-resistant
    faults) but few unreachable nets.
    """
    import numpy as np

    from repro.faults.collapse import collapse_faults

    scoap = compute_scoap(circuit)
    difficulties = [
        min(scoap.fault_difficulty(f), INFINITY)
        for f in collapse_faults(circuit)
    ]
    arr = np.asarray(difficulties, dtype=float)
    reachable = arr[arr < INFINITY]
    profile = {
        "num_faults": float(len(arr)),
        "unreachable_fraction": float((arr >= INFINITY).mean()),
    }
    for p in percentiles:
        profile[f"p{p}"] = float(np.percentile(reachable, p)) if len(reachable) else 0.0
    return profile
