"""Deterministic test generation (ATPG flow).

Produces a compact deterministic full-scan test set: random phase, then
PODEM for the random-resistant faults, each new test fault-simulated
against the remaining targets, and finally reverse-order compaction.
This is the "deterministic test set ... of primary input sequences of
length one" world of the paper's references [7]-[11], used by
:mod:`repro.core.scan_overlap` to reproduce their limited-scan
test-application-time reduction -- the technique the paper repurposes
for fault coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault, FaultGraph
from repro.atpg.podem import Podem, PodemStatus
from repro.rpg.prng import make_source


@dataclass
class DeterministicTestSet:
    """A set of single-vector full-scan tests with known coverage."""

    tests: List[ScanTest]
    covered: List[Fault]
    undetectable: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.tests)

    def full_scan_cycles(self, n_sv: int) -> int:
        """TAT with complete scan per test (overlapped in/out)."""
        return (self.size + 1) * n_sv + self.size

    def coverage(self) -> float:
        total = len(self.covered) + len(self.aborted)
        return len(self.covered) / total if total else 1.0


def generate_deterministic_tests(
    circuit_or_graph: Union[Circuit, FaultGraph],
    faults: Optional[Sequence[Fault]] = None,
    random_patterns: int = 256,
    seed: int = 20010618,
    backtrack_limit: int = 1000,
    compact: bool = True,
) -> DeterministicTestSet:
    """The standard ATPG loop with fault dropping and compaction."""
    if isinstance(circuit_or_graph, FaultGraph):
        graph = circuit_or_graph
    else:
        graph = FaultGraph(circuit_or_graph)
    circuit = graph.circuit
    if faults is None:
        faults = collapse_faults(circuit)
    simulator = FaultSimulator(graph)
    n_sv = circuit.num_state_vars
    n_pi = circuit.num_inputs

    tests: List[ScanTest] = []
    covered: List[Fault] = []
    remaining = list(faults)

    # Random phase: batches of random tests, keep only useful ones.
    source = make_source(seed)
    while random_patterns > 0 and remaining:
        batch = [
            ScanTest(si=source.bits(n_sv), vectors=[source.bits(n_pi)])
            for _ in range(min(64, random_patterns))
        ]
        random_patterns -= len(batch)
        for test in batch:
            hits = simulator.simulate_grouped([test], remaining)
            if hits:
                tests.append(test)
                covered.extend(hits)
                remaining = [f for f in remaining if f not in hits]
            if not remaining:
                break

    # Deterministic phase.
    podem = Podem(graph, backtrack_limit=backtrack_limit)
    undetectable: List[Fault] = []
    aborted: List[Fault] = []
    while remaining:
        fault = remaining.pop(0)
        res = podem.run(fault)
        if res.status is PodemStatus.UNDETECTABLE:
            undetectable.append(fault)
            continue
        if res.status is PodemStatus.ABORTED:
            aborted.append(fault)
            continue
        test = ScanTest(si=res.si_bits, vectors=[res.pi_bits])
        hits = simulator.simulate_grouped([test], [fault] + remaining)
        tests.append(test)
        covered.extend(hits)
        remaining = [f for f in remaining if f not in hits]

    if compact and tests:
        tests = _reverse_order_compaction(simulator, tests, covered)

    return DeterministicTestSet(
        tests=tests,
        covered=covered,
        undetectable=undetectable,
        aborted=aborted,
    )


def _reverse_order_compaction(
    simulator: FaultSimulator,
    tests: List[ScanTest],
    covered: Sequence[Fault],
) -> List[ScanTest]:
    """Classical reverse-order pass: later tests (generated for hard
    faults) often cover the early random tests' contributions."""
    kept: List[ScanTest] = []
    remaining = list(covered)
    for test in reversed(tests):
        if not remaining:
            break
        hits = simulator.simulate_grouped([test], remaining)
        if hits:
            kept.append(test)
            remaining = [f for f in remaining if f not in hits]
    kept.reverse()
    if remaining:
        # Safety net: coverage must be preserved exactly.
        kept = list(tests)
    return kept
