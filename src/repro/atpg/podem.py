"""PODEM test generation over the full-scan combinational expansion.

A textbook PODEM: decisions are made only on the controllable inputs
(primary inputs and flop outputs), each decision is followed by a full
three-valued forward simulation of the good and faulty machines, and the
search backtracks on (a) failure to activate the fault, (b) an empty
D-frontier with the fault activated, or (c) no X-path from the D-frontier
to an observation point.  The search is complete: if it exhausts the
decision tree without hitting the backtrack limit, the fault is proved
undetectable (redundant under full scan).

Values are three-valued per machine: 0, 1, X (encoded 0/1/2).  A signal
carries a fault effect when both machines are definite and differ.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.levelize import levelize
from repro.circuit.library import GateType
from repro.faults.model import Fault, FaultGraph

X = 2  # the unknown value


def _and3(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    if a == 1 and b == 1:
        return 1
    return X


def _or3(a: int, b: int) -> int:
    if a == 1 or b == 1:
        return 1
    if a == 0 and b == 0:
        return 0
    return X


def _xor3(a: int, b: int) -> int:
    if a == X or b == X:
        return X
    return a ^ b


def _not3(a: int) -> int:
    return a if a == X else a ^ 1


def eval3(gtype: GateType, ins: Sequence[int]) -> int:
    """Three-valued gate evaluation (arity 0..2)."""
    base = gtype.base
    if base is GateType.CONST0:
        out = 0
    elif base is GateType.CONST1:
        out = 1
    elif base is GateType.BUF:
        out = ins[0]
    elif base is GateType.AND:
        out = _and3(ins[0], ins[1])
    elif base is GateType.OR:
        out = _or3(ins[0], ins[1])
    else:
        out = _xor3(ins[0], ins[1])
    if gtype.is_inverting:
        out = _not3(out)
    return out


class PodemStatus(enum.Enum):
    DETECTED = "detected"
    UNDETECTABLE = "undetectable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    status: PodemStatus
    fault: Fault
    #: input assignment (PI bits then state bits, scan order); X positions
    #: were never needed and may be filled arbitrarily.  None unless
    #: DETECTED.
    pi_bits: Optional[List[int]] = None
    si_bits: Optional[List[int]] = None
    backtracks: int = 0


class Podem:
    """PODEM engine bound to one :class:`FaultGraph`."""

    def __init__(self, graph: FaultGraph, backtrack_limit: int = 5000) -> None:
        self.graph = graph
        self.backtrack_limit = backtrack_limit
        model = graph.model
        circuit = graph.sim_circuit

        self.n = model.n_signals
        idx = model.signal_index
        # driver structure: for input signals gtype None.
        self._gtype: List[Optional[GateType]] = [None] * self.n
        self._gins: List[Tuple[int, ...]] = [()] * self.n
        for gate in circuit.iter_gates():
            gi = idx[gate.output]
            self._gtype[gi] = gate.gtype
            self._gins[gi] = tuple(idx[s] for s in gate.inputs)

        self._order = [
            idx[g.output] for level in levelize(circuit).levels for g in level
        ]
        self._fanout: List[List[int]] = [[] for _ in range(self.n)]
        for gi in self._order:
            for si in self._gins[gi]:
                self._fanout[si].append(gi)

        self._inputs: List[int] = list(model.pi_idx) + list(model.q_idx)
        self._input_pos: Dict[int, int] = {s: i for i, s in enumerate(self._inputs)}
        self._obs = set(int(i) for i in model.po_idx) | set(
            int(i) for i in model.d_idx
        )
        self._n_pi = len(model.pi_idx)

        # Static observability distance (levels to the nearest observation
        # point, moving forward); guides D-frontier selection.
        self._obs_dist = self._compute_obs_distance()

        # SCOAP controllabilities guide backtrace toward cheap inputs.
        from repro.atpg.scoap import compute_scoap

        scoap = compute_scoap(circuit)
        self._cc0 = [scoap.cc0.get(n, 1) for n in model.signal_names]
        self._cc1 = [scoap.cc1.get(n, 1) for n in model.signal_names]

    def _compute_obs_distance(self) -> List[int]:
        INF = 10**9
        dist = [INF] * self.n
        for s in self._obs:
            dist[s] = 0
        for gi in reversed(self._order):
            d_out = dist[gi]
            if d_out == INF:
                continue
            for si in self._gins[gi]:
                dist[si] = min(dist[si], d_out + 1)
        return dist

    # ------------------------------------------------------------------
    def run(self, fault: Fault) -> PodemResult:
        """Attempt to generate a full-scan test for ``fault``."""
        site = self.graph.signal_of(fault)
        stuck = fault.value
        asn: List[int] = [X] * len(self._inputs)
        good = [X] * self.n
        faulty = [X] * self.n

        def simulate_full() -> None:
            # Input-site faults must be forced before any gate evaluates.
            for i, s in enumerate(self._inputs):
                good[s] = asn[i]
                faulty[s] = asn[i]
            if self._gtype[site] is None:
                faulty[site] = stuck
            for gi in self._order:
                gt = self._gtype[gi]
                ins = self._gins[gi]
                good[gi] = eval3(gt, [good[s] for s in ins])
                fv = eval3(gt, [faulty[s] for s in ins])
                faulty[gi] = stuck if gi == site else fv

        def detected() -> bool:
            for s in self._obs:
                if good[s] != X and faulty[s] != X and good[s] != faulty[s]:
                    return True
            return False

        def d_frontier() -> List[int]:
            frontier = []
            for gi in self._order:
                if good[gi] != X and faulty[gi] != X:
                    continue
                for si in self._gins[gi]:
                    if (
                        good[si] != X
                        and faulty[si] != X
                        and good[si] != faulty[si]
                    ):
                        frontier.append(gi)
                        break
            return frontier

        def x_path_exists(frontier: List[int]) -> bool:
            # BFS forward from frontier gates through X-valued signals.
            stack = list(frontier)
            seen = set(stack)
            while stack:
                s = stack.pop()
                if s in self._obs and (good[s] == X or faulty[s] == X):
                    return True
                for t in self._fanout[s]:
                    if t in seen:
                        continue
                    if good[t] == X or faulty[t] == X:
                        seen.add(t)
                        stack.append(t)
            return False

        def objective() -> Optional[Tuple[int, int]]:
            # Activation first.
            if good[site] == X:
                return (site, 1 - stuck)
            if good[site] == stuck:
                return None  # cannot activate under current assignment
            frontier = d_frontier()
            if not frontier:
                return None
            if not x_path_exists(frontier):
                return None
            # Backtrace works on the good machine, so the objective input
            # must be X there.  (An input can be X only in the faulty
            # machine -- e.g. good sees a controlling value where faulty
            # sees D -- in which case fall through to a free choice.)
            for gate in sorted(frontier, key=lambda gi: self._obs_dist[gi]):
                gt = self._gtype[gate]
                ctrl = gt.controlling_value
                want = 1 - ctrl if ctrl is not None else 0
                for si in self._gins[gate]:
                    if good[si] == X:
                        return (si, want)
            # Free choice: bind any unassigned input.  Completeness is
            # preserved (the decision stack explores both values) and the
            # frontier/X-path pruning above keeps the search sound.
            for i, s in enumerate(self._inputs):
                if asn[i] == X:
                    return (s, 0)
            return None

        def backtrace(net: int, val: int) -> Tuple[int, int]:
            while net not in self._input_pos:
                gt = self._gtype[net]
                ins = self._gins[net]
                val = val ^ gt.inversion_parity
                base = gt.base
                if base is GateType.BUF:
                    net = ins[0]
                    continue
                x_ins = [s for s in ins if good[s] == X]
                if not x_ins:  # pragma: no cover - objective guarantees an X
                    raise AssertionError("backtrace hit a fully-assigned gate")

                def cost(sig: int) -> int:
                    return self._cc1[sig] if val else self._cc0[sig]

                if base is GateType.AND or base is GateType.OR:
                    controlling = 0 if base is GateType.AND else 1
                    if val == controlling:
                        # One input suffices: take the easiest to control.
                        net = min(x_ins, key=cost)
                    else:
                        # All inputs needed: attack the hardest first (the
                        # classic SCOAP heuristic -- fail fast).
                        net = max(x_ins, key=cost)
                else:  # XOR family: account for the definite sibling
                    net = x_ins[0]
                    sibling = [s for s in ins if s != net]
                    if sibling and good[sibling[0]] != X:
                        val = val ^ good[sibling[0]]
            return (self._input_pos[net], val)

        # ------------------------------------------------------------------
        # Decision stack: (input position, value, already_flipped)
        stack: List[Tuple[int, int, bool]] = []
        backtracks = 0
        simulate_full()
        while True:
            if detected():
                return self._result_detected(fault, asn, backtracks)
            obj = objective()
            if obj is not None:
                pos, val = backtrace(*obj)
                stack.append((pos, val, False))
                asn[pos] = val
                simulate_full()
                continue
            # Dead end: flip the most recent unflipped decision.
            while stack:
                pos, val, flipped = stack.pop()
                if not flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemResult(
                            status=PodemStatus.ABORTED,
                            fault=fault,
                            backtracks=backtracks,
                        )
                    stack.append((pos, val ^ 1, True))
                    asn[pos] = val ^ 1
                    simulate_full()
                    break
                asn[pos] = X
            else:
                return PodemResult(
                    status=PodemStatus.UNDETECTABLE,
                    fault=fault,
                    backtracks=backtracks,
                )

    def _result_detected(
        self, fault: Fault, asn: List[int], backtracks: int
    ) -> PodemResult:
        filled = [v if v != X else 0 for v in asn]
        return PodemResult(
            status=PodemStatus.DETECTED,
            fault=fault,
            pi_bits=filled[: self._n_pi],
            si_bits=filled[self._n_pi :],
            backtracks=backtracks,
        )
