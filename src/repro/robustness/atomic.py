"""Atomic file writes: a result file is either absent or complete.

A killed experiment batch must never leave a truncated ``table6.json``
or ``all_experiments.txt`` behind -- a half-written JSON file is worse
than none, because downstream tooling trusts it.  Every writer routes
through :func:`atomic_write_text`: write to a sibling temporary file,
flush, ``fsync``, then ``os.replace`` onto the destination (atomic on
POSIX when source and destination share a filesystem, which a sibling
always does).

A crash between the write and the replace leaves only a stray
``*.tmp`` file next to the destination; the destination itself is never
observed in a partial state.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` so readers see the old or new content,
    never a prefix of the new one."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding=encoding) as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Binary counterpart of :func:`atomic_write_text` (same guarantee)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def atomic_write_json(
    path: Union[str, Path],
    obj: Any,
    indent: int = 2,
    sort_keys: bool = False,
) -> None:
    """Serialize ``obj`` as JSON and write it atomically."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )
