"""Atomic file writes: a result file is either absent or complete.

A killed experiment batch must never leave a truncated ``table6.json``
or ``all_experiments.txt`` behind -- a half-written JSON file is worse
than none, because downstream tooling trusts it.  Every writer routes
through :func:`atomic_write_text`: write to a sibling temporary file,
flush, ``fsync``, then ``os.replace`` onto the destination (atomic on
POSIX when source and destination share a filesystem, which a sibling
always does).

The temporary name is unique per writer (``tempfile.mkstemp``), not a
fixed ``path + ".tmp"``: with a fixed name, two processes writing the
same destination concurrently -- the normal cold-start case for the
machine-shared compile cache -- overwrite each other's temp file, and
whichever calls ``os.replace`` second dies with ``FileNotFoundError``.
A crash between the write and the replace leaves only a stray
``*.tmp`` file next to the destination; the destination itself is never
observed in a partial state.

``os.replace`` alone makes the *content* durable but not the *name*:
the rename lives in the parent directory, and on POSIX a directory
entry is only guaranteed on stable storage after the directory itself
is fsynced.  Without it, a power loss shortly after a "committed"
atomic write can bring the filesystem back with the old name mapping --
the write is silently lost even though the writer returned.  Every
replace is therefore followed by :func:`fsync_dir` on the parent.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush a directory's entry table to stable storage (POSIX).

    Best-effort: platforms or filesystems that cannot fsync a directory
    fd (or open one at all) are skipped silently -- the write itself is
    already durable, only the rename's crash-durability degrades to the
    filesystem's own ordering guarantees.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` so readers see the old or new content,
    never a prefix of the new one."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Binary counterpart of :func:`atomic_write_text` (same guarantee).

    Safe under concurrent writers to the same destination: each gets a
    private temp file, and the last ``os.replace`` wins wholesale.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            # mkstemp creates 0600; restore the permissions a plain
            # open() would have given, so shared caches stay readable.
            umask = os.umask(0)
            os.umask(umask)
            os.fchmod(fh.fileno(), 0o666 & ~umask)
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # The rename is an entry in the parent directory; make it
        # durable too, or a crash can forget a "committed" write.
        fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: Union[str, Path],
    obj: Any,
    indent: int = 2,
    sort_keys: bool = False,
) -> None:
    """Serialize ``obj`` as JSON and write it atomically."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )
