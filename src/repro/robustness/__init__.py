"""Crash-safety layer: checkpoints, degradation reports, fault injection.

Three pieces, built on one property of the scheme: every test set is a
pure function of :class:`~repro.core.config.BistConfig` and the
iteration number, so any interrupted computation is replayable from a
small amount of journaled state.

- :mod:`repro.robustness.checkpoint` -- the Procedure 2 journal
  (:class:`CheckpointPolicy`, :func:`load_checkpoint`); the entry points
  that use it are :func:`repro.core.procedure2.run_procedure2`
  (``checkpoint=``) and :func:`repro.core.procedure2.resume_procedure2`.
- :mod:`repro.robustness.degradation` -- structured
  :class:`DegradationReport` of every worker-pool recovery action.
- :mod:`repro.robustness.chaos` -- deterministic injection of worker
  crashes, hangs, and corrupted shard returns, so the recovery paths are
  exercised by ordinary tests.
- :mod:`repro.robustness.atomic` -- atomic file writes for results,
  manifests, and journal headers.
"""

from repro.robustness.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
)
from repro.robustness.chaos import (
    ChaosError,
    ChaosPlan,
    ServeChaosPlan,
    execute_injected,
    install_commit_bomb,
    truncate_tail,
)
from repro.robustness.checkpoint import (
    JOURNAL_VERSION,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointPolicy,
    CheckpointState,
    CheckpointWriter,
    fingerprint_faults,
    load_checkpoint,
)
from repro.robustness.degradation import DegradationReport, ShardEvent

__all__ = [
    "JOURNAL_VERSION",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointPolicy",
    "CheckpointState",
    "CheckpointWriter",
    "ChaosError",
    "ChaosPlan",
    "DegradationReport",
    "ServeChaosPlan",
    "ShardEvent",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "execute_injected",
    "fingerprint_faults",
    "fsync_dir",
    "install_commit_bomb",
    "load_checkpoint",
    "truncate_tail",
]
