"""Deterministic fault injection for the worker-pool recovery paths.

Testing crash recovery by luck -- run long enough and eventually a
worker dies -- is worthless; every recovery path in
:class:`repro.faults.sharding.ShardedFaultSimulator` must be exercisable
from an ordinary pytest on demand.  A :class:`ChaosPlan` names, purely as
a function of ``(dispatch, shard, attempt)``, which shard tasks should

- **crash** (the worker calls ``os._exit``, indistinguishable from a
  SIGKILL'd or OOM-killed worker),
- **hang** (the worker sleeps past any configured shard timeout),
- **corrupt** (the worker returns a payload that fails shard-result
  validation), or
- **error** (the task raises :class:`ChaosError`).

Because the plan is a pure function of indices, an injected run is as
reproducible as a clean one: the same plan against the same inputs
produces the same :class:`~repro.robustness.degradation.DegradationReport`
and -- since every path recovers -- the same simulation records.

The parent decides *whether* to inject (it knows the attempt number);
the worker merely executes the directive shipped with its task, so no
cross-process state is needed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.faults.fault_sim import DetectionRecord
from repro.faults.model import Fault

#: Injection directives, in precedence order when a shard is named in
#: several sets.
CHAOS_ACTIONS = ("crash", "hang", "corrupt", "error")

#: The obviously-foreign fault a corrupted shard smuggles into its
#: return payload (never a member of any real shard).
CORRUPT_FAULT = Fault(site="__chaos_corrupt__", value=1)


class ChaosError(RuntimeError):
    """The exception an ``error`` injection raises inside the worker."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic schedule of worker-pool failures.

    Attributes:
        crash_shards, hang_shards, corrupt_shards, error_shards: shard
            indices to hit (precedence: crash > hang > corrupt > error).
        dispatches: dispatch indices the plan applies to; ``None`` means
            every dispatch of the run.
        fire_attempts: inject only while ``attempt < fire_attempts``, so
            with the default of 1 a retried shard succeeds -- set it
            large to force retry exhaustion and the serial rescue path.
        hang_seconds: how long a hung worker sleeps.  Pick it well above
            the recovery policy's ``shard_timeout``; the parent kills the
            pool long before the sleep finishes.
    """

    crash_shards: Tuple[int, ...] = ()
    hang_shards: Tuple[int, ...] = ()
    corrupt_shards: Tuple[int, ...] = ()
    error_shards: Tuple[int, ...] = ()
    dispatches: Optional[Tuple[int, ...]] = None
    fire_attempts: int = 1
    hang_seconds: float = 30.0

    def action(
        self, dispatch: int, shard: int, attempt: int
    ) -> Optional[str]:
        """The directive for this task, or ``None`` for a clean run."""
        if self.dispatches is not None and dispatch not in self.dispatches:
            return None
        if attempt >= self.fire_attempts:
            return None
        if shard in self.crash_shards:
            return "crash"
        if shard in self.hang_shards:
            return "hang"
        if shard in self.corrupt_shards:
            return "corrupt"
        if shard in self.error_shards:
            return "error"
        return None


def execute_injected(
    action: Optional[str],
    hang_seconds: float,
    compute: Callable[[], Any],
) -> Any:
    """Run ``compute`` under an injection directive (worker side).

    ``crash`` never returns; ``hang`` sleeps then completes normally
    (the parent has long since torn the pool down); ``corrupt`` replaces
    the real payload with one containing a foreign fault; ``error``
    raises :class:`ChaosError`.
    """
    if action == "crash":
        os._exit(17)
    if action == "error":
        raise ChaosError("injected worker failure")
    if action == "hang":
        time.sleep(hang_seconds)
    result = compute()
    if action == "corrupt":
        corrupted: Dict[Fault, DetectionRecord] = {
            CORRUPT_FAULT: DetectionRecord(
                fault=CORRUPT_FAULT, test_index=-1, time_unit=-1, where="chaos"
            )
        }
        return corrupted
    return result
