"""Deterministic fault injection for the worker-pool recovery paths.

Testing crash recovery by luck -- run long enough and eventually a
worker dies -- is worthless; every recovery path in
:class:`repro.faults.sharding.ShardedFaultSimulator` must be exercisable
from an ordinary pytest on demand.  A :class:`ChaosPlan` names, purely as
a function of ``(dispatch, shard, attempt)``, which shard tasks should

- **crash** (the worker calls ``os._exit``, indistinguishable from a
  SIGKILL'd or OOM-killed worker),
- **hang** (the worker sleeps past any configured shard timeout),
- **corrupt** (the worker returns a payload that fails shard-result
  validation), or
- **error** (the task raises :class:`ChaosError`).

Because the plan is a pure function of indices, an injected run is as
reproducible as a clean one: the same plan against the same inputs
produces the same :class:`~repro.robustness.degradation.DegradationReport`
and -- since every path recovers -- the same simulation records.

The parent decides *whether* to inject (it knows the attempt number);
the worker merely executes the directive shipped with its task, so no
cross-process state is needed.

The job service (:mod:`repro.serve`) extends the same philosophy to
whole processes with :class:`ServeChaosPlan`: deterministic job-worker
death after exactly N checkpoint commits (:func:`install_commit_bomb`),
deterministic commit pacing so a test can reliably land a server
SIGKILL mid-job, a server that exits after exactly N submissions, and
journal-tail truncation (:func:`truncate_tail`) emulating a torn write.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.faults.fault_sim import DetectionRecord
from repro.faults.model import Fault

#: Injection directives, in precedence order when a shard is named in
#: several sets.
CHAOS_ACTIONS = ("crash", "hang", "corrupt", "error")

#: The obviously-foreign fault a corrupted shard smuggles into its
#: return payload (never a member of any real shard).
CORRUPT_FAULT = Fault(site="__chaos_corrupt__", value=1)


class ChaosError(RuntimeError):
    """The exception an ``error`` injection raises inside the worker."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic schedule of worker-pool failures.

    Attributes:
        crash_shards, hang_shards, corrupt_shards, error_shards: shard
            indices to hit (precedence: crash > hang > corrupt > error).
        dispatches: dispatch indices the plan applies to; ``None`` means
            every dispatch of the run.
        fire_attempts: inject only while ``attempt < fire_attempts``, so
            with the default of 1 a retried shard succeeds -- set it
            large to force retry exhaustion and the serial rescue path.
        hang_seconds: how long a hung worker sleeps.  Pick it well above
            the recovery policy's ``shard_timeout``; the parent kills the
            pool long before the sleep finishes.
    """

    crash_shards: Tuple[int, ...] = ()
    hang_shards: Tuple[int, ...] = ()
    corrupt_shards: Tuple[int, ...] = ()
    error_shards: Tuple[int, ...] = ()
    dispatches: Optional[Tuple[int, ...]] = None
    fire_attempts: int = 1
    hang_seconds: float = 30.0

    def action(
        self, dispatch: int, shard: int, attempt: int
    ) -> Optional[str]:
        """The directive for this task, or ``None`` for a clean run."""
        if self.dispatches is not None and dispatch not in self.dispatches:
            return None
        if attempt >= self.fire_attempts:
            return None
        if shard in self.crash_shards:
            return "crash"
        if shard in self.hang_shards:
            return "hang"
        if shard in self.corrupt_shards:
            return "corrupt"
        if shard in self.error_shards:
            return "error"
        return None


#: Exit status of a chaos-killed job worker (distinct from the shard
#: workers' 17 so triage can tell the two injection layers apart).
JOB_CHAOS_EXIT = 19

#: Exit status of a chaos-killed server (``exit_after_submits``).
SERVER_CHAOS_EXIT = 23


@dataclass(frozen=True)
class ServeChaosPlan:
    """Deterministic process-level failures for the job service.

    Attributes:
        die_after_commits: the job worker calls ``os._exit`` immediately
            after its Nth committed checkpoint iteration --
            indistinguishable from a SIGKILL'd or OOM-killed worker, but
            landing at an exact, reproducible journal state.
        commit_delay_s: sleep this long after every checkpoint commit.
            Results are unchanged (the delay is outside simulation);
            the pacing gives tests a wide, reliable window to SIGKILL
            the server strictly mid-job.
        exit_after_submits: the *server* calls ``os._exit`` right after
            durably journaling its Nth submission -- the crash window
            where a job is accepted but has never run.
        fire_attempts: like :attr:`ChaosPlan.fire_attempts` -- the
            worker bomb arms only while ``attempt < fire_attempts``, so
            with the default of 1 a retried job survives and recovery
            can be asserted to converge.
    """

    die_after_commits: Optional[int] = None
    commit_delay_s: float = 0.0
    exit_after_submits: Optional[int] = None
    fire_attempts: int = 1

    @property
    def active(self) -> bool:
        return (
            self.die_after_commits is not None
            or self.commit_delay_s > 0
            or self.exit_after_submits is not None
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "die_after_commits": self.die_after_commits,
            "commit_delay_s": self.commit_delay_s,
            "exit_after_submits": self.exit_after_submits,
            "fire_attempts": self.fire_attempts,
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "ServeChaosPlan":
        data = data or {}
        return cls(
            die_after_commits=data.get("die_after_commits"),
            commit_delay_s=float(data.get("commit_delay_s", 0.0) or 0.0),
            exit_after_submits=data.get("exit_after_submits"),
            fire_attempts=int(data.get("fire_attempts", 1) or 1),
        )

    def for_attempt(self, attempt: int) -> Dict[str, Any]:
        """The plan shipped to a job child on its Nth attempt.

        The death bomb disarms once ``attempt >= fire_attempts``; the
        commit pacing stays (it never changes results, and a resumed
        job should remain killable mid-run by the same tests).
        """
        plan = self.to_dict()
        if attempt >= self.fire_attempts:
            plan["die_after_commits"] = None
        return plan


def install_commit_bomb(
    die_after_commits: Optional[int], commit_delay_s: float = 0.0
) -> None:
    """Arm this process's checkpoint writer with deterministic chaos.

    Wraps :meth:`repro.robustness.checkpoint.CheckpointWriter.commit_iteration`
    so the process dies (``os._exit``) *after* the Nth commit reached
    the journal -- the worst honest crash point: the state is durable
    but the caller never hears back.  Optionally sleeps
    ``commit_delay_s`` after every surviving commit.  Process-local and
    meant for short-lived job workers; there is deliberately no
    uninstaller.
    """
    if die_after_commits is None and commit_delay_s <= 0:
        return
    from repro.robustness.checkpoint import CheckpointWriter

    original = CheckpointWriter.commit_iteration
    counter = {"commits": 0}

    def bombed(self, iteration, n_same_fc, pair_records):  # type: ignore[no-untyped-def]
        original(self, iteration, n_same_fc, pair_records)
        counter["commits"] += 1
        if (
            die_after_commits is not None
            and counter["commits"] >= die_after_commits
        ):
            os._exit(JOB_CHAOS_EXIT)
        if commit_delay_s > 0:
            time.sleep(commit_delay_s)

    CheckpointWriter.commit_iteration = bombed  # type: ignore[method-assign]


def truncate_tail(path: Any, nbytes: int) -> int:
    """Chop ``nbytes`` off a file's tail, emulating a torn final write.

    Returns the resulting size.  Truncating to (or past) zero empties
    the file.  This is the injection half of every journal's torn-tail
    contract: readers must treat the missing suffix as an uncommitted
    transaction.
    """
    size = os.path.getsize(path)
    new_size = max(0, size - nbytes)
    with open(path, "rb+") as fh:
        fh.truncate(new_size)
        fh.flush()
        os.fsync(fh.fileno())
    return new_size


def execute_injected(
    action: Optional[str],
    hang_seconds: float,
    compute: Callable[[], Any],
) -> Any:
    """Run ``compute`` under an injection directive (worker side).

    ``crash`` never returns; ``hang`` sleeps then completes normally
    (the parent has long since torn the pool down); ``corrupt`` replaces
    the real payload with one containing a foreign fault; ``error``
    raises :class:`ChaosError`.
    """
    if action == "crash":
        os._exit(17)
    if action == "error":
        raise ChaosError("injected worker failure")
    if action == "hang":
        time.sleep(hang_seconds)
    result = compute()
    if action == "corrupt":
        corrupted: Dict[Fault, DetectionRecord] = {
            CORRUPT_FAULT: DetectionRecord(
                fault=CORRUPT_FAULT, test_index=-1, time_unit=-1, where="chaos"
            )
        }
        return corrupted
    return result
