"""Crash-safe journaling of Procedure 2 runs.

Procedure 2 is the hours-long path: a greedy loop whose only state is
the detected-fault set, the selected ``(I, D1)`` pairs, and the
``(iteration, n_same_fc)`` cursor.  Because the schedule RNG is seeded
by ``I`` (Procedure 1), every iteration is replayable from that state
alone -- so a small journal makes any interrupted run resumable, and
the resumed run is *byte-identical* to an uninterrupted one.

Journal format (version 1): a JSONL file, one record per line.

- ``header`` -- version, circuit name, the result-affecting config
  (:meth:`BistConfig.to_dict`), ``n_sv``, the target-fault count and a
  SHA-256 fingerprint of the target list.  Written once, atomically,
  when the journal is created.
- ``ts0`` -- the detection records of the initial test set, as
  ``[fault_index, test_index, time_unit, where]`` rows (fault indices
  point into the caller's target-fault list).
- ``pair`` -- one selected ``(I, D1)`` pair with its
  :class:`~repro.core.procedure2.PairResult` fields and detection rows.
- ``cursor`` -- the ``(iteration, n_same_fc)`` state after an
  iteration completed.
- ``final`` -- the run finished (``complete``, ``iterations_run``).

Crash safety is transactional at iteration granularity: an iteration's
``pair`` lines and its ``cursor`` line are appended in a **single
buffered write** followed by ``fsync``, so a crash can only truncate the
tail of the file.  The reader treats a ``pair`` without a following
``cursor`` (or any undecodable tail) as an uncommitted transaction and
discards it; re-running that iteration from the committed state
reproduces it exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.faults.model import Fault, fault_key

#: Bump when a record's schema changes incompatibly.
JOURNAL_VERSION = 1


class CheckpointError(RuntimeError):
    """The journal is missing, unreadable, or structurally invalid."""


class CheckpointMismatchError(CheckpointError):
    """The journal belongs to a different (circuit, config, targets)."""


def fingerprint_faults(faults: Iterable[Fault]) -> str:
    """Order-sensitive SHA-256 over a fault list.

    Resume replays detection records as *indices* into the target list,
    so the list's identity **and order** must match the original run.
    """
    digest = hashlib.sha256()
    for f in faults:
        digest.update(repr(fault_key(f)).encode("utf-8"))
    return digest.hexdigest()


def circuit_fingerprint(circuit: "Any") -> str:
    """Content-addressed SHA-256 identity of a circuit's structure.

    Hashes the canonical ``.bench`` serialization
    (:func:`repro.circuit.bench_parser.write_bench` is a byte-stable
    fixpoint) with the leading name comment stripped, so the fingerprint
    tracks structure -- interface order, scan-chain order, and the gate
    map -- but not what the circuit happens to be called.  Two circuits
    compare ``structurally_equal`` iff their fingerprints match, which is
    what lets the compile cache (:mod:`repro.circuit.cache`) share
    artifacts across sessions and machines.
    """
    from repro.circuit.bench_parser import write_bench

    text = write_bench(circuit)
    if text.startswith("#"):
        text = text[text.index("\n") + 1 :]
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def session_fingerprint(
    circuit_name: str, config: "Any", target_faults: Iterable[Fault]
) -> str:
    """SHA-256 identity of one Procedure 2 session's published inputs.

    Hashes the circuit name, the result-affecting config
    (:meth:`BistConfig.to_dict` -- execution knobs excluded) and the
    ordered target-fault list.  The persistent worker pool keys its
    shared-memory segment names on a prefix of this digest, so
    concurrent sessions over different circuits or configs can never
    collide on a segment, while a resumed session maps to the same
    identity as the original run.
    """
    digest = hashlib.sha256()
    digest.update(circuit_name.encode("utf-8"))
    digest.update(
        json.dumps(config.to_dict(), sort_keys=True).encode("utf-8")
    )
    digest.update(fingerprint_faults(target_faults).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class CheckpointPolicy:
    """How (and how often) a Procedure 2 run journals its progress.

    Attributes:
        path: the JSONL journal file.
        every: commit granularity in iterations.  1 (default) journals
            after every iteration; a larger value batches commits,
            trading a wider redo window on crash for fewer ``fsync``
            calls.  Any value yields byte-identical resumed results.
        fsync: fsync after every commit (default).  Disabling is faster
            but a power loss may drop committed-looking iterations;
            resume correctness is unaffected.
    """

    path: Union[str, Path]
    every: int = 1
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("CheckpointPolicy.every must be >= 1")


@dataclass
class CheckpointState:
    """The committed content of a journal, ready for replay."""

    header: Dict[str, Any]
    ts0: Optional[Dict[str, Any]] = None
    pairs: List[Dict[str, Any]] = field(default_factory=list)
    cursor: Tuple[int, int] = (0, 0)  # (iteration, n_same_fc)
    final: Optional[Dict[str, Any]] = None

    @property
    def detected_rows(self) -> List[List[Any]]:
        """All committed detection rows, in detection order."""
        rows: List[List[Any]] = []
        if self.ts0 is not None:
            rows.extend(self.ts0["detected"])
        for pair in self.pairs:
            rows.extend(pair["detected"])
        return rows


def load_checkpoint(path: Union[str, Path]) -> CheckpointState:
    """Parse a journal, discarding any uncommitted tail.

    Raises :class:`CheckpointError` if the file is absent or its first
    record is not a compatible header.  A truncated or garbage tail
    (the expected outcome of a SIGKILL mid-write) is silently dropped
    at the last committed transaction boundary.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint journal at {path}")
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: everything after is uncommitted
            if not isinstance(record, dict) or "kind" not in record:
                break
            records.append(record)
    if not records or records[0].get("kind") != "header":
        raise CheckpointError(f"{path} is not a checkpoint journal")
    header = records[0]
    if header.get("version") != JOURNAL_VERSION:
        raise CheckpointError(
            f"{path} has journal version {header.get('version')!r}, "
            f"this code reads version {JOURNAL_VERSION}"
        )
    state = CheckpointState(header=header)
    pending_pairs: List[Dict[str, Any]] = []
    for record in records[1:]:
        kind = record["kind"]
        if kind == "ts0":
            state.ts0 = record
        elif kind == "pair":
            pending_pairs.append(record)
        elif kind == "cursor":
            # Commit point: the buffered pairs belong to this iteration.
            # Iterations only ever move forward, so a commit at or below
            # the current cursor is a duplicated transaction (a flush
            # interrupted after its bytes landed, then re-appended) and
            # replaying its pairs again would corrupt the resumed state.
            if record["iteration"] <= state.cursor[0]:
                pending_pairs = []
                continue
            state.pairs.extend(pending_pairs)
            pending_pairs = []
            state.cursor = (record["iteration"], record["n_same_fc"])
        elif kind == "final":
            state.pairs.extend(pending_pairs)
            pending_pairs = []
            state.final = record
        # Unknown kinds are skipped: forward-compatible within a version.
    return state


class CheckpointWriter:
    """Append-only journal writer with transactional iteration commits.

    Created with a ``header`` for a fresh journal (the file is created
    atomically with the header as its first line), or without one to
    append to an existing journal on resume.
    """

    def __init__(
        self,
        policy: CheckpointPolicy,
        header: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.policy = policy
        self.path = Path(policy.path)
        self._pending: List[str] = []
        self._uncommitted_iterations = 0
        if header is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            from repro.robustness.atomic import atomic_write_text

            atomic_write_text(self.path, self._line(header))

    @staticmethod
    def _line(record: Dict[str, Any]) -> str:
        return json.dumps(record, sort_keys=True) + "\n"

    def _append(self, text: str) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            if self.policy.fsync:
                os.fsync(fh.fileno())

    def _flush_pending(self) -> None:
        # The buffer is taken *before* the durable write: if a signal
        # lands inside ``_append`` after the bytes reached the file (an
        # fsync interrupted by KeyboardInterrupt), the interrupt handler
        # path -- ``close()`` from the run's ``finally`` -- must not
        # append the same transaction a second time.  Dropping the
        # buffer on a failed append is safe: an unflushed transaction is
        # indistinguishable from crashing before the commit, which the
        # reader already treats as uncommitted.
        text, self._pending = "".join(self._pending), []
        self._uncommitted_iterations = 0
        if text:
            self._append(text)

    # -- records ---------------------------------------------------------
    def write_ts0(self, detected_rows: Sequence[Sequence[Any]]) -> None:
        """Journal the TS0 detections (always committed immediately)."""
        self._append(
            self._line({"kind": "ts0", "detected": [list(r) for r in detected_rows]})
        )

    def commit_iteration(
        self,
        iteration: int,
        n_same_fc: int,
        pair_records: Sequence[Dict[str, Any]],
    ) -> None:
        """Buffer one finished iteration; flush per ``policy.every``.

        ``n_same_fc`` is the *post-iteration* value -- exactly what the
        resumed loop needs to continue.
        """
        for record in pair_records:
            self._pending.append(self._line(dict(record, kind="pair")))
        self._pending.append(
            self._line(
                {"kind": "cursor", "iteration": iteration, "n_same_fc": n_same_fc}
            )
        )
        self._uncommitted_iterations += 1
        if self._uncommitted_iterations >= self.policy.every:
            self._flush_pending()

    def write_final(self, complete: bool, iterations_run: int) -> None:
        self._pending.append(
            self._line(
                {
                    "kind": "final",
                    "complete": complete,
                    "iterations_run": iterations_run,
                }
            )
        )
        self._flush_pending()

    def close(self) -> None:
        """Flush buffered committed iterations (e.g. on KeyboardInterrupt)."""
        self._flush_pending()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
