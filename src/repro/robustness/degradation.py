"""Structured degradation reporting for the parallel simulation layer.

When a worker pool misbehaves -- a worker crashes, a shard times out, a
returned payload fails validation -- the sharded simulator recovers and
still produces the bit-exact result, but the *fact* that it degraded is
operationally important: a run that silently re-executed half its shards
serially is a run whose hardware or sizing needs attention.  Instead of
a ``RuntimeWarning`` that scrolls away, every recovery action is recorded
as a :class:`ShardEvent` in a :class:`DegradationReport` that callers can
attach to their results, serialize, and alert on.

The report is execution metadata: it never appears in serialized
experiment results (which stay byte-identical across clean and degraded
runs), exactly like ``n_jobs`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Event kinds a shard failure can be classified as.
EVENT_KINDS = (
    "crash",            # worker process died (BrokenProcessPool)
    "timeout",          # no result within the per-shard timeout
    "invalid-result",   # shard returned a payload that failed validation
    "error",            # task raised an ordinary exception
    "pool-lost",        # shard's future lost when the pool was torn down
    "pool-unavailable", # the pool could not be created at all
)

#: Recovery actions taken in response to a failed shard.
ACTIONS = ("retry", "serial")


@dataclass(frozen=True)
class ShardEvent:
    """One recovery action taken for one shard of one dispatch."""

    dispatch: int   # 0-based index of the simulate call within the run
    shard: int      # 0-based shard index within the dispatch
    attempt: int    # 0-based attempt number that failed
    kind: str       # one of EVENT_KINDS
    action: str     # one of ACTIONS
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dispatch": self.dispatch,
            "shard": self.shard,
            "attempt": self.attempt,
            "kind": self.kind,
            "action": self.action,
            "detail": self.detail,
        }

    def render(self) -> str:
        return (
            f"dispatch {self.dispatch} shard {self.shard} "
            f"attempt {self.attempt}: {self.kind} -> {self.action}"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class DegradationReport:
    """Every recovery action a sharded run had to take.

    An empty report means the run never degraded; ``events`` is in
    chronological order.  ``pool_respawns`` counts how many times the
    worker pool had to be killed and recreated (after a crash or a hung
    worker).
    """

    events: List[ShardEvent] = field(default_factory=list)
    pool_respawns: int = 0

    def record(
        self,
        dispatch: int,
        shard: int,
        attempt: int,
        kind: str,
        action: str,
        detail: str = "",
    ) -> ShardEvent:
        event = ShardEvent(dispatch, shard, attempt, kind, action, detail)
        self.events.append(event)
        return event

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    def counts(self) -> Dict[Tuple[str, str], int]:
        """``(kind, action) -> number of events`` summary."""
        out: Dict[Tuple[str, str], int] = {}
        for e in self.events:
            key = (e.kind, e.action)
            out[key] = out.get(key, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "degraded": self.degraded,
            "pool_respawns": self.pool_respawns,
            "events": [e.to_dict() for e in self.events],
        }

    def summary(self) -> str:
        if not self.degraded:
            return "no degradation"
        parts = [
            f"{n}x {kind}->{action}"
            for (kind, action), n in sorted(self.counts().items())
        ]
        return (
            f"{len(self.events)} recovery event(s), "
            f"{self.pool_respawns} pool respawn(s): " + ", ".join(parts)
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend("  " + e.render() for e in self.events)
        return "\n".join(lines)
