"""Experiment drivers: one module per table of the paper.

Each driver exposes ``run(...)`` returning a structured result with a
``render()`` method that prints rows in the paper's layout.  Scale knobs
default to configurations that finish in seconds-to-minutes on a laptop;
paper-scale grids are opt-in (see EXPERIMENTS.md for recorded outputs).

- :mod:`repro.experiments.table1` -- Tables 1 and 2 (s27 worked example),
- :mod:`repro.experiments.table3` -- Table 3 (s208 ``Ncyc``/``Ncyc0`` grid),
- :mod:`repro.experiments.table4` -- Table 4 (s420 grid),
- :mod:`repro.experiments.table5` -- Table 5 (combination ordering; exact),
- :mod:`repro.experiments.table6` -- Table 6 (main per-circuit results),
- :mod:`repro.experiments.table7` -- Table 7 (decreasing D1),
- :mod:`repro.experiments.table8` -- Table 8 (parameter/storage trade-off),
- :mod:`repro.experiments.ablations` -- extensions: observation-policy
  ablation, full-scan-insertion cost, baselines, partial scan, D2 sweep.
"""

from repro.experiments.common import bist_for, clear_cache

__all__ = ["bist_for", "clear_cache"]
