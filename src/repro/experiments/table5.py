"""Table 5: the first 10 ``(L_A, L_B, N)`` combinations by ``Ncyc0``.

Pure closed-form: this table is reproduced **exactly**.  The paper shows
the ordering for ``N_SV = 21`` (s382/s400) and ``N_SV = 74`` (s1423); the
expected rows below are transcribed from the paper and asserted against
our enumeration in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.parameter_selection import ParameterCombo, first_combinations
from repro.experiments.report import format_table

#: The paper's Table 5, transcribed: (L_A, L_B, N, Ncyc0).
PAPER_ROWS: Dict[int, Tuple[Tuple[int, int, int, int], ...]] = {
    21: (
        (8, 16, 64, 4245),
        (8, 32, 64, 5269),
        (16, 32, 64, 5781),
        (8, 64, 64, 7317),
        (16, 64, 64, 7829),
        (8, 16, 128, 8469),
        (32, 64, 64, 8853),
        (8, 32, 128, 10517),
        (8, 128, 64, 11413),
        (16, 32, 128, 11541),
    ),
    74: (
        (8, 16, 64, 11082),
        (8, 32, 64, 12106),
        (16, 32, 64, 12618),
        (8, 64, 64, 14154),
        (16, 64, 64, 14666),
        (32, 64, 64, 15690),
        (8, 128, 64, 18250),
        (16, 128, 64, 18762),
        (32, 128, 64, 19786),
        (64, 128, 64, 21834),
    ),
}


@dataclass
class Table5Result:
    per_nsv: Dict[int, List[ParameterCombo]]

    def render(self) -> str:
        blocks = []
        for n_sv, combos in self.per_nsv.items():
            rows = [
                (c.la, c.lb, c.n, c.ncyc0, self._mark(n_sv, i, c))
                for i, c in enumerate(combos)
            ]
            blocks.append(f"N_SV = {n_sv}")
            blocks.append(
                format_table(
                    ["LA", "LB", "N", "Ncyc0", "matches paper"],
                    [tuple(str(x) for x in r) for r in rows],
                )
            )
            blocks.append("")
        return "\n".join(blocks)

    def _mark(self, n_sv: int, i: int, combo: ParameterCombo) -> str:
        paper = PAPER_ROWS.get(n_sv)
        if paper is None or i >= len(paper):
            return "?"
        expect = paper[i]
        ours = (combo.la, combo.lb, combo.n, combo.ncyc0)
        return "yes" if ours == expect else f"no (paper: {expect})"

    def matches_paper(self) -> bool:
        for n_sv, combos in self.per_nsv.items():
            paper = PAPER_ROWS.get(n_sv)
            if paper is None:
                continue
            ours = tuple((c.la, c.lb, c.n, c.ncyc0) for c in combos[: len(paper)])
            if ours != paper:
                return False
        return True


def run(nsv_values: Sequence[int] = (21, 74), k: int = 10) -> Table5Result:
    return Table5Result(
        per_nsv={n_sv: first_combinations(n_sv, k) for n_sv in nsv_values}
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
