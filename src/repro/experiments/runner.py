"""Run every experiment and write the outputs to a results directory.

Usage::

    python -m repro.experiments.runner [--full] [--out results/] [--jobs N]

``--full`` runs the paper-scale grids and circuit lists (minutes to
hours); the default finishes in a few minutes on a laptop.  ``--jobs N``
shards fault simulation across ``N`` worker processes (``-1`` = all
cores); every reported number is identical for any value.

Every batch starts with a design-rule lint preflight over the circuits
it will simulate (see :mod:`repro.analysis`); a circuit with structural
errors aborts the run before any simulation time is spent.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, List, Sequence, Tuple

from repro.experiments import ablations, table1, table3, table4, table5, table6, table7, table8
from repro.experiments.common import set_default_n_jobs
from repro.experiments.report import canonical_result_name, format_table


def lint_preflight(circuit_names: Sequence[str]) -> str:
    """Design-rule gate over the circuits an experiment batch will use.

    Malformed or pathological inputs are rejected here, before any
    hours-long fault-simulation run: raises
    :class:`repro.analysis.LintError` on the first circuit with
    ERROR-severity findings.  Returns a per-circuit summary otherwise.
    """
    from repro.analysis import CATALOG_SUPPRESSIONS, LintError, LintOptions, lint_circuit
    from repro.bench_circuits import load_circuit

    lines = []
    for name in circuit_names:
        options = LintOptions(suppress=CATALOG_SUPPRESSIONS.get(name, ()))
        report = lint_circuit(load_circuit(name), options)
        if report.has_errors:
            raise LintError(report)
        status = "warn" if report.warnings else "ok"
        lines.append(f"{name:<8} {status:<5} {report.counts_line()}")
    return "\n".join(lines)


def _run_all(full: bool, out_dir: Path) -> List[Tuple[str, str]]:
    sections: List[Tuple[str, str]] = []

    def add(name: str, fn: Callable[[], str]) -> None:
        # perf_counter: monotonic, immune to wall-clock adjustments.
        t0 = time.perf_counter()
        try:
            text = fn()
        except Exception as exc:  # experiments must not kill the batch
            text = f"FAILED: {exc!r}"
        elapsed = time.perf_counter() - t0
        sections.append((name, text + f"\n[{elapsed:.1f}s]"))
        print(f"=== {name} ({elapsed:.1f}s)")

    add("table1", lambda: table1.run().render())
    add("table3", lambda: table3.run(full=full).render())
    add("table4", lambda: table4.run(full=full).render())
    add("table5", lambda: table5.run().render())
    circuits6 = table6.PAPER_CIRCUITS if full else table6.DEFAULT_CIRCUITS

    def run_table6() -> str:
        result = table6.run(circuits6)
        # Machine-readable copy alongside the text table.
        from repro.experiments.serialize import save_reports

        save_reports(list(result.reports.values()), out_dir / "table6.json")
        return result.render()

    add("table6", run_table6)
    add("table7", lambda: table7.run(circuits6).render())
    add("table8", lambda: table8.run().render())
    add(
        "ablation-observation",
        lambda: ablations.render_rows(
            ablations.observation_ablation(), "Observation-policy ablation (s208)"
        ),
    )
    add(
        "ablation-full-scan-cost",
        lambda: "\n".join(r.summary() for r in ablations.full_scan_cost()),
    )
    add(
        "baselines",
        lambda: "\n".join(r.summary() for r in ablations.baseline_comparison()),
    )
    add(
        "ablation-reseed",
        lambda: "\n".join(
            f"{k}: {v.summary()}" for k, v in ablations.reseed_ablation().items()
        ),
    )
    add(
        "ablation-d2",
        lambda: "\n".join(
            f"{k}: {v.summary()}" for k, v in ablations.d2_sweep().items()
        ),
    )
    add(
        "partial-scan",
        lambda: ablations.partial_scan_experiment().summary(),
    )
    add("compaction", ablations.compaction_experiment)
    add("transition-faults", ablations.transition_fault_experiment)
    add("misr-validation", ablations.misr_validation)
    add("run-lengths", ablations.run_length_report)
    add("tat-reduction", ablations.tat_reduction_experiment)
    add(
        "alternatives",
        lambda: "\n".join(ablations.alternatives_comparison()),
    )
    return sections


def main(argv: Sequence[str] = ()) -> None:
    argv = list(argv)
    full = "--full" in argv
    out_dir = Path("results")
    if "--out" in argv:
        out_dir = Path(argv[argv.index("--out") + 1])
    if "--jobs" in argv:
        set_default_n_jobs(int(argv[argv.index("--jobs") + 1]))
    out_dir.mkdir(parents=True, exist_ok=True)
    circuits = table6.PAPER_CIRCUITS if full else table6.DEFAULT_CIRCUITS
    print("=== lint preflight")
    print(lint_preflight(circuits))
    sections = _run_all(full, out_dir)
    for name, text in sections:
        (out_dir / f"{canonical_result_name(name)}.txt").write_text(text + "\n")
    combined = "\n\n".join(f"## {name}\n\n{text}" for name, text in sections)
    (out_dir / "all_experiments.txt").write_text(combined + "\n")
    print(f"\nwrote {len(sections)} sections to {out_dir}/")


if __name__ == "__main__":  # pragma: no cover
    main(sys.argv[1:])
