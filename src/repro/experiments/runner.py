"""Run every experiment and write the outputs to a results directory.

Usage::

    python -m repro.experiments.runner [--full] [--out results/] [--jobs N]

``--full`` runs the paper-scale grids and circuit lists (minutes to
hours); the default finishes in a few minutes on a laptop.  ``--jobs N``
shards fault simulation across ``N`` worker processes (``-1`` = all
cores); every reported number is identical for any value.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, List, Sequence, Tuple

from repro.experiments import ablations, table1, table3, table4, table5, table6, table7, table8
from repro.experiments.common import set_default_n_jobs
from repro.experiments.report import canonical_result_name, format_table


def _run_all(full: bool, out_dir: Path) -> List[Tuple[str, str]]:
    sections: List[Tuple[str, str]] = []

    def add(name: str, fn: Callable[[], str]) -> None:
        t0 = time.time()
        try:
            text = fn()
        except Exception as exc:  # experiments must not kill the batch
            text = f"FAILED: {exc!r}"
        sections.append((name, text + f"\n[{time.time() - t0:.1f}s]"))
        print(f"=== {name} ({time.time() - t0:.1f}s)")

    add("table1", lambda: table1.run().render())
    add("table3", lambda: table3.run(full=full).render())
    add("table4", lambda: table4.run(full=full).render())
    add("table5", lambda: table5.run().render())
    circuits6 = table6.PAPER_CIRCUITS if full else table6.DEFAULT_CIRCUITS

    def run_table6() -> str:
        result = table6.run(circuits6)
        # Machine-readable copy alongside the text table.
        from repro.experiments.serialize import save_reports

        save_reports(list(result.reports.values()), out_dir / "table6.json")
        return result.render()

    add("table6", run_table6)
    add("table7", lambda: table7.run(circuits6).render())
    add("table8", lambda: table8.run().render())
    add(
        "ablation-observation",
        lambda: ablations.render_rows(
            ablations.observation_ablation(), "Observation-policy ablation (s208)"
        ),
    )
    add(
        "ablation-full-scan-cost",
        lambda: "\n".join(r.summary() for r in ablations.full_scan_cost()),
    )
    add(
        "baselines",
        lambda: "\n".join(r.summary() for r in ablations.baseline_comparison()),
    )
    add(
        "ablation-reseed",
        lambda: "\n".join(
            f"{k}: {v.summary()}" for k, v in ablations.reseed_ablation().items()
        ),
    )
    add(
        "ablation-d2",
        lambda: "\n".join(
            f"{k}: {v.summary()}" for k, v in ablations.d2_sweep().items()
        ),
    )
    add(
        "partial-scan",
        lambda: ablations.partial_scan_experiment().summary(),
    )
    add("compaction", ablations.compaction_experiment)
    add("transition-faults", ablations.transition_fault_experiment)
    add("misr-validation", ablations.misr_validation)
    add("run-lengths", ablations.run_length_report)
    add("tat-reduction", ablations.tat_reduction_experiment)
    add(
        "alternatives",
        lambda: "\n".join(ablations.alternatives_comparison()),
    )
    return sections


def main(argv: Sequence[str] = ()) -> None:
    argv = list(argv)
    full = "--full" in argv
    out_dir = Path("results")
    if "--out" in argv:
        out_dir = Path(argv[argv.index("--out") + 1])
    if "--jobs" in argv:
        set_default_n_jobs(int(argv[argv.index("--jobs") + 1]))
    out_dir.mkdir(parents=True, exist_ok=True)
    sections = _run_all(full, out_dir)
    for name, text in sections:
        (out_dir / f"{canonical_result_name(name)}.txt").write_text(text + "\n")
    combined = "\n\n".join(f"## {name}\n\n{text}" for name, text in sections)
    (out_dir / "all_experiments.txt").write_text(combined + "\n")
    print(f"\nwrote {len(sections)} sections to {out_dir}/")


if __name__ == "__main__":  # pragma: no cover
    main(sys.argv[1:])
