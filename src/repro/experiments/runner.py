"""Run every experiment and write the outputs to a results directory.

Usage::

    python -m repro.experiments.runner [--full] [--out results/]
                                       [--jobs N] [--resume]

``--full`` runs the paper-scale grids and circuit lists (minutes to
hours); the default finishes in a few minutes on a laptop.  ``--jobs N``
shards fault simulation across ``N`` worker processes (``-1`` = all
cores); every reported number is identical for any value.

The batch is crash-safe: every section's output is written atomically
as soon as it finishes, and per-section completion is recorded in
``manifest.json``.  ``--resume`` skips sections the manifest marks
complete (failed sections are always re-run), so a killed ``--full``
batch continues instead of recomputing finished tables.

Section failures never kill the batch; they are reported inline
(``FAILED: ...``), recorded as structured entries (exception type,
message, traceback, elapsed seconds) in a machine-readable
``failures.json``, and make the runner exit nonzero.

``SIGTERM`` and ``SIGINT`` are handled gracefully: the in-flight
section runs to completion and is recorded like any other, the
manifest and combined outputs are written atomically, and the runner
exits with :data:`EXIT_INTERRUPTED` (75) so a supervisor can tell "told
to stop, state consistent, safe to ``--resume``" apart from both
success (0) and section failures (1).  A second signal falls back to
the default disposition, so a wedged section can still be killed.

Every batch starts with a design-rule lint preflight over the circuits
it will simulate (see :mod:`repro.analysis`); a circuit with structural
errors aborts the run before any simulation time is spent.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
import traceback
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import ablations, table1, table3, table4, table5, table6, table7, table8
from repro.experiments.common import (
    set_default_candidate_batch,
    set_default_candidate_bias,
    set_default_n_jobs,
    set_default_pool,
)
from repro.experiments.report import canonical_result_name
from repro.robustness.atomic import atomic_write_json, atomic_write_text

#: Schema version of ``manifest.json``.
MANIFEST_VERSION = 1

#: Exit status after a graceful SIGTERM/SIGINT stop (``EX_TEMPFAIL``:
#: nothing is corrupt, rerunning with ``--resume`` continues the batch).
EXIT_INTERRUPTED = 75


class _GracefulStop:
    """Defers SIGTERM/SIGINT to the next section boundary.

    The first signal only sets a flag -- the in-flight section finishes
    and its output is committed -- and restores the previous handler, so
    a second signal behaves normally (i.e. kills a wedged section).
    Installation is skipped outside the main thread, where CPython
    forbids ``signal.signal``.
    """

    def __init__(self) -> None:
        self.signum: Optional[int] = None
        self._previous: Dict[int, Any] = {}

    def _handle(self, signum: int, _frame: Any) -> None:
        self.signum = signum
        self.restore()

    def install(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not the main thread
                self._previous.pop(signum, None)
                return

    def restore(self) -> None:
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        self._previous = {}

    @property
    def stopped(self) -> bool:
        return self.signum is not None


def lint_preflight(circuit_names: Sequence[str]) -> str:
    """Design-rule gate over the circuits an experiment batch will use.

    Malformed or pathological inputs are rejected here, before any
    hours-long fault-simulation run: raises
    :class:`repro.analysis.LintError` on the first circuit with
    ERROR-severity findings.  Returns a per-circuit summary otherwise.
    """
    from repro.analysis import CATALOG_SUPPRESSIONS, LintError, LintOptions, lint_circuit
    from repro.bench_circuits import load_circuit

    lines = []
    for name in circuit_names:
        options = LintOptions(suppress=CATALOG_SUPPRESSIONS.get(name, ()))
        report = lint_circuit(load_circuit(name), options)
        if report.has_errors:
            raise LintError(report)
        status = "warn" if report.warnings else "ok"
        lines.append(f"{name:<8} {status:<5} {report.counts_line()}")
    return "\n".join(lines)


def _section_specs(
    full: bool, out_dir: Path
) -> List[Tuple[str, Callable[[], str]]]:
    """Every experiment section, in run order, as ``(name, thunk)``."""
    circuits6 = table6.PAPER_CIRCUITS if full else table6.DEFAULT_CIRCUITS

    def run_table6() -> str:
        result = table6.run(circuits6)
        # Machine-readable copy alongside the text table.
        from repro.experiments.serialize import save_reports

        save_reports(list(result.reports.values()), out_dir / "table6.json")
        return result.render()

    return [
        ("table1", lambda: table1.run().render()),
        ("table3", lambda: table3.run(full=full).render()),
        ("table4", lambda: table4.run(full=full).render()),
        ("table5", lambda: table5.run().render()),
        ("table6", run_table6),
        ("table7", lambda: table7.run(circuits6).render()),
        ("table8", lambda: table8.run().render()),
        (
            "ablation-observation",
            lambda: ablations.render_rows(
                ablations.observation_ablation(),
                "Observation-policy ablation (s208)",
            ),
        ),
        (
            "ablation-full-scan-cost",
            lambda: "\n".join(r.summary() for r in ablations.full_scan_cost()),
        ),
        (
            "baselines",
            lambda: "\n".join(
                r.summary() for r in ablations.baseline_comparison()
            ),
        ),
        (
            "ablation-reseed",
            lambda: "\n".join(
                f"{k}: {v.summary()}"
                for k, v in ablations.reseed_ablation().items()
            ),
        ),
        (
            "ablation-d2",
            lambda: "\n".join(
                f"{k}: {v.summary()}" for k, v in ablations.d2_sweep().items()
            ),
        ),
        ("partial-scan", lambda: ablations.partial_scan_experiment().summary()),
        ("compaction", ablations.compaction_experiment),
        ("transition-faults", ablations.transition_fault_experiment),
        ("misr-validation", ablations.misr_validation),
        ("run-lengths", ablations.run_length_report),
        ("tat-reduction", ablations.tat_reduction_experiment),
        ("alternatives", lambda: "\n".join(ablations.alternatives_comparison())),
    ]


def _load_manifest(path: Path, full: bool) -> Dict[str, Any]:
    """The completed-section map of a previous run, or ``{}``.

    A manifest from a different schema version or a different ``--full``
    setting (the section workloads differ) is ignored wholesale, as is
    an unreadable file -- resume is best-effort, never an error source.
    """
    if not path.exists():
        return {}
    try:
        manifest = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return {}
    if (
        not isinstance(manifest, dict)
        or manifest.get("version") != MANIFEST_VERSION
        or manifest.get("full") != full
    ):
        return {}
    sections = manifest.get("sections")
    return sections if isinstance(sections, dict) else {}


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run every experiment and write results atomically.",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale grids and circuit lists (minutes to hours)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results"), metavar="DIR",
        help="results directory (default: results/)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fault-simulation worker processes (1 = serial, -1 = all "
             "cores); results are identical for any value",
    )
    parser.add_argument(
        "--pool", choices=("persistent", "sharded"), default="persistent",
        help="parallel back end for --jobs > 1: the persistent "
             "shared-memory worker pool or the legacy per-dispatch "
             "sharded executor",
    )
    parser.add_argument(
        "--candidate-batch", type=int, default=1, metavar="N",
        dest="candidate_batch",
        help="candidate test sets evaluated per simulation pass; "
             "results are identical for any value",
    )
    parser.add_argument(
        "--candidate-bias", choices=("uniform", "testability"),
        default="uniform", dest="candidate_bias",
        help="Procedure 2 candidate search order; 'testability' biases "
             "the D1 stream by COP scan benefit (changes which pairs "
             "are stored; recorded in the manifest)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip sections already completed per DIR/manifest.json "
             "(failed sections are re-run)",
    )
    parser.add_argument(
        "--sections", default=None, metavar="NAMES",
        help="comma-separated section names to run (default: all); "
             "unknown names are an error",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(
        list(argv) if argv is not None else None
    )
    set_default_n_jobs(args.jobs)
    set_default_pool(args.pool)
    set_default_candidate_batch(args.candidate_batch)
    set_default_candidate_bias(args.candidate_bias)
    out_dir: Path = args.out
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = out_dir / "manifest.json"
    previous = _load_manifest(manifest_path, args.full) if args.resume else {}

    specs = _section_specs(args.full, out_dir)
    if args.sections is not None:
        wanted = [s for s in args.sections.split(",") if s]
        known = {name for name, _ in specs}
        unknown = [s for s in wanted if s not in known]
        if unknown:
            print(
                f"unknown section(s): {', '.join(unknown)}; "
                f"available: {', '.join(name for name, _ in specs)}",
                file=sys.stderr,
            )
            return 2
        specs = [(name, fn) for name, fn in specs if name in wanted]

    circuits = table6.PAPER_CIRCUITS if args.full else table6.DEFAULT_CIRCUITS
    print("=== lint preflight")
    print(lint_preflight(circuits))

    sections: List[Tuple[str, str]] = []
    failures: List[Dict[str, Any]] = []
    completed: Dict[str, Any] = {}
    stop = _GracefulStop()
    stop.install()

    def save_manifest() -> None:
        atomic_write_json(
            manifest_path,
            {
                "version": MANIFEST_VERSION,
                "full": args.full,
                # Provenance: which candidate search order produced these
                # results.  Not part of the resume-compatibility check --
                # sections themselves record complete results -- but a
                # reader of the manifest can tell biased runs apart.
                "candidate_bias": args.candidate_bias,
                "sections": completed,
            },
        )

    for name, fn in specs:
        if stop.stopped:
            break
        section_path = out_dir / f"{canonical_result_name(name)}.txt"
        cached = previous.get(name)
        if (
            cached
            and cached.get("status") == "ok"
            and section_path.exists()
        ):
            text = section_path.read_text().rstrip("\n")
            sections.append((name, text))
            completed[name] = cached
            save_manifest()
            print(f"=== {name} (resumed, previously "
                  f"{cached.get('elapsed', 0):.1f}s)")
            continue

        # perf_counter: monotonic, immune to wall-clock adjustments.
        t0 = time.perf_counter()
        status = "ok"
        try:
            text = fn()
        except Exception as exc:  # experiments must not kill the batch
            status = "failed"
            text = f"FAILED: {exc!r}"
            failures.append(
                {
                    "section": name,
                    "exception_type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                    "elapsed": round(time.perf_counter() - t0, 3),
                }
            )
        elapsed = time.perf_counter() - t0
        text = text + f"\n[{elapsed:.1f}s]"
        atomic_write_text(section_path, text + "\n")
        sections.append((name, text))
        completed[name] = {"status": status, "elapsed": round(elapsed, 3)}
        save_manifest()
        print(f"=== {name} ({elapsed:.1f}s)"
              + (" FAILED" if status == "failed" else ""))

    stop.restore()
    combined = "\n\n".join(f"## {name}\n\n{text}" for name, text in sections)
    atomic_write_text(out_dir / "all_experiments.txt", combined + "\n")
    atomic_write_json(out_dir / "failures.json", failures)
    print(f"\nwrote {len(sections)} sections to {out_dir}/")
    if failures:
        names = ", ".join(f["section"] for f in failures)
        print(f"{len(failures)} section(s) failed: {names}", file=sys.stderr)
    if stop.stopped:
        # Interrupt wins over failure exits: the batch is incomplete by
        # request, every committed section is consistent, and --resume
        # will finish (and re-run any failed) sections.
        signame = signal.Signals(stop.signum).name
        print(
            f"stopped by {signame} after the in-flight section; "
            f"resume with --resume",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
