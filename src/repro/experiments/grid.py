"""Shared driver for the Table 3 / Table 4 parameter grids.

For every ``(L_A, L_B, N)`` with ``L_A < L_B``, run Procedure 2 and
record the total number of clock cycles ``Ncyc`` when 100% coverage of
the detectable faults is achieved (a dash -- ``None`` -- otherwise),
alongside the closed-form ``Ncyc0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.cost import ncyc0 as ncyc0_formula
from repro.core.session import LimitedScanBist
from repro.experiments.report import format_grid

Key = Tuple[int, int, int]

#: The paper's full grid.
PAPER_LA = (8, 16, 32, 64)
PAPER_LB = (16, 32, 64, 128, 256)
PAPER_N = (64, 128, 256)

#: A reduced grid for quick runs / CI benchmarks.
QUICK_LA = (8, 16)
QUICK_LB = (16, 32, 64)
QUICK_N = (64,)


@dataclass
class GridResult:
    circuit_name: str
    la_values: Sequence[int]
    lb_values: Sequence[int]
    n_values: Sequence[int]
    ncyc: Dict[Key, Optional[int]] = field(default_factory=dict)
    ncyc0: Dict[Key, int] = field(default_factory=dict)
    detected: Dict[Key, int] = field(default_factory=dict)
    num_targets: int = 0

    def render(self) -> str:
        top = format_grid(
            f"Ncyc ({self.circuit_name})",
            self.la_values,
            self.lb_values,
            self.n_values,
            self.ncyc,
        )
        bottom = format_grid(
            f"Ncyc0 ({self.circuit_name})",
            self.la_values,
            self.lb_values,
            self.n_values,
            dict(self.ncyc0),
        )
        return top + "\n" + bottom

    def complete_cells(self) -> Dict[Key, int]:
        return {k: v for k, v in self.ncyc.items() if v is not None}


def run_grid(
    bist: LimitedScanBist,
    la_values: Sequence[int] = QUICK_LA,
    lb_values: Sequence[int] = QUICK_LB,
    n_values: Sequence[int] = QUICK_N,
) -> GridResult:
    """Run Procedure 2 over the grid for one circuit session."""
    n_sv = bist.circuit.num_state_vars
    result = GridResult(
        circuit_name=bist.circuit.name,
        la_values=la_values,
        lb_values=lb_values,
        n_values=n_values,
        num_targets=len(bist.target_faults),
    )
    for n in n_values:
        for lb in lb_values:
            for la in la_values:
                if la >= lb:
                    continue
                key = (la, lb, n)
                result.ncyc0[key] = ncyc0_formula(n_sv, la, lb, n)
                run = bist.run(la, lb, n)
                result.detected[key] = run.det_total
                result.ncyc[key] = run.ncyc_total if run.complete else None
    return result
