"""Shared infrastructure for experiment drivers.

Fault-detectability classification is the expensive per-circuit step, so
sessions are cached per (circuit name, seed) for the lifetime of the
process -- Tables 3/4/6/7/8 all reuse the same targets.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.session import LimitedScanBist

_SESSIONS: Dict[Tuple[str, int], LimitedScanBist] = {}


def bist_for(name: str, base_seed: int = 20010618) -> LimitedScanBist:
    """A cached :class:`LimitedScanBist` session for a catalog circuit."""
    key = (name, base_seed)
    if key not in _SESSIONS:
        _SESSIONS[key] = LimitedScanBist(
            load_circuit(name), config=BistConfig(base_seed=base_seed)
        )
    return _SESSIONS[key]


def clear_cache() -> None:
    _SESSIONS.clear()
