"""Shared infrastructure for experiment drivers.

Fault-detectability classification is the expensive per-circuit step, so
sessions are cached per (circuit name, seed) for the lifetime of the
process -- Tables 3/4/6/7/8 all reuse the same targets.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.session import LimitedScanBist

_SESSIONS: Dict[Tuple[str, int, int, str, int, str], LimitedScanBist] = {}

#: Default fault-simulation parallelism for experiment sessions; set by
#: the runner's ``--jobs`` flag.  Results are identical for any value.
_DEFAULT_N_JOBS = 1

#: Parallel back end and candidate batching for experiment sessions; set
#: by the runner's ``--pool`` / ``--candidate-batch`` flags.  Neither
#: knob changes results, only wall-clock time.
_DEFAULT_POOL = "persistent"
_DEFAULT_CANDIDATE_BATCH = 1

#: Candidate search order for experiment sessions; set by the runner's
#: ``--candidate-bias`` flag.  Unlike the knobs above this one *does*
#: change which pairs are selected (it is a search strategy, not an
#: execution detail), so the runner records it in ``manifest.json``.
_DEFAULT_CANDIDATE_BIAS = "uniform"


def set_default_n_jobs(n_jobs: int) -> None:
    """Set the ``n_jobs`` used by sessions created after this call."""
    global _DEFAULT_N_JOBS
    _DEFAULT_N_JOBS = n_jobs


def set_default_pool(pool: str) -> None:
    """Set the parallel back end for sessions created after this call."""
    global _DEFAULT_POOL
    _DEFAULT_POOL = pool


def set_default_candidate_batch(batch: int) -> None:
    """Set the candidate batch for sessions created after this call."""
    global _DEFAULT_CANDIDATE_BATCH
    _DEFAULT_CANDIDATE_BATCH = batch


def set_default_candidate_bias(bias: str) -> None:
    """Set the candidate search order for sessions created after this."""
    global _DEFAULT_CANDIDATE_BIAS
    _DEFAULT_CANDIDATE_BIAS = bias


def default_candidate_bias() -> str:
    """The candidate search order new sessions will use."""
    return _DEFAULT_CANDIDATE_BIAS


def bist_for(name: str, base_seed: int = 20010618) -> LimitedScanBist:
    """A cached :class:`LimitedScanBist` session for a catalog circuit."""
    key = (
        name, base_seed, _DEFAULT_N_JOBS, _DEFAULT_POOL,
        _DEFAULT_CANDIDATE_BATCH, _DEFAULT_CANDIDATE_BIAS,
    )
    if key not in _SESSIONS:
        _SESSIONS[key] = LimitedScanBist(
            load_circuit(name),
            config=BistConfig(
                base_seed=base_seed,
                n_jobs=_DEFAULT_N_JOBS,
                pool=_DEFAULT_POOL,
                candidate_batch=_DEFAULT_CANDIDATE_BATCH,
                candidate_bias=_DEFAULT_CANDIDATE_BIAS,
            ),
        )
    return _SESSIONS[key]


def clear_cache() -> None:
    _SESSIONS.clear()
