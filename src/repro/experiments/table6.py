"""Table 6: main experimental results.

For each benchmark, the first ``(L_A, L_B, N)`` combination (in
increasing ``Ncyc0`` order) that achieves 100% coverage of the detectable
faults: the faults detected and cycles used by ``TS0`` alone, the number
of ``(I, D1)`` pairs ("app"), the final detection count, total cycles,
and the average number of limited-scan time units ("ls").

The paper runs 22 ISCAS-89/ITC-99 circuits; the default circuit list
here is the small tier (fast), with everything else opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.metrics import format_optional, human_cycles
from repro.core.session import CircuitReport
from repro.experiments.common import bist_for
from repro.experiments.report import format_table

#: Circuits reported in the paper's Table 6.
PAPER_CIRCUITS = (
    "s208", "s298", "s344", "s382", "s400", "s420", "s510", "s641",
    "s820", "s953", "s1196", "s1423", "s5378", "s35932",
    "b01", "b02", "b03", "b04", "b06", "b09", "b10", "b11",
)

#: Fast default: the small-tier subset (seconds per circuit).
DEFAULT_CIRCUITS = (
    "s27", "s208", "s298", "s344", "s382", "s400", "s420",
    "b01", "b02", "b03", "b06", "b09", "b10",
)


@dataclass
class Table6Result:
    reports: Dict[str, CircuitReport] = field(default_factory=dict)

    def render(self) -> str:
        headers = [
            "circuit", "LA,LB,N", "det0", "cycles0",
            "app", "det", "cycles", "ls", "complete",
        ]
        rows: List[Sequence[str]] = []
        for name, rep in self.reports.items():
            r = rep.result
            rows.append(
                (
                    name,
                    rep.combo.label(),
                    str(r.det_initial),
                    human_cycles(r.ncyc0),
                    str(r.app),
                    str(r.det_total) if r.app else "",
                    human_cycles(r.ncyc_total) if r.app else "",
                    format_optional(r.ls_average),
                    "yes" if r.complete else "NO",
                )
            )
        return "Table 6: Experimental results\n" + format_table(headers, rows)

    def all_complete(self) -> bool:
        return all(rep.result.complete for rep in self.reports.values())


def run(
    circuits: Sequence[str] = DEFAULT_CIRCUITS,
    max_combos: int = 8,
    base_seed: int = 20010618,
) -> Table6Result:
    result = Table6Result()
    for name in circuits:
        bist = bist_for(name, base_seed)
        result.reports[name] = bist.first_complete(max_combos=max_combos)
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys

    names = sys.argv[1:] or list(DEFAULT_CIRCUITS)
    print(run(names).render())
