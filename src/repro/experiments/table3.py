"""Table 3: numbers of clock cycles for s208.

``Ncyc`` (total cycles of the selected test sets at 100% coverage of the
detectable faults) and ``Ncyc0`` (initial test set) over the
``(L_A, L_B, N)`` grid.  ``Ncyc0`` values are exact closed-form numbers
and match the paper digit for digit; ``Ncyc`` values reproduce the
paper's *shape* on the synthetic s208 stand-in (see DESIGN.md section 3).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import bist_for
from repro.experiments.grid import (
    GridResult,
    PAPER_LA,
    PAPER_LB,
    PAPER_N,
    QUICK_LA,
    QUICK_LB,
    QUICK_N,
    run_grid,
)

CIRCUIT = "s208"

#: The paper's exact Ncyc0 values for s208 (N_SV = 8); reproduced by the
#: cost model and asserted in the test suite.
PAPER_NCYC0_SAMPLES = {
    (8, 16, 64): 2568,
    (8, 32, 64): 3592,
    (16, 32, 64): 4104,
    (8, 16, 128): 5128,
    (8, 16, 256): 10248,
    (64, 256, 256): 86024,
}


def run(full: bool = False) -> GridResult:
    """``full=True`` runs the paper's complete grid (minutes), otherwise a
    reduced grid that exercises the same trends in seconds."""
    bist = bist_for(CIRCUIT)
    if full:
        return run_grid(bist, PAPER_LA, PAPER_LB, PAPER_N)
    return run_grid(bist, QUICK_LA, QUICK_LB, QUICK_N)


def main(argv: Sequence[str] = ()) -> None:  # pragma: no cover - CLI
    result = run(full="--full" in argv)
    print(result.render())


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1:])
