"""Table 7: Procedure 2 with ``D1 = 10, 9, ..., 1``.

Preferring large ``D1`` means fewer limited scan operations per test set
(longer at-speed runs between scan operations), at the price of needing
more ``(I, D1)`` pairs.  The paper's observations, which the reproduction
checks:

- ``ls`` is lower than in Table 6 for every circuit,
- ``app`` is generally higher,
- total cycles can move either way (two competing effects).

The ``(L_A, L_B, N)`` combination per circuit is the one Table 6
selected, exactly as in the paper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import D1_DECREASING
from repro.core.metrics import format_optional, human_cycles
from repro.core.procedure2 import Procedure2Result
from repro.experiments import table6
from repro.experiments.common import bist_for
from repro.experiments.report import format_table


@dataclass
class Table7Result:
    runs: Dict[str, Procedure2Result] = field(default_factory=dict)
    table6_runs: Dict[str, Procedure2Result] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["circuit", "app", "det", "cycles", "ls", "ls(T6)", "app(T6)"]
        rows: List[Sequence[str]] = []
        for name, r in self.runs.items():
            t6 = self.table6_runs.get(name)
            rows.append(
                (
                    name,
                    str(r.app),
                    str(r.det_total) if r.app else "",
                    human_cycles(r.ncyc_total) if r.app else "",
                    format_optional(r.ls_average),
                    format_optional(t6.ls_average) if t6 else "",
                    str(t6.app) if t6 else "",
                )
            )
        return "Table 7: D1 = 10,9,...,1 in Procedure 2\n" + format_table(
            headers, rows
        )


def run(
    circuits: Sequence[str] = table6.DEFAULT_CIRCUITS,
    max_combos: int = 8,
    base_seed: int = 20010618,
) -> Table7Result:
    t6 = table6.run(circuits, max_combos=max_combos, base_seed=base_seed)
    result = Table7Result()
    for name, rep in t6.reports.items():
        bist = bist_for(name, base_seed)
        combo = rep.combo
        cfg = dataclasses.replace(
            bist.config.with_lengths(combo.la, combo.lb, combo.n),
            d1_values=D1_DECREASING,
        )
        result.runs[name] = bist.run(config=cfg)
        result.table6_runs[name] = rep.result
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys

    names = sys.argv[1:] or list(table6.DEFAULT_CIRCUITS)
    print(run(names).render())
