"""Extension experiments and ablations (beyond the paper's tables).

- :func:`observation_ablation` -- isolates the two detection mechanisms
  of the paper's Section 2: state change vs. scan-out observation during
  limited scan operations,
- :func:`full_scan_cost` -- limited-scan insertion vs. complete-scan
  insertion at the same time units (the cycle-cost argument for limited
  scan),
- :func:`baseline_comparison` -- TS0-only / multi-seed / single-vector
  BIST under the 500K-cycle budget of [5]/[6] vs. the proposed scheme,
- :func:`reseed_ablation` -- Procedure 1 as written (re-seed per test)
  vs. one continuous stream per test set,
- :func:`d2_sweep` -- sensitivity to the maximum shift amount ``D2``,
- :func:`partial_scan_experiment` -- the concluding-remark extension.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.baselines import (
    BaselineResult,
    full_scan_insertion,
    multi_seed,
    multichain_at_speed_bist,
    single_vector_bist,
    ts0_only,
    weighted_random_bist,
)
from repro.core.config import BistConfig
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.partial_scan import PartialScanBist, select_scan_flops
from repro.core.procedure2 import Procedure2Result
from repro.core.test_set import generate_ts0
from repro.experiments.common import bist_for
from repro.experiments.report import format_table
from repro.faults.fault_sim import ObservationPolicy


@dataclass
class AblationRow:
    label: str
    detected: int
    num_targets: int
    cycles: Optional[int] = None

    def as_cells(self) -> Tuple[str, ...]:
        cyc = str(self.cycles) if self.cycles is not None else ""
        return (self.label, f"{self.detected}/{self.num_targets}", cyc)


def observation_ablation(
    name: str = "s208", d1: int = 1, iteration: int = 1
) -> List[AblationRow]:
    """Detections of one ``TS(I, D1)`` under restricted observation.

    Compares full observation with (a) no limited-scan-out observation
    (only the state-change mechanism remains) and (b) no PO observation
    during at-speed runs (only scan-based observation).
    """
    bist = bist_for(name)
    targets = bist.target_faults
    cfg = bist.config
    ts0 = generate_ts0(bist.circuit, cfg)
    ts = build_limited_scan_test_set(
        ts0, iteration, d1, cfg, bist.circuit.num_state_vars
    )
    rows = []
    policies = [
        ("po + limited-scan-out + final scan-out", ObservationPolicy()),
        (
            "state change only (no limited-scan-out)",
            ObservationPolicy(limited_scan_out=False),
        ),
        (
            "scan observation only (no PO)",
            ObservationPolicy(primary_outputs=False),
        ),
        (
            "final scan-out only",
            ObservationPolicy(primary_outputs=False, limited_scan_out=False),
        ),
    ]
    for label, policy in policies:
        hits = bist.simulator.simulate_grouped(ts, targets, policy)
        rows.append(AblationRow(label, len(hits), len(targets)))
    return rows


def full_scan_cost(
    name: str = "s208", d1: int = 1, iteration: int = 1
) -> Tuple[BaselineResult, BaselineResult]:
    """(limited-scan TS(I,D1), complete-scan-widened TS) cost/coverage."""
    bist = bist_for(name)
    targets = bist.target_faults
    cfg = bist.config
    ts0 = generate_ts0(bist.circuit, cfg)
    n_sv = bist.circuit.num_state_vars
    ts = build_limited_scan_test_set(ts0, iteration, d1, cfg, n_sv)
    hits = bist.simulator.simulate_grouped(ts, targets)
    from repro.core.cost import ncyc0 as ncyc0_formula

    limited = BaselineResult(
        name=f"limited-scan(I={iteration},D1={d1})",
        detected=len(hits),
        num_targets=len(targets),
        cycles=ncyc0_formula(n_sv, cfg.la, cfg.lb, cfg.n)
        + sum(t.total_shift_cycles for t in ts),
    )
    widened = full_scan_insertion(
        bist.circuit,
        cfg,
        targets,
        iteration=iteration,
        d1=d1,
        simulator=bist.simulator,
    )
    return limited, widened


def baseline_comparison(
    name: str = "s208", budget: int = 500_000
) -> List[BaselineResult]:
    """The 500K-cycle comparison implied by the paper's Section 4."""
    bist = bist_for(name)
    targets = bist.target_faults
    cfg = bist.config
    results = [
        ts0_only(bist.circuit, cfg, targets, simulator=bist.simulator),
        multi_seed(
            bist.circuit, cfg, targets, cycle_budget=budget, simulator=bist.simulator
        ),
        single_vector_bist(
            bist.circuit, targets, cycle_budget=budget, simulator=bist.simulator
        ),
        weighted_random_bist(
            bist.circuit, targets, cycle_budget=budget, simulator=bist.simulator
        ),
        multichain_at_speed_bist(
            bist.circuit, targets, cycle_budget=budget, simulator=bist.simulator
        ),
    ]
    proposed = bist.first_complete(max_combos=6)
    results.append(
        BaselineResult(
            name="random limited-scan (proposed)",
            detected=proposed.result.det_total,
            num_targets=len(targets),
            cycles=proposed.result.ncyc_total,
            applications=proposed.result.app,
        )
    )
    return results


def reseed_ablation(name: str = "s208") -> Dict[str, Procedure2Result]:
    """Procedure 1 re-seeded per test vs. one stream per test set."""
    bist = bist_for(name)
    out: Dict[str, Procedure2Result] = {}
    for label, reseed in (("reseed-per-test", True), ("one-stream", False)):
        cfg = dataclasses.replace(bist.config, reseed_per_test=reseed)
        out[label] = bist.run(config=cfg)
    return out


def d2_sweep(
    name: str = "s208", d2_values: Sequence[Optional[int]] = (2, 4, None)
) -> Dict[str, Procedure2Result]:
    """Sensitivity to the maximum shift amount (None = paper's N_SV+1)."""
    bist = bist_for(name)
    out: Dict[str, Procedure2Result] = {}
    for d2 in d2_values:
        label = f"D2={d2 if d2 is not None else 'N_SV+1'}"
        cfg = dataclasses.replace(bist.config, d2=d2)
        out[label] = bist.run(config=cfg)
    return out


def partial_scan_experiment(
    name: str = "s208", fraction: float = 0.5
) -> Procedure2Result:
    """Limited scan on a partial-scan version of a catalog circuit."""
    bist = bist_for(name)
    chain = select_scan_flops(bist.circuit, fraction)
    ps = PartialScanBist(bist.circuit, chain, config=bist.config)
    # Target the faults detectable under FULL scan; under partial scan
    # some of them become undetectable, so coverage < 100% is expected --
    # the experiment shows limited scan still raises coverage.
    return ps.run(bist.target_faults)


def compaction_experiment(name: str = "s208") -> str:
    """Reverse-order (I, D1) pair compaction on a many-pair run."""
    import dataclasses as _dc

    from repro.core.compaction import compact_pairs

    bist = bist_for(name)
    cfg = _dc.replace(bist.config, la=4, lb=8, n=16)
    result = bist.run(config=cfg)
    comp = compact_pairs(
        bist.circuit, result, bist.target_faults, simulator=bist.simulator
    )
    return comp.summary()


def transition_fault_experiment(name: str = "s298") -> str:
    """Transition-fault coverage: multi-vector vs single-vector tests."""
    from repro.core.test_set import generate_ts0
    from repro.faults.fault_sim import ScanTest
    from repro.faults.transition import (
        TransitionFaultSimulator,
        generate_transition_faults,
    )
    from repro.rpg.prng import make_source

    bist = bist_for(name)
    circuit = bist.circuit
    sim = TransitionFaultSimulator(bist.graph)
    faults = generate_transition_faults(circuit)
    cfg = bist.config
    multi = generate_ts0(circuit, cfg)
    src = make_source(cfg.base_seed)
    total = sum(t.length for t in multi)
    single = [
        ScanTest(
            si=src.bits(circuit.num_state_vars),
            vectors=[src.bits(circuit.num_inputs)],
        )
        for _ in range(total)
    ]
    d_multi = len(sim.simulate(multi, faults))
    d_single = len(sim.simulate(single, faults))
    return (
        f"{name}: {len(faults)} transition faults; "
        f"multi-vector at-speed tests detect {d_multi}, "
        f"single-vector tests (same cycle count) detect {d_single}"
    )


def misr_validation(name: str = "s208", sample: int = 40) -> str:
    """Signature compaction check: every fault the comparator-based
    simulator calls detected must also flip a 32-bit MISR signature on
    its detecting test (no aliasing in the sample)."""
    from repro.rpg.misr import signature_of_trace
    from repro.simulation.compiled import Injections
    from repro.simulation.sequential import simulate_test

    bist = bist_for(name)
    graph = bist.graph
    cfg = bist.config
    result = bist.run()
    from repro.core.test_set import generate_ts0

    ts0 = generate_ts0(bist.circuit, cfg)
    checked = aliased = 0
    # Validate on the TS0 tests (detections from TS(I, D1) sets replay
    # the same machinery; TS0 gives a clean deterministic sample).
    for fault, rec in list(result.detections.items())[:sample]:
        if rec.test_index >= len(ts0):
            continue
        test = ts0[rec.test_index]
        good = simulate_test(graph.model, test.si, test.vectors)
        inj = Injections.build_whole_word(
            [(graph.signal_of(fault), 0, fault.value)],
            graph.model.level_of_signal,
        )
        bad = simulate_test(
            graph.model, test.si, test.vectors, injections=inj
        )
        if (
            good.outputs == bad.outputs
            and good.states[-1] == bad.states[-1]
        ):
            continue  # this fault's detection came from another test set
        checked += 1
        if signature_of_trace(good) == signature_of_trace(bad):
            aliased += 1
    return (
        f"{name}: {checked} detected faults checked under 32-bit MISR "
        f"compaction, {aliased} aliased"
    )


def run_length_report(name: str = "s208") -> str:
    """Run-length distributions for small vs large D1 (Table 6 vs 7)."""
    from repro.core.limited_scan import build_limited_scan_test_set
    from repro.core.run_lengths import analyze_run_lengths
    from repro.core.test_set import generate_ts0

    bist = bist_for(name)
    cfg = bist.config
    ts0 = generate_ts0(bist.circuit, cfg)
    n_sv = bist.circuit.num_state_vars
    lines = []
    for d1 in (1, 5, 10):
        ts = build_limited_scan_test_set(ts0, 1, d1, cfg, n_sv)
        stats = analyze_run_lengths(ts)
        lines.append(f"D1={d1:<3} {stats.summary()}")
    return f"at-speed run lengths ({name}):\n" + "\n".join(lines)


def tat_reduction_experiment(name: str = "s208") -> str:
    """Refs [7]-[11]: limited scan to cut deterministic-test TAT.

    Contrasts with the paper's use of limited scan (coverage of random
    tests): here the test set is deterministic and limited scan exploits
    response/scan-in overlap, with repair to keep coverage exact.
    """
    from repro.core.scan_overlap import overlap_experiment

    bist = bist_for(name)
    out = overlap_experiment(bist.graph, repair=True)
    return f"{name}: {out.summary()}"


def alternatives_comparison(
    name: str = "s208", budget: int = 50_000
) -> List[str]:
    """Section 1 face-off: the classical remedies for random-pattern
    resistance vs the paper's limited scan, on one circuit.

    - plain single-vector random BIST (the baseline everyone improves),
    - weighted random patterns,
    - test point insertion (SCOAP-guided, then plain random BIST on the
      instrumented circuit; branch faults mapped to stems, so coverage
      is measured on a slightly coarser fault set),
    - the proposed random limited-scan scheme.
    """
    from repro.core.test_points import map_fault, plan_test_points

    bist = bist_for(name)
    targets = bist.target_faults
    lines: List[str] = []

    plain = single_vector_bist(
        bist.circuit, targets, cycle_budget=budget, simulator=bist.simulator
    )
    lines.append(plain.summary())
    weighted = weighted_random_bist(
        bist.circuit, targets, cycle_budget=budget, simulator=bist.simulator
    )
    lines.append(weighted.summary())

    # Test points aimed at what TS0 misses.
    from repro.core.test_set import generate_ts0

    ts0 = generate_ts0(bist.circuit, bist.config)
    hits = bist.simulator.simulate_grouped(ts0, targets)
    missed = [f for f in targets if f not in hits]
    plan = plan_test_points(bist.circuit, missed, max_points=8)
    mapped = sorted({map_fault(f) for f in targets}, key=str)
    tp = single_vector_bist(plan.circuit, mapped, cycle_budget=budget)
    lines.append(
        f"test-points [{plan.summary()}]: {tp.detected}/{tp.num_targets} "
        f"({100 * tp.coverage:.2f}%) in {tp.cycles} cycles "
        f"(coarser stem-mapped fault set)"
    )

    proposed = bist.first_complete(max_combos=6)
    lines.append(
        f"random limited-scan (proposed): {proposed.result.det_total}/"
        f"{len(targets)} (100.00%) in {proposed.result.ncyc_total} cycles"
        if proposed.result.complete
        else f"random limited-scan (proposed): {proposed.result.summary()}"
    )
    return lines


def render_rows(rows: Sequence[AblationRow], title: str) -> str:
    return title + "\n" + format_table(
        ["configuration", "detected", "cycles"],
        [r.as_cells() for r in rows],
    )
