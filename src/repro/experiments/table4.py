"""Table 4: numbers of clock cycles for s420.

Same layout as Table 3.  The paper's key observation here is the dashes:
for s420, combinations with small ``(L_A, L_B, N)`` cannot reach 100%
fault coverage at all -- the dash cells are data, not failures.  The
synthetic s420 stand-in exhibits the same qualitative behaviour; exact
dash positions depend on the netlist.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import bist_for
from repro.experiments.grid import (
    GridResult,
    PAPER_LA,
    PAPER_LB,
    PAPER_N,
    QUICK_LA,
    QUICK_LB,
    QUICK_N,
    run_grid,
)

CIRCUIT = "s420"

#: Paper's exact Ncyc0 values for s420 (N_SV = 16); asserted in tests.
PAPER_NCYC0_SAMPLES = {
    (8, 16, 64): 3600,
    (8, 32, 64): 4624,
    (16, 32, 64): 5136,
    (8, 16, 128): 7184,
    (8, 16, 256): 14352,
    (64, 256, 256): 90128,
}


def run(full: bool = False) -> GridResult:
    bist = bist_for(CIRCUIT)
    if full:
        return run_grid(bist, PAPER_LA, PAPER_LB, PAPER_N)
    return run_grid(bist, QUICK_LA, QUICK_LB, QUICK_N)


def main(argv: Sequence[str] = ()) -> None:  # pragma: no cover - CLI
    result = run(full="--full" in argv)
    print(result.render())


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(sys.argv[1:])
