"""Tables 1 and 2: the s27 worked example.

The paper simulates s27 under ``SI = 001``,
``T = (0111, 1001, 0111, 1001, 0100)`` and shows a fault that the plain
test misses but a single-bit limited scan operation at time unit 3
exposes on the primary output.

The paper does not state its primary-input bit order or scan-chain order,
so this driver first searches all orderings for the one that reproduces
the paper's fault-free state/output trace exactly; if found, the rest of
the experiment uses it.  It then searches the collapsed fault list for a
fault with exactly the paper's behaviour (undetected without the limited
scan operation, detected with it) and renders Tables 1(a), 1(b) and 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bench_circuits.s27 import s27_circuit
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault, FaultGraph
from repro.simulation.compiled import Injections
from repro.simulation.sequential import Schedule, simulate_test
from repro.simulation.trace import TestTrace

#: The paper's test, as printed (strings; orderings to be discovered).
PAPER_SI = "001"
PAPER_T = ("0111", "1001", "0111", "1001", "0100")
#: The paper's fault-free trace in Table 1(a).
PAPER_STATES = ("001", "000", "010", "010", "010", "011")
PAPER_OUTPUTS = ("1", "0", "0", "0", "0")
#: Table 1(b): a 1-bit shift before the vector of time unit 3, filling 0.
PAPER_SHIFT_U = 3
PAPER_SHIFT_K = 1
PAPER_FILL = (0,)


def _apply_perm(bits: str, perm: Tuple[int, ...]) -> List[int]:
    """``result[j] = bits[perm[j]]``: position j reads string slot perm[j]."""
    return [int(bits[p]) for p in perm]


@dataclass
class Table1Result:
    pi_perm: Optional[Tuple[int, ...]]
    scan_perm: Optional[Tuple[int, ...]]
    exact_trace_match: bool
    fault: Optional[Fault]
    plain_trace: TestTrace
    plain_trace_faulty: Optional[TestTrace]
    ls_trace: TestTrace
    ls_trace_faulty: Optional[TestTrace]

    def render(self) -> str:
        lines = ["Table 1: A test for s27", ""]
        if self.exact_trace_match:
            lines.append(
                f"(paper's exact fault-free trace reproduced with PI order "
                f"{self.pi_perm}, scan order {self.scan_perm})"
            )
        else:
            lines.append(
                "(no PI/scan ordering reproduces the paper's trace exactly; "
                "showing our canonical ordering)"
            )
        lines.append("")
        if self.fault is not None:
            lines.append(f"fault f: {self.fault}")
        lines.append("")
        lines.append("(a) Without limited scan")
        lines.extend(self._merged_rows(self.plain_trace, self.plain_trace_faulty))
        lines.append("")
        lines.append("(b) With limited scan (shift(3) = 1)")
        lines.extend(self._merged_rows(self.ls_trace, self.ls_trace_faulty))
        lines.append("")
        lines.append("Table 2: Timing information for the test of Table 1(b)")
        lines.append("u   T(u)       S(u)")
        for row in self.ls_trace.timing_rows():
            vec = row.vector if row.vector is not None else "-"
            extra = (
                f"  (scan-out bit: {row.scanned_out})"
                if row.scanned_out is not None
                else ""
            )
            lines.append(f"{row.cycle:<3} {vec:<10} {row.state}{extra}")
        return "\n".join(lines)

    @staticmethod
    def _merged_rows(
        good: TestTrace, bad: Optional[TestTrace]
    ) -> List[str]:
        rows = ["u   shift(u) T(u)       S(u)          Z(u)"]
        for u, vec in enumerate(good.vectors):
            s = good.states[u]
            z = good.outputs[u]
            if bad is not None:
                s = f"{s}/{bad.states[u]}"
                z = f"{z}/{bad.outputs[u]}"
            rows.append(f"{u:<3} {good.shifts[u]:<8} {vec:<10} {s:<13} {z}")
        s_final = good.states[good.length]
        if bad is not None:
            s_final = f"{s_final}/{bad.states[bad.length]}"
        rows.append(f"{good.length:<3} {'':<8} {'':<10} {s_final}")
        return rows


def _find_paper_ordering() -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Search PI/scan orderings for an exact match of the paper's trace."""
    base = s27_circuit()
    state_vars = base.state_vars
    from repro.simulation.compiled import CompiledModel

    for scan_perm in itertools.permutations(range(3)):
        chain = [state_vars[p] for p in scan_perm]
        circuit = base.reorder_scan_chain(chain)
        model = CompiledModel(circuit)
        si = [int(b) for b in PAPER_SI]
        for pi_perm in itertools.permutations(range(4)):
            vectors = [_apply_perm(t, pi_perm) for t in PAPER_T]
            trace = simulate_test(model, si, vectors)
            if (
                tuple(trace.states) == PAPER_STATES
                and tuple(trace.outputs) == PAPER_OUTPUTS
            ):
                return pi_perm, scan_perm
    return None


def run() -> Table1Result:
    """Reproduce Tables 1 and 2."""
    found = _find_paper_ordering()
    circuit = s27_circuit()
    pi_perm: Tuple[int, ...] = (0, 1, 2, 3)
    scan_perm: Tuple[int, ...] = (0, 1, 2)
    if found is not None:
        pi_perm, scan_perm = found
        chain = [circuit.state_vars[p] for p in scan_perm]
        circuit = circuit.reorder_scan_chain(chain)

    graph = FaultGraph(circuit)
    model = graph.model
    si = [int(b) for b in PAPER_SI]
    vectors = [_apply_perm(t, pi_perm) for t in PAPER_T]
    schedule: Schedule = [
        (PAPER_SHIFT_K, PAPER_FILL) if u == PAPER_SHIFT_U else (0, ())
        for u in range(len(vectors))
    ]

    # Find a fault with the paper's behaviour: missed by the plain test,
    # caught (ideally at a primary output) once the shift is inserted.
    simulator = FaultSimulator(graph)
    faults = collapse_faults(circuit)
    plain = ScanTest(si=si, vectors=vectors)
    shifted = ScanTest(si=si, vectors=vectors, schedule=list(schedule))
    missed = [f for f in faults if f not in simulator.simulate([plain], faults)]
    hits = simulator.simulate([shifted], missed)
    fault: Optional[Fault] = None
    for f, rec in hits.items():
        if rec.where == "po":
            fault = f
            break
    if fault is None and hits:
        fault = next(iter(hits))

    def faulty_trace(sched) -> Optional[TestTrace]:
        if fault is None:
            return None
        inj = Injections.build_whole_word(
            [(graph.signal_of(fault), 0, fault.value)], model.level_of_signal
        )
        return simulate_test(model, si, vectors, schedule=sched, injections=inj)

    plain_trace = simulate_test(model, si, vectors)
    ls_trace = simulate_test(model, si, vectors, schedule=schedule)
    return Table1Result(
        pi_perm=pi_perm if found else None,
        scan_perm=scan_perm if found else None,
        exact_trace_match=found is not None,
        fault=fault,
        plain_trace=plain_trace,
        plain_trace_faulty=faulty_trace(None),
        ls_trace=ls_trace,
        ls_trace_faulty=faulty_trace(schedule),
    )
