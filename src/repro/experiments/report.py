"""Table rendering helpers shared by the experiment drivers."""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple


def canonical_result_name(name: str) -> str:
    """The canonical file stem for a results artifact.

    Historically the experiment runner wrote hyphenated names
    (``ablation-observation.txt``) while the benchmark harness wrote
    underscored ones (``ablation_observation.txt``), leaving duplicate
    files in ``results/``.  Every writer now routes names through this
    function: lowercase, with runs of non-alphanumerics collapsed to a
    single underscore.
    """
    stem = re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")
    if not stem:
        raise ValueError(f"result name {name!r} has no usable characters")
    return stem


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*(str(c) for c in row)) for row in rows)
    return "\n".join(lines)


def format_grid(
    title: str,
    la_values: Sequence[int],
    lb_values: Sequence[int],
    n_values: Sequence[int],
    cells: Dict[Tuple[int, int, int], Optional[int]],
    dash: str = "-",
) -> str:
    """The paper's Table 3/4 layout: N blocks x (L_A rows, L_B columns).

    ``cells[(la, lb, n)]`` is a number, ``None`` (render the paper's dash:
    100% coverage not achieved), or absent (``L_A >= L_B``: left empty).
    """
    lines = [title]
    header = ["LA"] + [f"LB={lb}" for lb in lb_values]
    for n in n_values:
        rows: List[List[str]] = []
        for la in la_values:
            row = [str(la)]
            for lb in lb_values:
                if la >= lb:
                    row.append("")
                else:
                    value = cells.get((la, lb, n), "")
                    if value is None:
                        row.append(dash)
                    else:
                        row.append(str(value))
            rows.append(row)
        lines.append(f"N={n}")
        lines.append(format_table(header, rows))
        lines.append("")
    return "\n".join(lines)
