"""JSON serialization of experiment results.

The text tables under ``results/`` are for humans; downstream tooling
(plotting, regression tracking across library versions) wants structured
data.  This module round-trips the main result objects through plain
JSON-compatible dicts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.config import BistConfig
from repro.core.procedure2 import PairResult, Procedure2Result
from repro.core.session import CircuitReport
from repro.core.parameter_selection import ParameterCombo
from repro.faults.model import Fault
from repro.robustness.atomic import atomic_write_text


def fault_to_dict(fault: Fault) -> Dict[str, Any]:
    return {
        "site": fault.site,
        "value": fault.value,
        "consumer": fault.consumer,
        "pin": fault.pin,
    }


def fault_from_dict(data: Dict[str, Any]) -> Fault:
    return Fault(
        site=data["site"],
        value=data["value"],
        consumer=data.get("consumer"),
        pin=data.get("pin"),
    )


def config_to_dict(config: BistConfig) -> Dict[str, Any]:
    # Execution knobs (n_jobs, lint, shard_timeout, shard_retries) are
    # intentionally omitted -- see BistConfig.to_dict, the single codec
    # shared with checkpoint journal headers.
    return config.to_dict()


def config_from_dict(data: Dict[str, Any]) -> BistConfig:
    return BistConfig.from_dict(data)


def result_to_dict(result: Procedure2Result) -> Dict[str, Any]:
    """Serialize a Procedure 2 result (detection records summarized)."""
    return {
        "circuit": result.circuit_name,
        "config": config_to_dict(result.config),
        "n_sv": result.n_sv,
        "num_targets": result.num_targets,
        "ts0_detected": result.ts0_detected,
        "complete": result.complete,
        "iterations_run": result.iterations_run,
        "pairs": [
            {
                "iteration": p.iteration,
                "d1": p.d1,
                "newly_detected": p.newly_detected,
                "nsh": p.nsh,
                "ls_time_units": p.ls_time_units,
                "total_time_units": p.total_time_units,
            }
            for p in result.pairs
        ],
        "remaining_faults": [
            fault_to_dict(f) for f in result.remaining_faults
        ],
        # Derived metrics, for convenience of downstream consumers.
        "metrics": {
            "ncyc0": result.ncyc0,
            "ncyc_total": result.ncyc_total,
            "app": result.app,
            "det_total": result.det_total,
            "ls_average": result.ls_average,
            "fault_coverage": result.fault_coverage,
        },
    }


def result_from_dict(data: Dict[str, Any]) -> Procedure2Result:
    """Reconstruct a result (detection records are not persisted)."""
    result = Procedure2Result(
        circuit_name=data["circuit"],
        config=config_from_dict(data["config"]),
        n_sv=data["n_sv"],
        num_targets=data["num_targets"],
        ts0_detected=data["ts0_detected"],
    )
    result.complete = data["complete"]
    result.iterations_run = data["iterations_run"]
    result.pairs = [
        PairResult(
            iteration=p["iteration"],
            d1=p["d1"],
            newly_detected=p["newly_detected"],
            nsh=p["nsh"],
            ls_time_units=p["ls_time_units"],
            total_time_units=p["total_time_units"],
        )
        for p in data["pairs"]
    ]
    result.remaining_faults = [
        fault_from_dict(f) for f in data["remaining_faults"]
    ]
    return result


def report_to_dict(report: CircuitReport) -> Dict[str, Any]:
    return {
        "circuit": report.circuit_name,
        "combo": {
            "la": report.combo.la,
            "lb": report.combo.lb,
            "n": report.combo.n,
            "ncyc0": report.combo.ncyc0,
        },
        "combos_tried": report.combos_tried,
        "result": result_to_dict(report.result),
    }


def report_from_dict(data: Dict[str, Any]) -> CircuitReport:
    combo = data["combo"]
    return CircuitReport(
        circuit_name=data["circuit"],
        combo=ParameterCombo(
            la=combo["la"], lb=combo["lb"], n=combo["n"], ncyc0=combo["ncyc0"]
        ),
        result=result_from_dict(data["result"]),
        combos_tried=data["combos_tried"],
    )


def save_result(
    result: Procedure2Result, path: Union[str, Path]
) -> None:
    # Atomic: a killed batch leaves the previous file (or none), never a
    # truncated JSON document.
    atomic_write_text(path, json.dumps(result_to_dict(result), indent=2))


def load_result(path: Union[str, Path]) -> Procedure2Result:
    return result_from_dict(json.loads(Path(path).read_text()))


def save_reports(
    reports: List[CircuitReport], path: Union[str, Path]
) -> None:
    atomic_write_text(
        path, json.dumps([report_to_dict(r) for r in reports], indent=2)
    )


def load_reports(path: Union[str, Path]) -> List[CircuitReport]:
    return [
        report_from_dict(d) for d in json.loads(Path(path).read_text())
    ]
