"""Table 8: trading test-set storage against application time.

For selected circuits, run Procedure 2 over several ``(L_A, L_B, N)``
combinations of increasing ``Ncyc0``.  The paper's observation: larger
combinations reduce the number of ``(I, D1)`` pairs that must be stored
("app"), usually at the cost of more clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.metrics import format_optional, human_cycles
from repro.core.parameter_selection import enumerate_combinations
from repro.core.procedure2 import Procedure2Result
from repro.experiments.common import bist_for
from repro.experiments.report import format_table

#: Default circuits (paper uses s208, s420, s641, s953, s1196, s1423,
#: s5378, b09; the fast default sticks to the small tier).
DEFAULT_CIRCUITS = ("s208", "s420", "b09")


@dataclass
class Table8Result:
    #: per circuit: list of (combo label, result)
    runs: Dict[str, List[Tuple[str, Procedure2Result]]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        headers = [
            "circuit", "LA,LB,N", "det0", "cycles0",
            "app", "det", "cycles", "ls", "complete",
        ]
        rows: List[Sequence[str]] = []
        for name, entries in self.runs.items():
            for label, r in entries:
                rows.append(
                    (
                        name,
                        label,
                        str(r.det_initial),
                        human_cycles(r.ncyc0),
                        str(r.app),
                        str(r.det_total) if r.app else "",
                        human_cycles(r.ncyc_total) if r.app else "",
                        format_optional(r.ls_average),
                        "yes" if r.complete else "NO",
                    )
                )
        return (
            "Table 8: Different combinations of LA, LB and N\n"
            + format_table(headers, rows)
        )

    def app_counts(self, name: str) -> List[int]:
        """The 'app' column for one circuit, in combination order."""
        return [r.app for _, r in self.runs.get(name, [])]


def run(
    circuits: Sequence[str] = DEFAULT_CIRCUITS,
    combos_per_circuit: int = 4,
    stride: int = 3,
    base_seed: int = 20010618,
) -> Table8Result:
    """For each circuit: the first complete combination plus every
    ``stride``-th subsequent combination, ``combos_per_circuit`` total."""
    result = Table8Result()
    for name in circuits:
        bist = bist_for(name, base_seed)
        all_combos = enumerate_combinations(bist.circuit.num_state_vars)
        entries: List[Tuple[str, Procedure2Result]] = []
        # Find the first complete combination (the Table 6 row).
        start = 0
        for i, combo in enumerate(all_combos):
            r = bist.run(combo.la, combo.lb, combo.n)
            if r.complete:
                entries.append((combo.label(), r))
                start = i
                break
        else:
            result.runs[name] = entries
            continue
        # Then sample growing combinations.
        picked = start
        while len(entries) < combos_per_circuit and picked + stride < len(
            all_combos
        ):
            picked += stride
            combo = all_combos[picked]
            r = bist.run(combo.la, combo.lb, combo.n)
            entries.append((combo.label(), r))
        result.runs[name] = entries
    return result


if __name__ == "__main__":  # pragma: no cover
    import sys

    names = sys.argv[1:] or list(DEFAULT_CIRCUITS)
    print(run(names).render())
