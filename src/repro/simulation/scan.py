"""Functional scan-chain operations.

The scan chain is modelled at the state-register level: a state is a
``(n_sv, n_words)`` ``uint64`` matrix (row = scan position, bit = machine
copy).  Row 0 is the scan-in ("left") end and row ``n_sv - 1`` the
scan-out ("right") end, matching the paper's convention that states are
always shifted to the right and the new random values enter on the left.

A *limited scan operation* of ``k`` shifts (``0 <= k <= n_sv``):

- takes ``k`` clock cycles,
- observes the ``k`` bits leaving the right end (in shift order), and
- loads ``k`` fill bits at the left end (the first fill bit scanned in
  ends up at position ``k - 1``).

``k = n_sv`` is exactly a complete scan operation, which is how the paper's
``D2 = N_SV + 1`` lets a limited scan span "no scan" to "complete scan".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.circuit.library import ALL_ONES


def bit_to_word(bit: int) -> np.uint64:
    """Replicate a scalar bit across all 64 bit-copies of a word."""
    return ALL_ONES if bit else np.uint64(0)


def word_to_bit(word: np.uint64) -> int:
    """Collapse a replicated word back to a scalar bit (word must be
    all-zeros or all-ones; asserts otherwise to catch divergence bugs)."""
    w = int(word)
    if w == 0:
        return 0
    if w == int(ALL_ONES):
        return 1
    raise ValueError(f"word 0x{w:016x} is not a replicated scalar bit")


def limited_shift(
    state: np.ndarray,
    k: int,
    fill_bits: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Shift ``state`` right by ``k`` positions.

    Args:
        state: ``(n_sv, n_words)`` uint64 matrix.
        k: number of shift cycles, ``0 <= k <= n_sv``.
        fill_bits: ``k`` scalar bits scanned in at the left end, in the
            order they are scanned in (identical for every machine copy,
            as in the paper: the generator feeds fault-free and faulty
            machines the same stream).

    Returns:
        ``(new_state, out_words)`` where ``out_words`` has shape
        ``(k, n_words)``; row ``j`` is the word observed at shift cycle
        ``j`` (the bit that started at position ``n_sv - 1 - j``).
    """
    n_sv = state.shape[0]
    if not 0 <= k <= n_sv:
        raise ValueError(f"shift amount {k} outside [0, {n_sv}]")
    if len(fill_bits) != k:
        raise ValueError(f"need {k} fill bits, got {len(fill_bits)}")
    if k == 0:
        return state.copy(), np.zeros((0, state.shape[1]), dtype=np.uint64)

    out_words = state[n_sv - k :][::-1].copy()
    new_state = np.empty_like(state)
    new_state[k:] = state[: n_sv - k]
    for j, bit in enumerate(fill_bits):
        # The bit scanned in first travels furthest right.
        new_state[k - 1 - j, :] = bit_to_word(bit)
    return new_state, out_words


def full_scan_state(
    n_sv: int, si_bits: Sequence[int], n_words: int
) -> np.ndarray:
    """Build the state matrix produced by a complete scan-in of ``si_bits``.

    ``si_bits[i]`` is the final content of scan position ``i`` (position 0
    = left end), i.e. the paper's state string read left to right.
    """
    if len(si_bits) != n_sv:
        raise ValueError(f"need {n_sv} scan-in bits, got {len(si_bits)}")
    state = np.empty((n_sv, n_words), dtype=np.uint64)
    for i, bit in enumerate(si_bits):
        state[i, :] = bit_to_word(bit)
    return state


def state_to_bits(state: np.ndarray, word: int = 0, bit: int = 0) -> List[int]:
    """Extract one machine copy of the state as a list of scalar bits."""
    mask = np.uint64(1) << np.uint64(bit)
    return [int(bool(state[i, word] & mask)) for i in range(state.shape[0])]


def state_to_string(state: np.ndarray, word: int = 0, bit: int = 0) -> str:
    """The paper's state-string rendering (left end first)."""
    return "".join(str(b) for b in state_to_bits(state, word, bit))
