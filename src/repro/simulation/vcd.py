"""VCD (Value Change Dump) export of simulation traces.

Writes the industry-standard waveform format so traces from this library
can be inspected in GTKWave or any EDA waveform viewer.  The cycle-based
model maps one time unit to one VCD timestep; limited-scan shift cycles
get their own timesteps, mirroring the paper's Table 2 timing view.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.simulation.trace import TestTrace

#: Printable VCD identifier characters.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short unique VCD identifier for signal ``index``."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdWriter:
    """Minimal single-scope VCD writer for scalar (1-bit) signals."""

    def __init__(self, module: str = "repro") -> None:
        self.module = module
        self._signals: List[str] = []
        self._ids: Dict[str, str] = {}
        self._changes: List[str] = []
        self._last: Dict[str, Optional[int]] = {}
        self._time: Optional[int] = None

    def declare(self, name: str) -> None:
        if name in self._ids:
            raise ValueError(f"signal {name} already declared")
        ident = _identifier(len(self._signals))
        self._signals.append(name)
        self._ids[name] = ident
        self._last[name] = None

    def set_time(self, time: int) -> None:
        if self._time is not None and time <= self._time:
            raise ValueError("time must be strictly increasing")
        self._time = time
        self._changes.append(f"#{time}")

    def change(self, name: str, value: int) -> None:
        if self._time is None:
            raise ValueError("set_time must be called before changes")
        if value == self._last[name]:
            return
        self._last[name] = value
        self._changes.append(f"{value}{self._ids[name]}")

    def render(self, timescale: str = "1ns") -> str:
        header = [
            "$date repro $end",
            "$version repro limited-scan BIST $end",
            f"$timescale {timescale} $end",
            f"$scope module {self.module} $end",
        ]
        for name in self._signals:
            header.append(f"$var wire 1 {self._ids[name]} {name} $end")
        header += ["$upscope $end", "$enddefinitions $end"]
        return "\n".join(header + self._changes) + "\n"


def trace_to_vcd(
    trace: TestTrace,
    pi_names: Sequence[str],
    po_names: Sequence[str],
    state_names: Sequence[str],
) -> str:
    """Render a :class:`TestTrace` as VCD text.

    Signals: primary inputs, primary outputs (x during shift cycles is
    approximated by holding the last value), and the state bits.  The
    timeline is the Table 2 expansion: shift cycles occupy timesteps.
    """
    writer = VcdWriter()
    for name in list(pi_names) + list(po_names) + list(state_names):
        writer.declare(name)

    for row in trace.timing_rows():
        writer.set_time(row.cycle)
        for i, name in enumerate(state_names):
            writer.change(name, int(row.state[i]))
        if row.vector is not None:
            for i, name in enumerate(pi_names):
                writer.change(name, int(row.vector[i]))
        if row.output is not None:
            for i, name in enumerate(po_names):
                writer.change(name, int(row.output[i]))
    return writer.render()


def write_vcd_file(
    trace: TestTrace,
    path: Union[str, Path],
    pi_names: Sequence[str],
    po_names: Sequence[str],
    state_names: Sequence[str],
) -> None:
    Path(path).write_text(
        trace_to_vcd(trace, pi_names, po_names, state_names)
    )
