"""Event-driven logic simulation.

The classical alternative to levelized compiled simulation: after an
input change, only the fanout cones of changed nets are re-evaluated.
For low-activity stimuli (e.g. a limited scan shifting one bit) this
touches a tiny fraction of the gates.

In this library the event-driven engine serves two purposes:

- an **independent oracle**: it shares no evaluation code with the
  compiled engine, so agreement between the two on random stimuli is a
  strong correctness check (used by the test suite), and
- **incremental what-if analysis**: `propagate` reports exactly which
  nets changed, which the diagnosis tooling uses to explain fault
  effects.

Scalar two-valued values; one machine at a time.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.levelize import levelize
from repro.circuit.library import GateType, eval_gate_bits
from repro.circuit.netlist import Circuit


class EventSimulator:
    """Event-driven evaluator for the combinational core of a circuit.

    State (flop outputs) and primary inputs are set through
    :meth:`set_input`; :meth:`propagate` processes the event queue in
    level order (a "wave" scheduler: each gate is evaluated at most once
    per propagation because events are popped level by level).
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        lev = levelize(circuit)
        self._level = dict(lev.level_of)
        self._gate_of: Dict[str, object] = {
            g.output: g for g in circuit.iter_gates()
        }
        self._fanout: Dict[str, List[str]] = {n: [] for n in circuit.signals()}
        for gate in circuit.iter_gates():
            for src in gate.inputs:
                self._fanout[src].append(gate.output)
        self._values: Dict[str, int] = {}
        self._inputs = set(circuit.inputs) | set(circuit.state_vars)
        self.eval_count = 0  # gates evaluated since construction

    # ------------------------------------------------------------------
    def initialize(
        self, input_bits: Sequence[int], state_bits: Sequence[int]
    ) -> None:
        """Full evaluation from scratch (levelized)."""
        if len(input_bits) != self.circuit.num_inputs:
            raise ValueError("wrong number of input bits")
        if len(state_bits) != self.circuit.num_state_vars:
            raise ValueError("wrong number of state bits")
        self._values = dict(zip(self.circuit.inputs, input_bits))
        self._values.update(zip(self.circuit.state_vars, state_bits))
        for gate in levelize(self.circuit).order:
            self._values[gate.output] = eval_gate_bits(
                gate.gtype, [self._values[s] for s in gate.inputs]
            )
            self.eval_count += 1

    def value(self, net: str) -> int:
        return self._values[net]

    def output_bits(self) -> List[int]:
        return [self._values[n] for n in self.circuit.outputs]

    def next_state_bits(self) -> List[int]:
        return [self._values[n] for n in self.circuit.next_state_nets]

    # ------------------------------------------------------------------
    def set_input(self, net: str, value: int) -> Set[str]:
        """Change one input/state net and propagate; returns changed nets."""
        if net not in self._inputs:
            raise ValueError(f"{net} is not a primary input or state var")
        if value not in (0, 1):
            raise ValueError("value must be 0 or 1")
        if self._values.get(net) == value:
            return set()
        self._values[net] = value
        return self.propagate([net])

    def set_inputs(self, assignments: Dict[str, int]) -> Set[str]:
        """Batch input changes with a single propagation wave."""
        changed = []
        for net, value in assignments.items():
            if net not in self._inputs:
                raise ValueError(f"{net} is not a primary input or state var")
            if self._values.get(net) != value:
                self._values[net] = value
                changed.append(net)
        return self.propagate(changed)

    def propagate(self, sources: Iterable[str]) -> Set[str]:
        """Process the fanout of ``sources`` in level order.

        Returns every net whose value changed (including the sources).
        """
        changed: Set[str] = set(sources)
        # (level, name) heap; the set guards against duplicate entries.
        pending: List[Tuple[int, str]] = []
        queued: Set[str] = set()
        for src in changed:
            for out in self._fanout[src]:
                if out not in queued:
                    queued.add(out)
                    heapq.heappush(pending, (self._level[out], out))
        while pending:
            _, name = heapq.heappop(pending)
            queued.discard(name)
            gate = self._gate_of[name]
            new = eval_gate_bits(
                gate.gtype, [self._values[s] for s in gate.inputs]
            )
            self.eval_count += 1
            if new == self._values[name]:
                continue
            self._values[name] = new
            changed.add(name)
            for out in self._fanout[name]:
                if out not in queued:
                    queued.add(out)
                    heapq.heappush(pending, (self._level[out], out))
        return changed

    # ------------------------------------------------------------------
    def clock(self) -> Set[str]:
        """One synchronous clock: latch D values into the flop outputs
        and propagate the state change."""
        assignments = {
            flop.q: self._values[flop.d] for flop in self.circuit.flops
        }
        return self.set_inputs(assignments)

    def activity_factor(self, changed: Set[str]) -> float:
        """Fraction of nets touched by a propagation (profiling aid)."""
        return len(changed) / max(1, len(self._values))
