"""Trace records in the style of the paper's Tables 1 and 2.

:class:`TestTrace` captures the per-time-unit view of a simulated test --
the state before the vector, the vector, the output, the number of limited
scan shifts, and the bits scanned out -- and can expand itself into the
timing-accurate row sequence of Table 2, where a limited scan of ``k``
shifts occupies ``k`` extra clock cycles and delays the vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


def bits_to_string(bits: List[int]) -> str:
    return "".join(str(b) for b in bits)


@dataclass
class TimingRow:
    """One clock cycle of the timing-accurate (Table 2) view."""

    cycle: int
    kind: str  # 'vector', 'shift', or 'final'
    vector: Optional[str]  # PI vector string, None during shift cycles
    state: str
    output: Optional[str]  # None during shift cycles / final row
    scanned_out: Optional[int]  # bit leaving the chain on a shift cycle


@dataclass
class TestTrace:
    """Complete record of one simulated ``(SI, T)`` test.

    Indexing convention (paper's Table 1): at time unit ``u`` the state is
    ``states[u]``, vector ``vectors[u]`` is applied (after ``shifts[u]``
    limited-scan shifts, if any), producing output ``outputs[u]``; the
    final captured state is ``states[L]``.
    """

    si: str
    vectors: List[str]
    states: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    shifts: List[int] = field(default_factory=list)
    scanout: List[List[int]] = field(default_factory=list)  # per-u shifted-out bits
    pre_shift_states: List[Optional[str]] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.vectors)

    @property
    def total_shift_cycles(self) -> int:
        """The test's contribution to ``N_SH`` (extra clock cycles)."""
        return sum(self.shifts)

    def table1_rows(self) -> List[str]:
        """Rows in the layout of Table 1(b): u, shift(u), T(u), S(u), Z(u)."""
        rows = []
        for u, vec in enumerate(self.vectors):
            rows.append(
                f"{u:<3} {self.shifts[u]:<8} {vec:<10} "
                f"{self.states[u]:<12} {self.outputs[u]}"
            )
        rows.append(f"{self.length:<3} {'':<8} {'':<10} {self.states[self.length]:<12}")
        return rows

    def timing_rows(self) -> List[TimingRow]:
        """The Table 2 expansion: shifts occupy their own clock cycles."""
        rows: List[TimingRow] = []
        cycle = 0
        for u, vec in enumerate(self.vectors):
            k = self.shifts[u]
            if k > 0:
                # During shift cycles the displayed state is the pre-shift
                # state (it is being consumed); the vector is delayed.
                pre = self.pre_shift_states[u] or self.states[u]
                for j in range(k):
                    rows.append(
                        TimingRow(
                            cycle=cycle,
                            kind="shift",
                            vector=None,
                            state=pre,
                            output=None,
                            scanned_out=self.scanout[u][j],
                        )
                    )
                    cycle += 1
            rows.append(
                TimingRow(
                    cycle=cycle,
                    kind="vector",
                    vector=vec,
                    state=self.states[u],
                    output=self.outputs[u],
                    scanned_out=None,
                )
            )
            cycle += 1
        rows.append(
            TimingRow(
                cycle=cycle,
                kind="final",
                vector=None,
                state=self.states[self.length],
                output=None,
                scanned_out=None,
            )
        )
        return rows

    def render(self, title: str = "") -> str:
        header = f"u   shift(u) T(u)       S(u)         Z(u)"
        lines = ([title] if title else []) + [header] + self.table1_rows()
        return "\n".join(lines)
