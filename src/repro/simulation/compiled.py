"""Compiled bit-parallel circuit model.

A :class:`CompiledModel` turns a :class:`~repro.circuit.netlist.Circuit`
into flat numpy arrays so that one evaluation pass touches Python only
``O(levels * gate_types)`` times instead of ``O(gates)`` times.  Values
live in a ``(n_signals, n_words)`` ``uint64`` matrix; every bit of every
word is an independent machine copy (a fault machine for the parallel-fault
simulator, a pattern for the pattern-parallel simulator).

The model is built *from* the struct-of-arrays netlist form
(:meth:`Circuit.to_arrays`): kernel construction is vectorized over int32
gate-type/fanin arrays rather than per-gate Python objects, and the model
pickles as those flat arrays -- the object-form :class:`Circuit` and the
name-keyed ``signal_index`` are rebuilt lazily on first access, so
shipping a compiled model to worker processes never serializes a per-gate
object graph.

Fault injection is expressed as :class:`Injections`: per evaluation level,
``vals[sig, word] = (vals[sig, word] & and_mask) | or_mask`` applied with a
single fancy-indexed statement, so a stuck-at fault forces its bit both
when the signal is produced and before anything consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.levelize import levelize_arrays
from repro.circuit.library import ALL_ONES, GATE_CODE, GateType
from repro.circuit.netlist import Circuit, NetlistArrays, circuit_from_arrays
from repro.circuit.transform import decompose_to_two_input


def shard_word_ranges(n_words: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``n_words`` word-columns into balanced contiguous ranges.

    Returns at most ``n_shards`` half-open ``(lo, hi)`` ranges covering
    ``[0, n_words)``; empty ranges are dropped, so fewer shards than
    requested come back when there is not enough work.  Both the
    fault-sharded simulator and the PPSFP fault splitter use this so that
    every shard boundary is word-aligned: a 64-fault word never straddles
    two workers.
    """
    if n_words < 0:
        raise ValueError(f"n_words must be non-negative, got {n_words}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(n_shards, n_words) or (1 if n_words else 0)
    ranges: List[Tuple[int, int]] = []
    base, extra = divmod(n_words, max(n_shards, 1))
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass
class _OpGroup:
    """One fused kernel within a level.

    Three kernel kinds cover the whole gate library (De Morgan folds the
    OR family into AND with inversion masks):

    - ``and2``: ``dst = ((s1 ^ ia) & (s2 ^ ib)) ^ io``  (AND/NAND/OR/NOR)
    - ``xor2``: ``dst = (s1 ^ s2) ^ io``                 (XOR/XNOR)
    - ``unary``: ``dst = s1 ^ io``                       (BUF/NOT)
    - ``const``: ``dst = io``                            (CONST0/CONST1)

    Masks are per-gate uint64 columns (0 or all-ones).
    """

    kind: str
    dst: np.ndarray
    src1: Optional[np.ndarray] = None
    src2: Optional[np.ndarray] = None
    ia: Optional[np.ndarray] = None
    ib: Optional[np.ndarray] = None
    io: Optional[np.ndarray] = None


@dataclass
class Injections:
    """Stuck-value forcing, grouped by the level at which each signal is set.

    ``per_level[lvl]`` holds ``(sigs, words, and_masks, or_masks)`` arrays;
    level 0 covers primary inputs and flop outputs, level ``k`` covers
    signals produced by gate level ``k``.
    """

    per_level: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )

    @staticmethod
    def build(
        entries: Sequence[Tuple[int, int, int, int]],
        level_of_signal: Sequence[int],
    ) -> "Injections":
        """Build from ``(sig_index, word_index, bit_index, stuck_value)``.

        Entries hitting the same (signal, word) pair are merged into one
        mask so the fancy-indexed application never writes a location
        twice (numpy would keep only the last write).
        """
        merged: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for sig, word, bit, value in entries:
            sig, word, bit = int(sig), int(word), int(bit)
            and_mask, or_mask = merged.get((sig, word), (int(ALL_ONES), 0))
            bitmask = 1 << bit
            and_mask &= ~bitmask & int(ALL_ONES)
            if value:
                or_mask |= bitmask
            merged[(sig, word)] = (and_mask, or_mask)

        by_level: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for (sig, word), (and_mask, or_mask) in merged.items():
            lvl = level_of_signal[sig]
            by_level.setdefault(lvl, []).append((sig, word, and_mask, or_mask))

        inj = Injections()
        for lvl, rows in by_level.items():
            sigs = np.array([r[0] for r in rows], dtype=np.intp)
            words = np.array([r[1] for r in rows], dtype=np.intp)
            ands = np.array([r[2] for r in rows], dtype=np.uint64)
            ors = np.array([r[3] for r in rows], dtype=np.uint64)
            inj.per_level[lvl] = (sigs, words, ands, ors)
        return inj

    @staticmethod
    def build_whole_word(
        entries: Sequence[Tuple[int, int, int]],
        level_of_signal: Sequence[int],
    ) -> "Injections":
        """Build from ``(sig_index, word_index, stuck_value)``, forcing all
        64 bits of the word.  Used when a word models a single machine
        (e.g. the scalar faulty-machine simulation behind Table 1)."""
        by_level: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for sig, word, value in entries:
            lvl = level_of_signal[sig]
            or_mask = int(ALL_ONES) if value else 0
            by_level.setdefault(lvl, []).append((sig, word, 0, or_mask))
        inj = Injections()
        for lvl, rows in by_level.items():
            sigs = np.array([r[0] for r in rows], dtype=np.intp)
            words = np.array([r[1] for r in rows], dtype=np.intp)
            ands = np.array([r[2] for r in rows], dtype=np.uint64)
            ors = np.array([r[3] for r in rows], dtype=np.uint64)
            inj.per_level[lvl] = (sigs, words, ands, ors)
        return inj

    def apply(self, vals: np.ndarray, level: int) -> None:
        group = self.per_level.get(level)
        if group is None:
            return
        sigs, words, ands, ors = group
        vals[sigs, words] = (vals[sigs, words] & ands) | ors

    @property
    def max_level(self) -> int:
        return max(self.per_level, default=-1)


# Gate-code partitions the fused kernels are built from.  Codes are the
# stable ints of :data:`repro.circuit.library.GATE_CODE`.
_CODE_AND = GATE_CODE[GateType.AND]
_CODE_NAND = GATE_CODE[GateType.NAND]
_CODE_OR = GATE_CODE[GateType.OR]
_CODE_NOR = GATE_CODE[GateType.NOR]
_CODE_XOR = GATE_CODE[GateType.XOR]
_CODE_XNOR = GATE_CODE[GateType.XNOR]
_CODE_NOT = GATE_CODE[GateType.NOT]
_CODE_BUF = GATE_CODE[GateType.BUF]
_CODE_CONST0 = GATE_CODE[GateType.CONST0]
_CODE_CONST1 = GATE_CODE[GateType.CONST1]


class CompiledModel:
    """A circuit compiled for bit-parallel evaluation.

    Signals are indexed ``0 .. n_signals-1``; the index arrays ``pi_idx``,
    ``q_idx``, ``d_idx`` and ``po_idx`` locate primary inputs, flop outputs
    (scan order), flop D nets (scan order) and primary outputs.

    Signal order is primary inputs, flop outputs (scan order), then gate
    outputs in topological order (levels ascending, circuit insertion
    order within a level) -- the historical order every downstream
    byte-identity guarantee is pinned to.
    """

    def __init__(self, circuit: Circuit, decompose: bool = True) -> None:
        pin_map = None
        if decompose and any(len(g.inputs) > 2 for g in circuit.iter_gates()):
            circuit, pin_map = decompose_to_two_input(circuit)
        self.pin_map = pin_map  # None means identity
        self._circuit: Optional[Circuit] = circuit
        self._signal_names: Optional[List[str]] = None
        self._signal_index: Optional[Dict[str, int]] = None
        self._build(circuit.to_arrays())

    def _build(self, arrays: NetlistArrays) -> None:
        self.arrays = arrays
        la = levelize_arrays(arrays)
        self.depth = la.depth
        first_gate = arrays.n_pi + arrays.n_ff
        n_nets = arrays.n_nets
        n_gates = arrays.n_gates
        self.n_signals = n_nets

        # Net index -> signal index: PIs and flop outputs are identity,
        # gate outputs are permuted into topological order.
        sig_of_net = np.empty(n_nets, dtype=np.intp)
        sig_of_net[:first_gate] = np.arange(first_gate, dtype=np.intp)
        sig_of_net[first_gate + la.order.astype(np.intp)] = np.arange(
            first_gate, n_nets, dtype=np.intp
        )
        self._order = la.order

        self.pi_idx = np.arange(arrays.n_pi, dtype=np.intp)
        self.q_idx = np.arange(arrays.n_pi, first_gate, dtype=np.intp)
        self.d_idx = sig_of_net[arrays.flop_d]
        self.po_idx = sig_of_net[arrays.po]

        #: level of each signal (0 for PIs and flop outputs).
        self.level_of_signal = np.zeros(n_nets, dtype=np.intp)
        self.level_of_signal[sig_of_net] = la.level_of.astype(np.intp)

        # First/second fan-in pin per gate (unused slots stay 0; arity is
        # <= 2 on this path -- wider gates were decomposed above, and the
        # historical kernels only ever read pins 0 and 1).
        starts = arrays.fanin_offset[:-1].astype(np.int64)
        arity = np.diff(arrays.fanin_offset)
        pin0 = np.zeros(n_gates, dtype=np.int64)
        pin1 = np.zeros(n_gates, dtype=np.int64)
        has0 = arity >= 1
        has1 = arity >= 2
        if len(arrays.fanin):
            pin0[has0] = arrays.fanin[starts[has0]]
            pin1[has1] = arrays.fanin[starts[has1] + 1]

        gt = arrays.gate_type
        ones, zero = ALL_ONES, np.uint64(0)
        self._levels: List[List[_OpGroup]] = []
        for lvl in range(la.depth):
            gidx = la.order[la.level_offset[lvl] : la.level_offset[lvl + 1]]
            codes = gt[gidx]
            ops: List[_OpGroup] = []

            m = codes <= _CODE_NOR  # AND/NAND/OR/NOR
            if m.any():
                g, c = gidx[m], codes[m]
                # De Morgan: OR(a,b) = ~(~a & ~b), so the OR family gets
                # input inversion and flipped output inversion.
                is_or = c >= _CODE_OR
                inverting = (c == _CODE_NAND) | (c == _CODE_NOR)
                ia = np.where(is_or, ones, zero)
                ops.append(
                    _OpGroup(
                        kind="and2",
                        dst=sig_of_net[first_gate + g],
                        src1=sig_of_net[pin0[g]],
                        src2=sig_of_net[pin1[g]],
                        ia=ia,
                        ib=ia.copy(),
                        io=np.where(is_or ^ inverting, ones, zero),
                    )
                )
            m = (codes == _CODE_XOR) | (codes == _CODE_XNOR)
            if m.any():
                g, c = gidx[m], codes[m]
                ops.append(
                    _OpGroup(
                        kind="xor2",
                        dst=sig_of_net[first_gate + g],
                        src1=sig_of_net[pin0[g]],
                        src2=sig_of_net[pin1[g]],
                        io=np.where(c == _CODE_XNOR, ones, zero),
                    )
                )
            m = (codes == _CODE_NOT) | (codes == _CODE_BUF)
            if m.any():
                g, c = gidx[m], codes[m]
                ops.append(
                    _OpGroup(
                        kind="unary",
                        dst=sig_of_net[first_gate + g],
                        src1=sig_of_net[pin0[g]],
                        io=np.where(c == _CODE_NOT, ones, zero),
                    )
                )
            m = codes >= _CODE_CONST0  # CONST0/CONST1
            if m.any():
                g, c = gidx[m], codes[m]
                ops.append(
                    _OpGroup(
                        kind="const",
                        dst=sig_of_net[first_gate + g],
                        io=np.where(c == _CODE_CONST1, ones, zero),
                    )
                )
            self._levels.append(ops)

    # ------------------------------------------------------------------
    # Lazily rebuilt object-form views (dropped from pickles).
    # ------------------------------------------------------------------
    @property
    def circuit(self) -> Circuit:
        """The compiled circuit in object form (rebuilt after unpickling)."""
        if self._circuit is None:
            self._circuit = circuit_from_arrays(self.arrays)
        return self._circuit

    @property
    def signal_names(self) -> List[str]:
        """Signal index -> net name."""
        if self._signal_names is None:
            names = self.arrays.names
            first_gate = self.arrays.n_pi + self.arrays.n_ff
            self._signal_names = list(names[:first_gate]) + [
                names[first_gate + g] for g in self._order
            ]
        return self._signal_names

    @property
    def signal_index(self) -> Dict[str, int]:
        """Net name -> signal index."""
        if self._signal_index is None:
            self._signal_index = {
                n: i for i, n in enumerate(self.signal_names)
            }
        return self._signal_index

    def __getstate__(self) -> Dict[str, Any]:
        # Ship only the flat arrays: the object-form circuit and the
        # name-keyed maps are derived views, rebuilt on demand.
        state = self.__dict__.copy()
        state["_circuit"] = None
        state["_signal_names"] = None
        state["_signal_index"] = None
        return state

    # ------------------------------------------------------------------
    def alloc(self, n_words: int) -> np.ndarray:
        """A zeroed value matrix for ``n_words`` simulation words."""
        return np.zeros((self.n_signals, n_words), dtype=np.uint64)

    def set_inputs_from_bits(self, vals: np.ndarray, bits: Sequence[int]) -> None:
        """Drive every PI with a scalar bit, replicated across all words."""
        if len(bits) != len(self.pi_idx):
            raise ValueError(
                f"expected {len(self.pi_idx)} input bits, got {len(bits)}"
            )
        column = np.where(
            np.asarray(bits, dtype=bool), ALL_ONES, np.uint64(0)
        ).astype(np.uint64)
        vals[self.pi_idx, :] = column[:, None]

    def eval(self, vals: np.ndarray, injections: Optional[Injections] = None) -> None:
        """One combinational evaluation pass, in place.

        The caller must have loaded PI and flop-output rows first.  With
        ``injections`` the stuck values are forced as each level is
        produced (level 0 = the loaded rows themselves).
        """
        if injections is not None:
            injections.apply(vals, 0)
        for lvl, ops in enumerate(self._levels, start=1):
            for op in ops:
                self._eval_group(vals, op)
            if injections is not None:
                injections.apply(vals, lvl)

    @staticmethod
    def _eval_group(vals: np.ndarray, op: _OpGroup) -> None:
        if op.kind == "and2":
            a = vals[op.src1]
            a ^= op.ia[:, None]
            b = vals[op.src2]
            b ^= op.ib[:, None]
            a &= b
            a ^= op.io[:, None]
            vals[op.dst] = a
        elif op.kind == "xor2":
            a = vals[op.src1]
            a ^= vals[op.src2]
            a ^= op.io[:, None]
            vals[op.dst] = a
        elif op.kind == "unary":
            a = vals[op.src1]
            a ^= op.io[:, None]
            vals[op.dst] = a
        else:  # const
            vals[op.dst, :] = op.io[:, None]

    # ------------------------------------------------------------------
    def map_pin(self, consumer: str, pin: int) -> Tuple[str, int]:
        """Translate an original-circuit pin through the decomposition map."""
        if self.pin_map is None:
            return (consumer, pin)
        return self.pin_map[(consumer, pin)]

    def index_of(self, name: str) -> int:
        return self.signal_index[name]
