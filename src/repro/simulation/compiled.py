"""Compiled bit-parallel circuit model.

A :class:`CompiledModel` turns a :class:`~repro.circuit.netlist.Circuit`
into flat numpy arrays so that one evaluation pass touches Python only
``O(levels * gate_types)`` times instead of ``O(gates)`` times.  Values
live in a ``(n_signals, n_words)`` ``uint64`` matrix; every bit of every
word is an independent machine copy (a fault machine for the parallel-fault
simulator, a pattern for the pattern-parallel simulator).

Fault injection is expressed as :class:`Injections`: per evaluation level,
``vals[sig, word] = (vals[sig, word] & and_mask) | or_mask`` applied with a
single fancy-indexed statement, so a stuck-at fault forces its bit both
when the signal is produced and before anything consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.levelize import levelize
from repro.circuit.library import ALL_ONES, GateType
from repro.circuit.netlist import Circuit
from repro.circuit.transform import decompose_to_two_input


def shard_word_ranges(n_words: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``n_words`` word-columns into balanced contiguous ranges.

    Returns at most ``n_shards`` half-open ``(lo, hi)`` ranges covering
    ``[0, n_words)``; empty ranges are dropped, so fewer shards than
    requested come back when there is not enough work.  Both the
    fault-sharded simulator and the PPSFP fault splitter use this so that
    every shard boundary is word-aligned: a 64-fault word never straddles
    two workers.
    """
    if n_words < 0:
        raise ValueError(f"n_words must be non-negative, got {n_words}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(n_shards, n_words) or (1 if n_words else 0)
    ranges: List[Tuple[int, int]] = []
    base, extra = divmod(n_words, max(n_shards, 1))
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass
class _OpGroup:
    """One fused kernel within a level.

    Three kernel kinds cover the whole gate library (De Morgan folds the
    OR family into AND with inversion masks):

    - ``and2``: ``dst = ((s1 ^ ia) & (s2 ^ ib)) ^ io``  (AND/NAND/OR/NOR)
    - ``xor2``: ``dst = (s1 ^ s2) ^ io``                 (XOR/XNOR)
    - ``unary``: ``dst = s1 ^ io``                       (BUF/NOT)
    - ``const``: ``dst = io``                            (CONST0/CONST1)

    Masks are per-gate uint64 columns (0 or all-ones).
    """

    kind: str
    dst: np.ndarray
    src1: Optional[np.ndarray] = None
    src2: Optional[np.ndarray] = None
    ia: Optional[np.ndarray] = None
    ib: Optional[np.ndarray] = None
    io: Optional[np.ndarray] = None


@dataclass
class Injections:
    """Stuck-value forcing, grouped by the level at which each signal is set.

    ``per_level[lvl]`` holds ``(sigs, words, and_masks, or_masks)`` arrays;
    level 0 covers primary inputs and flop outputs, level ``k`` covers
    signals produced by gate level ``k``.
    """

    per_level: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )

    @staticmethod
    def build(
        entries: Sequence[Tuple[int, int, int, int]],
        level_of_signal: Sequence[int],
    ) -> "Injections":
        """Build from ``(sig_index, word_index, bit_index, stuck_value)``.

        Entries hitting the same (signal, word) pair are merged into one
        mask so the fancy-indexed application never writes a location
        twice (numpy would keep only the last write).
        """
        merged: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for sig, word, bit, value in entries:
            sig, word, bit = int(sig), int(word), int(bit)
            and_mask, or_mask = merged.get((sig, word), (int(ALL_ONES), 0))
            bitmask = 1 << bit
            and_mask &= ~bitmask & int(ALL_ONES)
            if value:
                or_mask |= bitmask
            merged[(sig, word)] = (and_mask, or_mask)

        by_level: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for (sig, word), (and_mask, or_mask) in merged.items():
            lvl = level_of_signal[sig]
            by_level.setdefault(lvl, []).append((sig, word, and_mask, or_mask))

        inj = Injections()
        for lvl, rows in by_level.items():
            sigs = np.array([r[0] for r in rows], dtype=np.intp)
            words = np.array([r[1] for r in rows], dtype=np.intp)
            ands = np.array([r[2] for r in rows], dtype=np.uint64)
            ors = np.array([r[3] for r in rows], dtype=np.uint64)
            inj.per_level[lvl] = (sigs, words, ands, ors)
        return inj

    @staticmethod
    def build_whole_word(
        entries: Sequence[Tuple[int, int, int]],
        level_of_signal: Sequence[int],
    ) -> "Injections":
        """Build from ``(sig_index, word_index, stuck_value)``, forcing all
        64 bits of the word.  Used when a word models a single machine
        (e.g. the scalar faulty-machine simulation behind Table 1)."""
        by_level: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for sig, word, value in entries:
            lvl = level_of_signal[sig]
            or_mask = int(ALL_ONES) if value else 0
            by_level.setdefault(lvl, []).append((sig, word, 0, or_mask))
        inj = Injections()
        for lvl, rows in by_level.items():
            sigs = np.array([r[0] for r in rows], dtype=np.intp)
            words = np.array([r[1] for r in rows], dtype=np.intp)
            ands = np.array([r[2] for r in rows], dtype=np.uint64)
            ors = np.array([r[3] for r in rows], dtype=np.uint64)
            inj.per_level[lvl] = (sigs, words, ands, ors)
        return inj

    def apply(self, vals: np.ndarray, level: int) -> None:
        group = self.per_level.get(level)
        if group is None:
            return
        sigs, words, ands, ors = group
        vals[sigs, words] = (vals[sigs, words] & ands) | ors

    @property
    def max_level(self) -> int:
        return max(self.per_level, default=-1)


class CompiledModel:
    """A circuit compiled for bit-parallel evaluation.

    Signals are indexed ``0 .. n_signals-1``; the index arrays ``pi_idx``,
    ``q_idx``, ``d_idx`` and ``po_idx`` locate primary inputs, flop outputs
    (scan order), flop D nets (scan order) and primary outputs.
    """

    def __init__(self, circuit: Circuit, decompose: bool = True) -> None:
        pin_map = None
        if decompose and any(len(g.inputs) > 2 for g in circuit.iter_gates()):
            circuit, pin_map = decompose_to_two_input(circuit)
        self.circuit = circuit
        self.pin_map = pin_map  # None means identity

        lev = levelize(circuit)
        self.depth = lev.depth

        names: List[str] = circuit.inputs + circuit.state_vars + [
            g.output for g in lev.order
        ]
        self.signal_index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self.signal_names: List[str] = names
        self.n_signals = len(names)

        idx = self.signal_index
        self.pi_idx = np.array([idx[n] for n in circuit.inputs], dtype=np.intp)
        self.q_idx = np.array([idx[n] for n in circuit.state_vars], dtype=np.intp)
        self.d_idx = np.array([idx[n] for n in circuit.next_state_nets], dtype=np.intp)
        self.po_idx = np.array([idx[n] for n in circuit.outputs], dtype=np.intp)

        #: level of each signal (0 for PIs and flop outputs).
        self.level_of_signal = np.zeros(self.n_signals, dtype=np.intp)
        for name, lvl in lev.level_of.items():
            self.level_of_signal[idx[name]] = lvl

        self._levels: List[List[_OpGroup]] = []
        for level_gates in lev.levels:
            buckets: Dict[str, List[Gate]] = {"and2": [], "xor2": [], "unary": [], "const": []}
            for gate in level_gates:
                base = gate.gtype.base
                if base in (GateType.AND, GateType.OR):
                    buckets["and2"].append(gate)
                elif base is GateType.XOR:
                    buckets["xor2"].append(gate)
                elif base is GateType.BUF:
                    buckets["unary"].append(gate)
                else:
                    buckets["const"].append(gate)
            ops: List[_OpGroup] = []
            ones, zero = ALL_ONES, np.uint64(0)
            if buckets["and2"]:
                gates = buckets["and2"]
                # De Morgan: OR(a,b) = ~(~a & ~b), so the OR family gets
                # input inversion and flipped output inversion.
                ia, ib, io = [], [], []
                for g in gates:
                    is_or = g.gtype.base is GateType.OR
                    ia.append(ones if is_or else zero)
                    ib.append(ones if is_or else zero)
                    io.append(ones if is_or ^ g.gtype.is_inverting else zero)
                ops.append(
                    _OpGroup(
                        kind="and2",
                        dst=np.array([idx[g.output] for g in gates], dtype=np.intp),
                        src1=np.array([idx[g.inputs[0]] for g in gates], dtype=np.intp),
                        src2=np.array([idx[g.inputs[1]] for g in gates], dtype=np.intp),
                        ia=np.array(ia, dtype=np.uint64),
                        ib=np.array(ib, dtype=np.uint64),
                        io=np.array(io, dtype=np.uint64),
                    )
                )
            if buckets["xor2"]:
                gates = buckets["xor2"]
                ops.append(
                    _OpGroup(
                        kind="xor2",
                        dst=np.array([idx[g.output] for g in gates], dtype=np.intp),
                        src1=np.array([idx[g.inputs[0]] for g in gates], dtype=np.intp),
                        src2=np.array([idx[g.inputs[1]] for g in gates], dtype=np.intp),
                        io=np.array(
                            [ones if g.gtype.is_inverting else zero for g in gates],
                            dtype=np.uint64,
                        ),
                    )
                )
            if buckets["unary"]:
                gates = buckets["unary"]
                ops.append(
                    _OpGroup(
                        kind="unary",
                        dst=np.array([idx[g.output] for g in gates], dtype=np.intp),
                        src1=np.array([idx[g.inputs[0]] for g in gates], dtype=np.intp),
                        io=np.array(
                            [ones if g.gtype.is_inverting else zero for g in gates],
                            dtype=np.uint64,
                        ),
                    )
                )
            if buckets["const"]:
                gates = buckets["const"]
                ops.append(
                    _OpGroup(
                        kind="const",
                        dst=np.array([idx[g.output] for g in gates], dtype=np.intp),
                        io=np.array(
                            [
                                ones if g.gtype is GateType.CONST1 else zero
                                for g in gates
                            ],
                            dtype=np.uint64,
                        ),
                    )
                )
            self._levels.append(ops)

    # ------------------------------------------------------------------
    def alloc(self, n_words: int) -> np.ndarray:
        """A zeroed value matrix for ``n_words`` simulation words."""
        return np.zeros((self.n_signals, n_words), dtype=np.uint64)

    def set_inputs_from_bits(self, vals: np.ndarray, bits: Sequence[int]) -> None:
        """Drive every PI with a scalar bit, replicated across all words."""
        if len(bits) != len(self.pi_idx):
            raise ValueError(
                f"expected {len(self.pi_idx)} input bits, got {len(bits)}"
            )
        column = np.where(
            np.asarray(bits, dtype=bool), ALL_ONES, np.uint64(0)
        ).astype(np.uint64)
        vals[self.pi_idx, :] = column[:, None]

    def eval(self, vals: np.ndarray, injections: Optional[Injections] = None) -> None:
        """One combinational evaluation pass, in place.

        The caller must have loaded PI and flop-output rows first.  With
        ``injections`` the stuck values are forced as each level is
        produced (level 0 = the loaded rows themselves).
        """
        if injections is not None:
            injections.apply(vals, 0)
        for lvl, ops in enumerate(self._levels, start=1):
            for op in ops:
                self._eval_group(vals, op)
            if injections is not None:
                injections.apply(vals, lvl)

    @staticmethod
    def _eval_group(vals: np.ndarray, op: _OpGroup) -> None:
        if op.kind == "and2":
            a = vals[op.src1]
            a ^= op.ia[:, None]
            b = vals[op.src2]
            b ^= op.ib[:, None]
            a &= b
            a ^= op.io[:, None]
            vals[op.dst] = a
        elif op.kind == "xor2":
            a = vals[op.src1]
            a ^= vals[op.src2]
            a ^= op.io[:, None]
            vals[op.dst] = a
        elif op.kind == "unary":
            a = vals[op.src1]
            a ^= op.io[:, None]
            vals[op.dst] = a
        else:  # const
            vals[op.dst, :] = op.io[:, None]

    # ------------------------------------------------------------------
    def map_pin(self, consumer: str, pin: int) -> Tuple[str, int]:
        """Translate an original-circuit pin through the decomposition map."""
        if self.pin_map is None:
            return (consumer, pin)
        return self.pin_map[(consumer, pin)]

    def index_of(self, name: str) -> int:
        return self.signal_index[name]
