"""Multiple scan chains.

The schemes the paper compares against ([5] Tsai et al., [6] Huang et
al.) use *multiple* scan chains with a maximum chain length of 10, so a
complete scan operation costs at most 10 cycles, and the last flip-flop
of every chain is observed at every time unit.  This module provides the
state-level model of such a configuration:

- :class:`MultiChainConfig` -- a partition of the scan positions into
  chains (each with its own scan-in/scan-out pin),
- :func:`multi_shift` -- one limited/complete scan operation applied to
  all chains in parallel: ``k`` shift cycles move every chain by ``k``
  positions (chains shorter than ``k`` wrap fully through); the bits
  leaving each chain are observed,
- :func:`chain_tails` -- the per-cycle observation of the last flip-flop
  of every chain used by [5]/[6].

The paper's own scheme uses a single chain; this model exists so the
comparison baselines can be simulated faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.simulation.scan import bit_to_word


@dataclass(frozen=True)
class MultiChainConfig:
    """A partition of state positions into scan chains.

    ``chains[c]`` lists the state-vector positions on chain ``c`` in scan
    order (index 0 = scan-in end).  Positions must be disjoint; they need
    not cover every flop (partial scan composes with multiple chains).
    """

    chains: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen = set()
        for chain in self.chains:
            if not chain:
                raise ValueError("empty scan chain")
            for pos in chain:
                if pos in seen:
                    raise ValueError(f"position {pos} on two chains")
                seen.add(pos)

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    @property
    def max_length(self) -> int:
        return max((len(c) for c in self.chains), default=0)

    @property
    def scanned_positions(self) -> List[int]:
        return sorted(p for chain in self.chains for p in chain)

    def scan_cycles(self, k: int) -> int:
        """Clock cycles for a k-shift operation (chains shift together)."""
        return min(k, self.max_length) if k >= 0 else 0


def balanced_chains(n_sv: int, max_length: int = 10) -> MultiChainConfig:
    """Partition positions 0..n_sv-1 into chains of at most ``max_length``
    (the [5]/[6] configuration), keeping chain lengths balanced."""
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    if n_sv == 0:
        return MultiChainConfig(chains=())
    n_chains = -(-n_sv // max_length)
    base = n_sv // n_chains
    extra = n_sv % n_chains
    chains: List[Tuple[int, ...]] = []
    pos = 0
    for c in range(n_chains):
        size = base + (1 if c < extra else 0)
        chains.append(tuple(range(pos, pos + size)))
        pos += size
    return MultiChainConfig(chains=tuple(chains))


def multi_shift(
    state: np.ndarray,
    config: MultiChainConfig,
    k: int,
    fill_bits: Sequence[Sequence[int]],
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Shift every chain by ``k`` positions simultaneously.

    Args:
        state: ``(n_sv, n_words)`` state matrix.
        config: the chain partition.
        k: shift cycles (a chain of length < k receives extra fill bits
           and sheds all its original content).
        fill_bits: per chain, the ``k`` bits scanned in (first bit ends
           deepest, as in the single-chain model).

    Returns:
        ``(new_state, outs)`` with ``outs[c]`` of shape ``(k, n_words)``:
        the bits leaving chain ``c`` in shift order.  Bits that originate
        from fill (when ``k`` exceeds the chain length) are the fill bits
        passing straight through.
    """
    if len(fill_bits) != config.num_chains:
        raise ValueError("need one fill sequence per chain")
    new_state = state.copy()
    outs: List[np.ndarray] = []
    n_words = state.shape[1]
    for chain, fills in zip(config.chains, fill_bits):
        if len(fills) != k:
            raise ValueError(f"chain fill needs {k} bits, got {len(fills)}")
        length = len(chain)
        # Serial register semantics, one cycle at a time (k is small).
        content = [state[p].copy() for p in chain]
        out_rows = np.empty((k, n_words), dtype=np.uint64)
        for cycle in range(k):
            out_rows[cycle] = content[-1]
            content = [np.full(n_words, bit_to_word(fills[cycle]), dtype=np.uint64)] + content[:-1]
        for p, row in zip(chain, content):
            new_state[p] = row
        outs.append(out_rows)
    return new_state, outs


def chain_tails(state: np.ndarray, config: MultiChainConfig) -> np.ndarray:
    """The last flip-flop of every chain: the [5]/[6] per-cycle
    observation points.  Shape ``(num_chains, n_words)``."""
    rows = [chain[-1] for chain in config.chains]
    return state[rows, :]
