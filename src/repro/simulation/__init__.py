"""Bit-parallel logic simulation with functional scan.

- :mod:`repro.simulation.compiled` -- a circuit compiled into per-level,
  per-gate-type vectorized numpy kernels over ``uint64`` words (every bit
  of a word is an independent machine copy),
- :mod:`repro.simulation.scan` -- functional scan-chain operations,
  including the paper's *limited scan* shift,
- :mod:`repro.simulation.sequential` -- fault-free simulation of
  ``(SI, T)`` tests with limited-scan schedules,
- :mod:`repro.simulation.trace` -- Table 1 / Table 2 style trace records.
"""

from repro.simulation.compiled import CompiledModel, Injections
from repro.simulation.scan import (
    bit_to_word,
    full_scan_state,
    limited_shift,
    word_to_bit,
)
from repro.simulation.sequential import simulate_test
from repro.simulation.trace import TestTrace, TimingRow

__all__ = [
    "CompiledModel",
    "Injections",
    "limited_shift",
    "full_scan_state",
    "bit_to_word",
    "word_to_bit",
    "simulate_test",
    "TestTrace",
    "TimingRow",
]
