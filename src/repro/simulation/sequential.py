"""Fault-free sequential simulation of ``(SI, T)`` tests.

This is the reference simulation path: one machine copy, scalar in/out,
with optional limited-scan schedules.  The parallel-fault simulator in
:mod:`repro.faults.fault_sim` uses the same compiled model and scan
primitives; this module is what experiments and traces (Tables 1 and 2)
are built from, and what the fault simulator's results are checked against
in the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.compiled import CompiledModel, Injections
from repro.simulation.scan import (
    full_scan_state,
    limited_shift,
    state_to_string,
    word_to_bit,
)
from repro.simulation.trace import TestTrace, bits_to_string

#: A limited-scan schedule: for each time unit ``u`` of the test, the pair
#: ``(shift_amount, fill_bits)``; ``(0, [])`` means no limited scan at u.
Schedule = Sequence[Tuple[int, Sequence[int]]]


def simulate_test(
    model: CompiledModel,
    si_bits: Sequence[int],
    vectors: Sequence[Sequence[int]],
    schedule: Optional[Schedule] = None,
    injections: Optional[Injections] = None,
) -> TestTrace:
    """Simulate one test and return its :class:`TestTrace`.

    Args:
        model: compiled circuit model.
        si_bits: the scanned-in initial state (position 0 = left end).
        vectors: the primary input vectors ``T(0) .. T(L-1)``.
        schedule: optional limited-scan schedule (see :data:`Schedule`);
            the shift at time unit ``u`` happens *before* vector ``u`` is
            applied, per the paper's Table 1(b).
        injections: optional stuck-value injections, which turns this into
            a single-fault faulty-machine simulation (used by tests and by
            the Table 1 example where the faulty column is shown).

    Returns:
        The complete trace, including states, outputs, shift amounts and
        scanned-out bits.
    """
    n_sv = len(model.q_idx)
    if len(si_bits) != n_sv:
        raise ValueError(f"SI has {len(si_bits)} bits, circuit has {n_sv}")
    if schedule is not None and len(schedule) != len(vectors):
        raise ValueError("schedule length must equal the number of vectors")

    state = full_scan_state(n_sv, si_bits, n_words=1)
    vals = model.alloc(n_words=1)

    trace = TestTrace(
        si=bits_to_string(list(si_bits)),
        vectors=[bits_to_string(list(v)) for v in vectors],
    )

    for u, vector in enumerate(vectors):
        shift_k, fill = (0, ())
        if schedule is not None:
            shift_k, fill = schedule[u]
        pre_shift = None
        scanned: List[int] = []
        if shift_k > 0:
            pre_shift = state_to_string(state)
            state, out_words = limited_shift(state, shift_k, list(fill))
            scanned = [word_to_bit(w) for w in out_words[:, 0]]
        trace.pre_shift_states.append(pre_shift)
        trace.shifts.append(shift_k)
        trace.scanout.append(scanned)
        trace.states.append(state_to_string(state))

        model.set_inputs_from_bits(vals, list(vector))
        vals[model.q_idx, :] = state
        model.eval(vals, injections=injections)

        po_bits = [word_to_bit(vals[i, 0]) for i in model.po_idx]
        trace.outputs.append(bits_to_string(po_bits))
        state = vals[model.d_idx, :].copy()

    trace.states.append(state_to_string(state))
    return trace


def simulate_state_sequence(
    model: CompiledModel,
    si_bits: Sequence[int],
    vectors: Sequence[Sequence[int]],
) -> List[str]:
    """Just the state strings ``S(0) .. S(L)`` (convenience for tests)."""
    return simulate_test(model, si_bits, vectors).states
