"""Structured lint results: :class:`LintReport` and :class:`LintError`.

A report is the full outcome of one lint run: every finding, the
suppressions that were active, and renderers for both humans
(:meth:`LintReport.render`) and machines (:meth:`LintReport.to_json`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.rules import LintIssue, Severity


@dataclass
class LintReport:
    """Outcome of linting one circuit."""

    circuit_name: str
    issues: List[LintIssue] = field(default_factory=list)
    suppressed: Tuple[str, ...] = ()

    @property
    def errors(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    @property
    def infos(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity is Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(i.severity is Severity.ERROR for i in self.issues)

    def by_rule(self, rule_id: str) -> List[LintIssue]:
        return [i for i in self.issues if i.rule_id == rule_id]

    def fired_rules(self) -> List[str]:
        """Rule IDs with at least one finding, in rule-ID order."""
        return sorted({i.rule_id for i in self.issues})

    def counts_line(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s),"
            f" {len(self.infos)} info"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit_name,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": list(self.suppressed),
            "issues": [i.to_dict() for i in self.issues],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable report, one line per finding."""
        lines = [f"{self.circuit_name}: {self.counts_line()}"]
        for issue in sorted(
            self.issues, key=lambda i: (-int(i.severity), i.rule_id)
        ):
            lines.append(
                f"  [{issue.rule_id}][{issue.severity.label}] {issue.message}"
            )
        if self.suppressed:
            lines.append(f"  (suppressed: {', '.join(self.suppressed)})")
        return "\n".join(lines)


class LintError(ValueError):
    """A lint gate configured to fail found ERROR-severity issues."""

    def __init__(self, report: LintReport) -> None:
        detail = "; ".join(i.message for i in report.errors)
        super().__init__(
            f"circuit {report.circuit_name} failed design-rule lint: {detail}"
        )
        self.report = report
