"""Differential validation of COP estimates against measured detection.

The COP sweeps (:mod:`repro.analysis.cop`) predict each fault's
single-pattern detection probability from structure alone; the compiled
simulator measures the same quantity by brute force
(:meth:`~repro.faults.fault_sim.FaultSimulator.measure_detection_counts`).
This module cross-checks the two, the way the repo's other numeric
engines are guarded (serial vs. sharded simulation, python vs. compiled
kernels): not for exact equality -- COP assumes independent gate inputs,
which reconvergent fanout violates -- but for the properties the
consumers rely on:

- **rank agreement** (Spearman): Procedure 2's testability bias and the
  T005/T006 lint rules only use the *ordering* of faults and state bits;
- **bucket tolerance**: estimates within a decade of the measurement for
  well-measured faults;
- **RPR soundness**: a fault no random pattern detects must be flagged
  random-pattern resistant, or the lint rules would understate risk.

The soundness gate is only meaningful over *detectable* faults:
redundant faults have true detection probability exactly zero, which
COP's independence assumption cannot represent (it assigns them the
probability the fault site would be detected if its reconvergent
context were uncorrelated).  Redundancy identification is PODEM's job
(:mod:`repro.atpg.classify`), and every consumer of the COP signal --
Procedure 2's target list, the T-rules -- already works on the
classified detectable set, so :func:`validate_cop` filters the fault
list the same way by default.

Thresholds live in the differential test suite
(``tests/test_cop_differential.py``), which runs ~20 seeded small
circuits through :func:`validate_cop`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.cop import DEFAULT_RPR_THRESHOLD, analyze_circuit
from repro.atpg.classify import classify_faults
from repro.circuit.netlist import Circuit
from repro.faults.fault_sim import FaultSimulator
from repro.faults.model import Fault


def rank_with_ties(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based); tied values share their mean rank."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    sorted_vals = values[order]
    # Tie-group boundaries over the sorted array.
    boundaries = np.flatnonzero(np.diff(sorted_vals) != 0) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(values)]))
    for lo, hi in zip(starts, stops):
        ranks[order[lo:hi]] = (lo + hi + 1) / 2.0  # mean of ranks lo+1..hi
    return ranks


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation with average-rank tie handling.

    Degenerate inputs (one value constant) correlate as 1.0 when both
    are constant -- identical trivial orderings -- and 0.0 otherwise.
    """
    ra, rb = rank_with_ties(a), rank_with_ties(b)
    sa, sb = ra.std(), rb.std()
    if sa == 0.0 or sb == 0.0:
        return 1.0 if sa == sb else 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


@dataclass
class ValidationReport:
    """Agreement metrics between COP estimates and measured detection."""

    circuit_name: str
    n_faults: int
    n_patterns: int
    #: Rank correlation between estimated and measured detection
    #: probability over the whole collapsed fault list.
    spearman: float
    #: Fraction of well-measured faults (>= ``min_count`` detections)
    #: whose estimate is within one decade of the measurement.
    within_decade: float
    min_count: int
    n_measured_undetected: int
    #: Faults measured undetected whose estimate is *not* below the RPR
    #: threshold -- the soundness violations (must be 0).
    undetected_not_rpr: int
    n_rpr: int
    #: Faults PODEM proved redundant (excluded from the comparison).
    n_undetectable: int = 0
    #: Faults PODEM gave up on (also excluded; rare at small scale).
    n_aborted: int = 0

    @property
    def undetected_all_rpr(self) -> bool:
        return self.undetected_not_rpr == 0

    def summary(self) -> str:
        return (
            f"{self.circuit_name}: {self.n_faults} faults, "
            f"spearman={self.spearman:.3f}, "
            f"within-decade={self.within_decade:.0%} "
            f"(count >= {self.min_count}), "
            f"undetected {self.n_measured_undetected} "
            f"(not flagged RPR: {self.undetected_not_rpr}), "
            f"RPR flagged {self.n_rpr}, "
            f"excluded {self.n_undetectable} redundant"
            + (f" + {self.n_aborted} aborted" if self.n_aborted else "")
        )


def validate_cop(
    circuit: Circuit,
    faults: Optional[Sequence[Fault]] = None,
    n_patterns: int = 10_000,
    seed: int = 0,
    rpr_threshold: float = DEFAULT_RPR_THRESHOLD,
    min_count: int = 10,
    detectable_only: bool = True,
) -> ValidationReport:
    """Cross-check COP estimates against the simulator on ``circuit``.

    ``faults`` defaults to the collapsed fault list (matching
    :func:`~repro.analysis.cop.analyze_circuit`), narrowed to the
    PODEM-proven detectable set when ``detectable_only`` is set (see the
    module docstring for why redundant faults are out of scope).
    ``min_count`` bounds the sampling noise admitted into the
    bucket-tolerance metric: a fault detected 10+ times has a measured
    probability good to within ~60%, well inside the one-decade bucket.
    """
    n_undetectable = 0
    n_aborted = 0
    if detectable_only:
        classification = classify_faults(circuit, faults=faults)
        faults = classification.target_faults
        n_undetectable = len(classification.undetectable)
        n_aborted = len(classification.aborted)
    analysis = analyze_circuit(
        circuit, faults=faults, rpr_threshold=rpr_threshold
    )
    faults = analysis.faults
    counts = FaultSimulator(circuit).measure_detection_counts(
        faults, n_patterns=n_patterns, seed=seed
    )
    p_measured = counts / float(n_patterns)
    p_est = analysis.p_detect

    undetected = counts == 0
    not_rpr = undetected & ~analysis.rpr_mask

    solid = counts >= min_count
    if solid.any():
        ratio = np.abs(
            np.log10(np.maximum(p_est[solid], 1e-300))
            - np.log10(p_measured[solid])
        )
        within = float((ratio <= 1.0).mean())
    else:
        within = 1.0

    return ValidationReport(
        circuit_name=circuit.name,
        n_faults=len(faults),
        n_patterns=n_patterns,
        spearman=spearman(p_est, p_measured),
        within_decade=within,
        min_count=min_count,
        n_measured_undetected=int(undetected.sum()),
        undetected_not_rpr=int(not_rpr.sum()),
        n_rpr=analysis.num_rpr,
        n_undetectable=n_undetectable,
        n_aborted=n_aborted,
    )
