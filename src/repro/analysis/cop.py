"""Vectorized COP testability engine over the struct-of-arrays netlist.

COP-style analysis assigns every net two probabilities under uniform
random patterns on the primary inputs and the (full-scan) state:

- ``C1(net)`` -- probability the net carries logic 1,
- ``O(net)``  -- probability a value change on the net propagates to an
  observation point (a primary output or a flop D pin, which full scan
  makes directly observable).

Both are computed by single levelized numpy sweeps over
:class:`~repro.circuit.netlist.NetlistArrays` -- one forward pass for
controllability, one backward for observability, no per-gate Python
objects -- so a 20k-gate ISCAS-89 circuit analyzes in well under a
second.  The recurrences treat gate inputs as independent (exact on
fanout-free cones, an approximation under reconvergent fanout):

    AND:  C1 = prod C1_i              OR:  C1 = 1 - prod (1 - C1_i)
    XOR:  C1 = (1 - prod (1 - 2 C1_i)) / 2     (odd-parity closed form)
    inverting gates: 1 - base;  CONST0/CONST1: 0 / 1

    O(pin i of AND gate) = O(out) * prod_{j != i} C1_j
    O(pin i of OR  gate) = O(out) * prod_{j != i} (1 - C1_j)
    O(pin i of XOR/BUF)  = O(out)
    O(stem) = max over fan-out branch pins (plus 1 if PO / flop D)

A stuck-at-``v`` fault is detected by one random pattern with probability
``p = C_{1-v}(site) * O(line)``; faults with ``p`` below a threshold are
random-pattern resistant (RPR) -- exactly the population the paper's
limited-scan schedules exist to reach.  :func:`analyze_circuit` packages
the per-fault estimates, expected test length, and a per-scan-position
*benefit* ranking (which state bits the RPR faults depend on for control
or observation) into a :class:`TestabilityAnalysis` report.  The sweeps
are keyed by ``circuit_fingerprint`` so a
:class:`~repro.circuit.cache.CompileCache` memoizes them across
sessions, same as the simulator's compiled state.

The SCOAP machinery in :mod:`repro.atpg.scoap` answers the dual
*deterministic* question (how many backtrace assignments a PODEM-style
engine needs); COP answers the *probabilistic* one (how long random
patterns take), which is the signal Procedure 2's
``candidate_bias="testability"`` mode consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.levelize import LevelArrays, levelize_arrays
from repro.circuit.library import CODE_GATE, GateType
from repro.circuit.netlist import Circuit, NetlistArrays

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.cache import CompileCache
    from repro.faults.model import Fault

#: Bump whenever the cached sweep-array layout changes incompatibly;
#: part of the compile-cache key (see :func:`cop_cache_key`).
COP_FORMAT_VERSION = 1

#: Detection probability below which a fault counts as random-pattern
#: resistant.  At p = 1e-3 the expected wait for one detecting pattern is
#: 1000 patterns -- a fault the paper's default budget (N=64 patterns per
#: test set) is unlikely to reach without a limited-scan schedule.
DEFAULT_RPR_THRESHOLD = 1e-3

#: JSON schema version of :meth:`TestabilityAnalysis.to_dict` payloads.
ANALYZE_SCHEMA_VERSION = 1

# Gate "kinds" the sweeps branch on, derived from GateType.base.  BUF and
# NOT fold into the AND kind: a product over one input is the input, and
# an empty "other inputs" product is 1 -- both recurrences degenerate
# correctly.
_K_AND, _K_OR, _K_XOR, _K_C0, _K_C1 = range(5)
_KIND_OF_BASE = {
    GateType.AND: _K_AND,
    GateType.BUF: _K_AND,
    GateType.OR: _K_OR,
    GateType.XOR: _K_XOR,
    GateType.CONST0: _K_C0,
    GateType.CONST1: _K_C1,
}
#: Gate code -> sweep kind, indexable by the int32 ``gate_type`` array.
_KIND = np.array([_KIND_OF_BASE[gt.base] for gt in CODE_GATE], dtype=np.int8)
#: Gate code -> output inversion flag.
_INVERTS = np.array([gt.is_inverting for gt in CODE_GATE], dtype=bool)


def cop_cache_key(fingerprint: str) -> str:
    """Compile-cache key of the COP sweep arrays for a circuit."""
    return f"{fingerprint}-cop{COP_FORMAT_VERSION}"


@dataclass
class CopMeasures:
    """Raw per-net/per-pin sweep results (pure function of structure).

    Attributes:
        c1: ``float64[n_nets]`` 1-controllability per net.
        obs: ``float64[n_nets]`` observability of each net's stem.
        edge_obs: ``float64[n_edges]`` observability through each gate
            input pin, aligned with ``NetlistArrays.fanin``.
        ctrl_support: ``uint64[n_nets, W]`` packed bitset: bit ``k`` set
            iff the net combinationally depends on state bit ``k``.
            ``None`` when the circuit has no flip-flops.
        obs_support: ``uint64[n_nets, W]`` packed bitset: bit ``k`` set
            iff the net structurally reaches flop ``k``'s D pin.
    """

    c1: np.ndarray
    obs: np.ndarray
    edge_obs: np.ndarray
    ctrl_support: Optional[np.ndarray]
    obs_support: Optional[np.ndarray]

    def to_state(self) -> Dict[str, object]:
        """Compile-cache payload (flat arrays only, no object graphs)."""
        return {
            "c1": self.c1,
            "obs": self.obs,
            "edge_obs": self.edge_obs,
            "ctrl_support": self.ctrl_support,
            "obs_support": self.obs_support,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CopMeasures":
        return cls(**state)  # type: ignore[arg-type]


class _SweepPlan:
    """Per-level CSR gathers shared by every sweep over one netlist."""

    def __init__(self, arrays: NetlistArrays, levels: LevelArrays) -> None:
        self.arrays = arrays
        first_gate = arrays.first_gate
        self.levels: List[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        off = levels.level_offset
        for k in range(levels.depth):
            gs = levels.order[off[k] : off[k + 1]].astype(np.int64)
            edges, counts, seg, edge_pos = arrays.gather_fanin(gs)
            outs = first_gate + gs
            self.levels.append((gs, edges, counts, seg, edge_pos, outs))


def _segment_reduce(ufunc, values, seg, n_segments, empty):
    """``ufunc.reduceat`` over CSR segments, tolerating empty segments.

    numpy's ``reduceat`` misbehaves on empty segments (it returns
    ``a[i]``, or raises when ``i == len(a)``), so the reduction runs over
    the non-empty segments only -- consecutive non-empty starts bound
    exactly the right spans -- and empty ones (zero-arity CONST gates)
    are filled with the identity ``empty``.
    """
    counts = seg[1:] - seg[:-1]
    nonempty = counts > 0
    if nonempty.all():
        return ufunc.reduceat(values, seg[:-1])
    out = np.full(n_segments, empty, dtype=values.dtype)
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(values, seg[:-1][nonempty])
    return out


def compute_cop(
    arrays: NetlistArrays,
    levels: Optional[LevelArrays] = None,
    supports: bool = True,
) -> CopMeasures:
    """Run the COP sweeps over ``arrays`` (see the module docstring).

    ``supports=False`` skips the state-bit support bitsets (the only part
    whose memory grows with ``n_ff``); controllability/observability are
    always computed.
    """
    levels = levels if levels is not None else levelize_arrays(arrays)
    plan = _SweepPlan(arrays, levels)
    n_nets = arrays.n_nets
    gate_type = arrays.gate_type

    # ---- forward sweep: 1-controllability -----------------------------
    c1 = np.zeros(n_nets, dtype=np.float64)
    c1[: arrays.first_gate] = 0.5  # PIs and scanned state: fair coins
    for gs, edges, counts, seg, _epos, outs in plan.levels:
        kinds = _KIND[gate_type[gs]]
        ekinds = np.repeat(kinds, counts)
        ec = c1[edges]
        val = np.where(
            ekinds == _K_OR,
            1.0 - ec,
            np.where(ekinds == _K_XOR, 1.0 - 2.0 * ec, ec),
        )
        agg = _segment_reduce(np.multiply, val, seg, len(gs), 1.0)
        base = np.where(
            kinds == _K_OR,
            1.0 - agg,
            np.where(kinds == _K_XOR, (1.0 - agg) / 2.0, agg),
        )
        base = np.where(kinds == _K_C0, 0.0, base)
        base = np.where(kinds == _K_C1, 1.0, base)
        c1[outs] = np.where(_INVERTS[gate_type[gs]], 1.0 - base, base)

    # ---- backward sweep: observability --------------------------------
    # Observation points seed the sweep; every consumer of a net sits at
    # a strictly higher level, so descending level order finalizes each
    # gate's output observability before its input pins are derived.
    obs = np.zeros(n_nets, dtype=np.float64)
    obs[arrays.po] = 1.0
    obs[arrays.flop_d] = 1.0
    edge_obs = np.zeros(len(arrays.fanin), dtype=np.float64)
    for gs, edges, counts, seg, epos, outs in reversed(plan.levels):
        if len(edges) == 0:
            continue
        kinds = _KIND[gate_type[gs]]
        ekinds = np.repeat(kinds, counts)
        ec = c1[edges]
        # Per-pin "this pin is non-controlling" probability; XOR/BUF pins
        # always propagate, so their weight is 1.
        w = np.where(
            ekinds == _K_AND, ec, np.where(ekinds == _K_OR, 1.0 - ec, 1.0)
        )
        # prod_{j != i} w_j with exact zero handling: one blocked sibling
        # pin kills propagation for every *other* pin, two kill all.
        zero = w == 0.0
        nz = _segment_reduce(np.add, zero.astype(np.int64), seg, len(gs), 0)
        prodnz = _segment_reduce(
            np.multiply, np.where(zero, 1.0, w), seg, len(gs), 1.0
        )
        g_nz = np.repeat(nz, counts)
        g_prod = np.repeat(prodnz, counts)
        others = np.zeros(len(edges), dtype=np.float64)
        m = g_nz == 0
        others[m] = g_prod[m] / w[m]
        m = (g_nz == 1) & zero
        others[m] = g_prod[m]
        eo = np.repeat(obs[outs], counts) * others
        edge_obs[epos] = eo
        np.maximum.at(obs, edges, eo)

    # ---- state-bit support bitsets ------------------------------------
    ctrl_support = obs_support = None
    if supports and arrays.n_ff > 0:
        ctrl_support, obs_support = _support_sweeps(arrays, plan)

    return CopMeasures(
        c1=c1,
        obs=obs,
        edge_obs=edge_obs,
        ctrl_support=ctrl_support,
        obs_support=obs_support,
    )


def _support_sweeps(
    arrays: NetlistArrays, plan: _SweepPlan
) -> Tuple[np.ndarray, np.ndarray]:
    """Packed reachability bitsets: net <-> scan-cell dependence.

    ``ctrl_support[net]`` has bit ``k`` set iff state bit ``k`` is in the
    net's combinational fan-in cone; ``obs_support[net]`` iff the net
    reaches flop ``k``'s D pin through some combinational path.  Both are
    structural (no probabilities), one OR-reduce per level.
    """
    n_ff = arrays.n_ff
    n_words = (n_ff + 63) // 64
    k = np.arange(n_ff, dtype=np.int64)
    bit = np.left_shift(np.uint64(1), (k % 64).astype(np.uint64))

    ctrl = np.zeros((arrays.n_nets, n_words), dtype=np.uint64)
    ctrl[arrays.n_pi + k, k // 64] = bit
    for gs, edges, counts, seg, _epos, outs in plan.levels:
        if len(edges) == 0:
            ctrl[outs] = 0
            continue
        nonempty = counts > 0
        red = np.zeros((len(gs), n_words), dtype=np.uint64)
        red[nonempty] = np.bitwise_or.reduceat(
            ctrl[edges], seg[:-1][nonempty], axis=0
        )
        ctrl[outs] = red

    obs_rows = np.zeros((n_ff, n_words), dtype=np.uint64)
    obs_rows[k, k // 64] = bit
    osup = np.zeros((arrays.n_nets, n_words), dtype=np.uint64)
    np.bitwise_or.at(osup, arrays.flop_d.astype(np.int64), obs_rows)
    for gs, edges, counts, _seg, _epos, outs in reversed(plan.levels):
        if len(edges) == 0:
            continue
        np.bitwise_or.at(
            osup, edges, np.repeat(osup[outs], counts, axis=0)
        )
    return ctrl, osup


def fault_detection_probabilities(
    arrays: NetlistArrays,
    measures: CopMeasures,
    faults: Sequence["Fault"],
) -> np.ndarray:
    """Estimated single-pattern detection probability per fault.

    ``p = C_{1-v}(site) * O(line)`` where the line is the fault's stem or
    the specific consumer pin for a branch fault; a branch on a flop's D
    pin is directly scanned out, so its observability is 1.
    """
    index = {name: i for i, name in enumerate(arrays.names)}
    first_gate = arrays.first_gate
    n_pi, n_ff = arrays.n_pi, arrays.n_ff
    offsets = arrays.fanin_offset
    p = np.empty(len(faults), dtype=np.float64)
    for i, fault in enumerate(faults):
        site = index[fault.site]
        activation = 1.0 - measures.c1[site] if fault.value else measures.c1[site]
        if fault.consumer is None:
            observe = measures.obs[site]
        else:
            cix = index[fault.consumer]
            if n_pi <= cix < n_pi + n_ff:
                observe = 1.0  # flop D pin: scanned out directly
            else:
                observe = measures.edge_obs[offsets[cix - first_gate] + fault.pin]
        p[i] = activation * observe
    return p


def state_bit_benefit(
    arrays: NetlistArrays,
    measures: CopMeasures,
    faults: Sequence["Fault"],
    rpr_mask: np.ndarray,
) -> np.ndarray:
    """Score each scan position by how much the RPR faults depend on it.

    Every RPR fault contributes one unit of credit, split half toward
    *controlling* its activation (spread evenly over the state bits in
    the site's fan-in cone) and half toward *observing* it (spread over
    the scan cells its effect can reach; a branch fault on a flop D pin
    credits that flop alone).  High-benefit positions are the state bits
    a limited-scan schedule should randomize or observe first -- the
    ranking ``candidate_bias="testability"`` consumes.
    """
    n_ff = arrays.n_ff
    benefit = np.zeros(n_ff, dtype=np.float64)
    if n_ff == 0 or measures.ctrl_support is None or not rpr_mask.any():
        return benefit
    index = {name: i for i, name in enumerate(arrays.names)}
    n_pi = arrays.n_pi

    crows: List[int] = []
    orows: List[int] = []  # -1: no row, credit a single flop instead
    direct_flop: List[int] = []
    for i in np.flatnonzero(rpr_mask):
        fault = faults[i]
        site = index[fault.site]
        crows.append(site)
        if fault.consumer is None:
            orows.append(site)
        else:
            cix = index[fault.consumer]
            if n_pi <= cix < n_pi + n_ff:
                orows.append(-1)
                direct_flop.append(cix - n_pi)
            else:
                orows.append(cix)

    for rows_src, selector, weight in (
        (measures.ctrl_support, np.asarray(crows, dtype=np.int64), 0.5),
        (
            measures.obs_support,
            np.asarray([r for r in orows if r >= 0], dtype=np.int64),
            0.5,
        ),
    ):
        for lo in range(0, len(selector), 2048):
            rows = rows_src[selector[lo : lo + 2048]]
            bits = np.unpackbits(
                rows.view(np.uint8), axis=1, bitorder="little"
            )[:, :n_ff].astype(np.float64)
            counts = bits.sum(axis=1)
            m = counts > 0
            if m.any():
                benefit += weight * (bits[m] / counts[m, None]).sum(axis=0)
    for k in direct_flop:
        benefit[k] += 0.5
    return benefit


@dataclass
class TestabilityAnalysis:
    """Full static testability report for one circuit.

    Everything ``repro analyze`` prints, the T005/T006 lint rules read,
    and the Procedure 2 testability bias consumes.  Faults and
    ``p_detect`` are index-aligned.
    """

    circuit_name: str
    fingerprint: str
    n_pi: int
    n_ff: int
    n_po: int
    n_gates: int
    n_nets: int
    rpr_threshold: float
    confidence: float
    faults: List["Fault"]
    p_detect: np.ndarray
    benefit: np.ndarray
    state_vars: List[str]
    measures: CopMeasures = field(repr=False)
    cache_hit: bool = False

    # ---- derived views ------------------------------------------------
    @property
    def rpr_mask(self) -> np.ndarray:
        return self.p_detect < self.rpr_threshold

    @property
    def num_rpr(self) -> int:
        return int(self.rpr_mask.sum())

    @property
    def num_untestable(self) -> int:
        """Faults with estimated detection probability exactly zero."""
        return int((self.p_detect == 0.0).sum())

    def rpr_faults(self) -> List[Tuple["Fault", float]]:
        """RPR faults with their estimates, hardest (smallest p) first."""
        idx = np.flatnonzero(self.rpr_mask)
        idx = idx[np.argsort(self.p_detect[idx], kind="stable")]
        return [(self.faults[i], float(self.p_detect[i])) for i in idx]

    def expected_test_length(self) -> Optional[int]:
        """Random patterns until every estimated-reachable fault is
        detected with probability ``confidence`` -- the static analogue
        of the paper's test-length tables.  ``None`` for the degenerate
        no-reachable-fault circuit."""
        p = self.p_detect[self.p_detect > 0.0]
        if len(p) == 0:
            return None
        worst = float(p.min())
        if worst >= 1.0:
            return 1
        return int(math.ceil(math.log1p(-self.confidence) / math.log1p(-worst)))

    def benefit_ranking(self) -> List[Tuple[int, str, float]]:
        """Scan positions sorted by descending benefit: ``(position,
        state-var name, score)``.  Position 0 is the scan-in end."""
        order = np.argsort(-self.benefit, kind="stable")
        return [
            (int(k), self.state_vars[k], float(self.benefit[k])) for k in order
        ]

    # ---- rendering ----------------------------------------------------
    def to_dict(self, top_k: int = 10) -> Dict[str, object]:
        rpr = self.rpr_faults()
        return {
            "schema": ANALYZE_SCHEMA_VERSION,
            "circuit": self.circuit_name,
            "fingerprint": self.fingerprint,
            "nets": {
                "pi": self.n_pi,
                "ff": self.n_ff,
                "po": self.n_po,
                "gates": self.n_gates,
                "total": self.n_nets,
            },
            "rpr_threshold": self.rpr_threshold,
            "faults": {
                "collapsed": len(self.faults),
                "rpr": self.num_rpr,
                "untestable": self.num_untestable,
            },
            "detection_probability": {
                "min": float(self.p_detect.min()) if len(self.faults) else None,
                "median": (
                    float(np.median(self.p_detect)) if len(self.faults) else None
                ),
                "max": float(self.p_detect.max()) if len(self.faults) else None,
            },
            "expected_test_length": {
                "confidence": self.confidence,
                "patterns": self.expected_test_length(),
            },
            "top_rpr_faults": [
                {"fault": str(f), "p": p} for f, p in rpr[:top_k]
            ],
            "state_bit_benefit": [
                {"position": pos, "net": net, "score": score}
                for pos, net, score in self.benefit_ranking()[:top_k]
                if score > 0.0
            ],
            "cache_hit": self.cache_hit,
        }

    def render(self, top_k: int = 10) -> str:
        lines = [
            f"{self.circuit_name}: {self.n_pi} PI, {self.n_ff} FF, "
            f"{self.n_po} PO, {self.n_gates} gates",
            f"  collapsed faults: {len(self.faults)}; "
            f"RPR (p < {self.rpr_threshold:g}): {self.num_rpr}; "
            f"untestable (p = 0): {self.num_untestable}",
        ]
        length = self.expected_test_length()
        if length is None:
            shown = "n/a"
        elif length > 10**6:
            shown = f"{float(length):.2e} patterns"
        else:
            shown = f"{length} patterns"
        lines.append(
            f"  expected test length ({self.confidence:.0%} confidence): {shown}"
        )
        rpr = self.rpr_faults()
        if rpr:
            lines.append(f"  hardest faults (top {min(top_k, len(rpr))}):")
            for fault, p in rpr[:top_k]:
                lines.append(f"    {fault}  p={p:.3e}")
        ranking = [r for r in self.benefit_ranking()[:top_k] if r[2] > 0.0]
        if ranking:
            lines.append("  state-bit benefit (scan these first):")
            for pos, net, score in ranking:
                lines.append(f"    position {pos} ({net})  score={score:.2f}")
        return "\n".join(lines)


def analyze_circuit(
    circuit: Circuit,
    faults: Optional[Sequence["Fault"]] = None,
    rpr_threshold: float = DEFAULT_RPR_THRESHOLD,
    confidence: float = 0.95,
    cache: Optional["CompileCache"] = None,
) -> TestabilityAnalysis:
    """Static testability analysis of ``circuit``.

    ``faults`` defaults to the collapsed fault list.  With a
    :class:`~repro.circuit.cache.CompileCache` the structure-dependent
    sweep arrays are loaded/stored under :func:`cop_cache_key`; the
    fault-dependent derivations (cheap) always run.

    Raises ``KeyError`` (undriven nets) or
    :class:`~repro.circuit.levelize.CombinationalCycleError` on
    structurally broken circuits, same as compilation would.
    """
    from repro.robustness.checkpoint import circuit_fingerprint

    arrays = circuit.to_arrays()
    fingerprint = circuit_fingerprint(circuit)
    measures = None
    cache_hit = False
    if cache is not None:
        state = cache.load(cop_cache_key(fingerprint))
        if state is not None:
            measures = CopMeasures.from_state(state)
            cache_hit = True
    if measures is None:
        measures = compute_cop(arrays)
        if cache is not None:
            cache.store(cop_cache_key(fingerprint), measures.to_state())

    if faults is None:
        from repro.faults.collapse import collapse_faults

        faults = collapse_faults(circuit)
    faults = list(faults)
    p_detect = fault_detection_probabilities(arrays, measures, faults)
    rpr_mask = p_detect < rpr_threshold
    benefit = state_bit_benefit(arrays, measures, faults, rpr_mask)
    return TestabilityAnalysis(
        circuit_name=circuit.name,
        fingerprint=fingerprint,
        n_pi=arrays.n_pi,
        n_ff=arrays.n_ff,
        n_po=arrays.n_po,
        n_gates=arrays.n_gates,
        n_nets=arrays.n_nets,
        rpr_threshold=rpr_threshold,
        confidence=confidence,
        faults=faults,
        p_detect=p_detect,
        benefit=benefit,
        state_vars=circuit.state_vars,
        measures=measures,
        cache_hit=cache_hit,
    )


def testability_d1_order(
    circuit: Circuit,
    d1_values: Sequence[int],
    target_faults: Optional[Sequence["Fault"]] = None,
    rpr_threshold: float = DEFAULT_RPR_THRESHOLD,
    cache: Optional["CompileCache"] = None,
) -> Tuple[int, ...]:
    """Reorder Procedure 2's D1 preference list from the benefit ranking.

    A limited scan of ``D1`` shifts loads fresh random bits into scan
    positions ``0 .. D1-1`` (the scan-in end); deeper positions only
    receive shifted old state, so randomizing the state bit at position
    ``p`` needs ``D1 >= p + 1`` (saturated at the largest value on
    offer -- no tryable D1 reaches past it).

    The paper's Table 7 shows increasing D1 order stores the fewest
    pairs -- shallow scans are cheap and mopping up easy faults first
    leaves fewer residuals for deeper scans to each claim a stored pair
    for.  The heuristic therefore keeps the increasing walk but *skips
    ahead*: it rotates the sorted values so the first D1 tried is the
    smallest one where the RPR support mass begins (the benefit-weighted
    first quartile of needed positions), with the shallower values
    retried at the end.  Depths below the support mass tend to detect a
    handful of faults each and claim pairs that a benefit-covering depth
    would have absorbed; starting deeper than the quartile overshoots,
    skipping depths that are both cheap and effective.

    Deterministic in ``(circuit, d1_values, target_faults)``: a resumed
    run recomputes the identical order, keeping checkpoint replay exact.
    Falls back to the configured order unchanged when the analysis finds
    nothing to bias toward (no flip-flops, no RPR faults) or the circuit
    is structurally broken.
    """
    from repro.circuit.levelize import CombinationalCycleError

    try:
        analysis = analyze_circuit(
            circuit,
            faults=target_faults,
            rpr_threshold=rpr_threshold,
            cache=cache,
        )
    except (KeyError, CombinationalCycleError):
        return tuple(d1_values)
    benefit = analysis.benefit
    total = float(benefit.sum())
    if total <= 0.0:
        return tuple(d1_values)
    ordered = sorted(d1_values)
    need = np.minimum(np.arange(len(benefit)) + 1, ordered[-1])
    # Benefit-weighted first quartile of need: the shallowest scan depth
    # where the RPR support mass begins.
    by_need = np.argsort(need, kind="stable")
    cum = np.cumsum(benefit[by_need]) / total
    quartile_need = int(need[by_need[int(np.searchsorted(cum, 0.25))]])
    start = next(
        (i for i, d in enumerate(ordered) if d >= quartile_need), 0
    )
    return tuple(ordered[start:] + ordered[:start])
