"""Static analysis of circuits: design-rule and testability linting.

Two layers of pre-simulation checking, built on a shared rule registry:

- :mod:`repro.analysis.structural` -- ``S###`` rules: combinational
  loops, undriven/multiply-driven nets, self-loops, dangling outputs,
  dead state and dead logic.  ERRORs here mean the simulators would
  crash or mis-simulate.
- :mod:`repro.analysis.testability` -- ``T###`` rules: SCOAP-based
  random-pattern-resistance, untestable nets, unobservable scan
  positions, fanout statistics, plus COP-based RPR fault prediction
  and state-bit scan-benefit ranking.  WARNINGs here predict wasted
  fault-simulation effort before a single cycle is spent.
- :mod:`repro.analysis.cop` -- the vectorized COP testability engine
  behind T005/T006 and ``repro analyze``: per-net controllability/
  observability, per-fault detection-probability estimates, RPR
  classification, and state-bit scan-benefit scores, all computed in
  two levelized numpy sweeps over the array netlist form.
- :mod:`repro.analysis.validation` -- the differential harness that
  cross-checks COP estimates against simulator-measured detection.

Entry points: :func:`lint_circuit` (everything), :func:`lint_structural`
(the cheap errors-only gate used by Procedure 2 and the experiment
runner), :func:`analyze_circuit` / ``repro analyze`` for the
testability report, and ``repro lint`` on the command line.  The
companion *codebase* determinism linter lives in ``tools/detlint.py``.
"""

from repro.analysis.cop import (
    DEFAULT_RPR_THRESHOLD,
    CopMeasures,
    TestabilityAnalysis,
    analyze_circuit,
    compute_cop,
    testability_d1_order,
)
from repro.analysis.lint import (
    CATALOG_SUPPRESSIONS,
    lint_circuit,
    lint_structural,
    structural_rules,
    testability_rules,
)
from repro.analysis.report import LintError, LintReport
from repro.analysis.validation import ValidationReport, spearman, validate_cop
from repro.analysis.rules import (
    AnalysisContext,
    LintIssue,
    LintOptions,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register,
)

__all__ = [
    "AnalysisContext",
    "CATALOG_SUPPRESSIONS",
    "CopMeasures",
    "DEFAULT_RPR_THRESHOLD",
    "LintError",
    "LintIssue",
    "LintOptions",
    "LintReport",
    "Rule",
    "Severity",
    "TestabilityAnalysis",
    "ValidationReport",
    "all_rules",
    "analyze_circuit",
    "compute_cop",
    "get_rule",
    "lint_circuit",
    "lint_structural",
    "register",
    "spearman",
    "structural_rules",
    "testability_d1_order",
    "testability_rules",
    "validate_cop",
]
