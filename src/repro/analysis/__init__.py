"""Static analysis of circuits: design-rule and testability linting.

Two layers of pre-simulation checking, built on a shared rule registry:

- :mod:`repro.analysis.structural` -- ``S###`` rules: combinational
  loops, undriven/multiply-driven nets, self-loops, dangling outputs,
  dead state and dead logic.  ERRORs here mean the simulators would
  crash or mis-simulate.
- :mod:`repro.analysis.testability` -- ``T###`` rules: SCOAP-based
  random-pattern-resistance, untestable nets, unobservable scan
  positions, fanout statistics.  WARNINGs here predict wasted
  fault-simulation effort before a single cycle is spent.

Entry points: :func:`lint_circuit` (everything), :func:`lint_structural`
(the cheap errors-only gate used by Procedure 2 and the experiment
runner), and ``repro lint`` on the command line.  The companion
*codebase* determinism linter lives in ``tools/detlint.py``.
"""

from repro.analysis.lint import (
    CATALOG_SUPPRESSIONS,
    lint_circuit,
    lint_structural,
    structural_rules,
    testability_rules,
)
from repro.analysis.report import LintError, LintReport
from repro.analysis.rules import (
    AnalysisContext,
    LintIssue,
    LintOptions,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register,
)

__all__ = [
    "AnalysisContext",
    "CATALOG_SUPPRESSIONS",
    "LintError",
    "LintIssue",
    "LintOptions",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_circuit",
    "lint_structural",
    "register",
    "structural_rules",
    "testability_rules",
]
