"""Rule registry and shared analysis context for the circuit linter.

A lint rule is a small object with a stable ``rule_id`` (``S###`` for
structural, ``T###`` for testability), a fixed :class:`Severity`, and a
``check`` method producing :class:`LintIssue` findings.  Rules register
themselves with the module-level registry via the :func:`register` class
decorator; :func:`repro.analysis.lint.lint_circuit` runs every registered
rule (minus suppressions) against a circuit.

Expensive whole-circuit analyses (levelization, SCOAP, fault collapsing)
are shared between rules through an :class:`AnalysisContext`, computed
lazily and at most once per lint run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Type

from repro.circuit.levelize import (
    CombinationalCycleError,
    Levelization,
    levelize,
)
from repro.circuit.netlist import Circuit


class Severity(enum.IntEnum):
    """Finding severity; ordering reflects how loudly a finding fails."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class LintIssue:
    """One finding: a rule violation (or INFO metric) on a circuit."""

    rule_id: str
    severity: Severity
    message: str
    nets: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "nets": list(self.nets),
        }


@dataclass(frozen=True)
class LintOptions:
    """Tuning knobs for the linter.

    Attributes:
        scoap_difficulty_threshold: a fault whose SCOAP detection
            difficulty (activation + observation cost) meets this value
            is reported as random-pattern resistant (rule T001).  The
            default sits above every catalog circuit's hardest fault so
            that only genuinely pathological inputs fire the rule.
        rpr_probability_threshold: a fault whose COP-estimated
            single-pattern detection probability falls below this value
            is random-pattern resistant (rule T005).  Matches
            :data:`repro.analysis.cop.DEFAULT_RPR_THRESHOLD`.
        benefit_top_k: how many state bits rule T006 names in its
            scan-benefit ranking.
        max_named_nets: how many offending nets a finding names in its
            message before truncating with an ellipsis.
        suppress: rule IDs to skip entirely for this run.
    """

    scoap_difficulty_threshold: int = 512
    rpr_probability_threshold: float = 1e-3
    benefit_top_k: int = 5
    max_named_nets: int = 5
    suppress: Tuple[str, ...] = ()


class AnalysisContext:
    """Per-circuit analyses shared across rules, computed lazily.

    Levelization and SCOAP degrade to ``None`` when the circuit is
    structurally broken (combinational cycles, undriven nets): the
    structural rules report the root cause and the testability rules
    skip silently rather than crash on garbage.
    """

    _UNSET = object()

    def __init__(self, circuit: Circuit, options: LintOptions) -> None:
        self.circuit = circuit
        self.options = options
        self._levelization: object = self._UNSET
        self._cycle_error: Optional[CombinationalCycleError] = None
        self._scoap: object = self._UNSET
        self._collapsed: object = self._UNSET
        self._testability: object = self._UNSET
        self._fanout_counts: Optional[Dict[str, int]] = None

    @property
    def levelization(self) -> Optional[Levelization]:
        if self._levelization is self._UNSET:
            try:
                self._levelization = levelize(self.circuit)
            except CombinationalCycleError as exc:
                self._cycle_error = exc
                self._levelization = None
            except KeyError:
                # Undriven net: reported by the structural rules.
                self._levelization = None
        return self._levelization  # type: ignore[return-value]

    @property
    def cycle_error(self) -> Optional[CombinationalCycleError]:
        self.levelization  # force the attempt
        return self._cycle_error

    @property
    def scoap(self):
        """The circuit's :class:`ScoapResult`, or None if unlevelizable."""
        if self._scoap is self._UNSET:
            if self.levelization is None:
                self._scoap = None
            else:
                from repro.atpg.scoap import compute_scoap

                self._scoap = compute_scoap(
                    self.circuit, levelization=self.levelization
                )
        return self._scoap

    @property
    def collapsed_faults(self):
        """Collapsed fault list, or None if the circuit is broken."""
        if self._collapsed is self._UNSET:
            if self.levelization is None:
                self._collapsed = None
            else:
                from repro.faults.collapse import collapse_faults

                self._collapsed = collapse_faults(self.circuit)
        return self._collapsed

    @property
    def testability(self):
        """COP :class:`~repro.analysis.cop.TestabilityAnalysis`, or None.

        None when the circuit is structurally broken (same degradation
        contract as :attr:`scoap`): the T-rules built on the COP signal
        skip silently while the S-rules report the root cause.
        """
        if self._testability is self._UNSET:
            faults = self.collapsed_faults
            if faults is None:
                self._testability = None
            else:
                from repro.analysis.cop import analyze_circuit

                try:
                    self._testability = analyze_circuit(
                        self.circuit,
                        faults=faults,
                        rpr_threshold=self.options.rpr_probability_threshold,
                    )
                except (KeyError, CombinationalCycleError):
                    # Levelization can succeed while the array lowering
                    # rejects an undriven PO/flop-D reference; same
                    # broken-circuit degradation either way.
                    self._testability = None
        return self._testability

    def fanout_counts(self) -> Dict[str, int]:
        """Consumers per net (gate inputs and flop D pins; POs excluded)."""
        if self._fanout_counts is None:
            counts = {net: 0 for net in self.circuit.signals()}
            for gate in self.circuit.iter_gates():
                for src in gate.inputs:
                    counts[src] = counts.get(src, 0) + 1
            for flop in self.circuit.flops:
                counts[flop.d] = counts.get(flop.d, 0) + 1
            self._fanout_counts = counts
        return self._fanout_counts

    def name_nets(self, nets: Iterable[str]) -> str:
        """Render a net list for a message, truncated per the options."""
        nets = list(nets)
        limit = self.options.max_named_nets
        shown = ", ".join(nets[:limit])
        if len(nets) > limit:
            shown += f", ... ({len(nets) - limit} more)"
        return shown


class Rule:
    """Base class (and de-facto protocol) for lint rules.

    Subclasses set ``rule_id`` / ``severity`` / ``title`` and implement
    :meth:`check`.  ``title`` is the short human name used in docs and
    report headers; the per-finding detail lives in the issue message.
    """

    rule_id: str = ""
    severity: Severity = Severity.WARNING
    title: str = ""

    def check(
        self, circuit: Circuit, ctx: AnalysisContext
    ) -> Iterable[LintIssue]:
        raise NotImplementedError

    def issue(self, message: str, nets: Iterable[str] = ()) -> LintIssue:
        return LintIssue(
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            nets=tuple(nets),
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    if not rule.rule_id or not rule.title:
        raise ValueError(f"rule {cls.__name__} must set rule_id and title")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in rule-ID order (stable across runs)."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
