"""Structural design rules (``S###``): netlist well-formedness.

These rules subsume the checks historically hard-coded in
:mod:`repro.circuit.validate`; that module is now a thin wrapper over
this registry.  ERROR-severity findings mean the simulators would crash
or silently mis-simulate; WARNING-severity findings are legal netlists
that waste fault-coverage effort (dead or unobservable logic).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set

from repro.analysis.rules import (
    AnalysisContext,
    LintIssue,
    Rule,
    Severity,
    register,
)
from repro.circuit.netlist import Circuit


def dangling_nets(circuit: Circuit) -> List[str]:
    """Nets that drive nothing and are not primary outputs.

    Single source of truth for "dangling" across the linter and
    :func:`repro.circuit.validate.find_dangling`.  Order follows
    ``circuit.signals()`` so reports are deterministic.
    """
    used = set(circuit.outputs)
    for gate in circuit.iter_gates():
        used.update(gate.inputs)
    for flop in circuit.flops:
        used.add(flop.d)
    return [net for net in circuit.signals() if net not in used]


def observable_cone(circuit: Circuit) -> Set[str]:
    """Nets with a structural path to a primary output or scan-cell D.

    Backward reachability over gate fan-ins starting from the
    observation points of the full-scan model (POs and flop D nets).
    """
    frontier = list(circuit.outputs) + [f.d for f in circuit.flops]
    reachable: Set[str] = set()
    while frontier:
        net = frontier.pop()
        if net in reachable:
            continue
        reachable.add(net)
        gate = circuit.gate_for(net)
        if gate is not None:
            frontier.extend(gate.inputs)
    return reachable


@register
class CombinationalLoopRule(Rule):
    rule_id = "S001"
    severity = Severity.ERROR
    title = "combinational-loop"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        # levelize() raises KeyError first on undriven nets; S002 owns
        # that diagnosis, so only a genuine cycle is reported here.
        if ctx.cycle_error is not None:
            yield self.issue(
                str(ctx.cycle_error), nets=sorted(ctx.cycle_error.members)
            )


@register
class UndrivenNetRule(Rule):
    rule_id = "S002"
    severity = Severity.ERROR
    title = "undriven-net"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        driven = set(circuit.signals())
        for net in circuit.outputs:
            if net not in driven:
                yield self.issue(
                    f"primary output {net} is undriven", nets=[net]
                )
        for gate in circuit.iter_gates():
            for src in gate.inputs:
                if src not in driven:
                    yield self.issue(
                        f"gate {gate.output} reads undriven net {src}",
                        nets=[src],
                    )
        for flop in circuit.flops:
            if flop.d not in driven:
                yield self.issue(
                    f"flop {flop.q} reads undriven net {flop.d}",
                    nets=[flop.d],
                )


@register
class MultiplyDrivenNetRule(Rule):
    rule_id = "S003"
    severity = Severity.ERROR
    title = "multiply-driven-net"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        # Circuit.add_* enforces single drivers, but copies and direct
        # attribute surgery (scan reordering, tests, future transforms)
        # can bypass it; defence in depth keeps the invariant honest.
        drivers: Dict[str, List[str]] = {}
        for net in circuit.inputs:
            drivers.setdefault(net, []).append("input")
        for gate in circuit.iter_gates():
            drivers.setdefault(gate.output, []).append("gate")
        counts = Counter(f.q for f in circuit.flops)
        for q, n in counts.items():
            drivers.setdefault(q, []).extend(["flop"] * n)
        for net, kinds in drivers.items():
            if len(kinds) > 1:
                yield self.issue(
                    f"net {net} has multiple drivers ({' + '.join(kinds)})",
                    nets=[net],
                )


@register
class SelfLoopRule(Rule):
    rule_id = "S004"
    severity = Severity.ERROR
    title = "self-loop"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        for gate in circuit.iter_gates():
            if gate.output in gate.inputs:
                yield self.issue(
                    f"gate {gate.output} feeds its own input (self-loop)",
                    nets=[gate.output],
                )


@register
class NoObservablePointsRule(Rule):
    rule_id = "S005"
    severity = Severity.ERROR
    title = "no-observable-points"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        if not circuit.outputs and not circuit.flops:
            yield self.issue(
                "circuit has no observable points (no POs, no flops)"
            )


@register
class DanglingOutputRule(Rule):
    rule_id = "S006"
    severity = Severity.WARNING
    title = "dangling-output"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        gates = {g.output for g in circuit.iter_gates()}
        nets = [n for n in dangling_nets(circuit) if n in gates]
        if nets:
            yield self.issue(
                f"{len(nets)} gate output(s) drive nothing and are not "
                f"primary outputs: {ctx.name_nets(nets)}",
                nets=nets,
            )


@register
class DeadStateRule(Rule):
    rule_id = "S007"
    severity = Severity.WARNING
    title = "dead-state"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        state = set(circuit.state_vars)
        nets = [n for n in dangling_nets(circuit) if n in state]
        if nets:
            yield self.issue(
                f"{len(nets)} flop output(s) drive no logic (DFF state is "
                f"captured but never used): {ctx.name_nets(nets)}",
                nets=nets,
            )


@register
class DeadLogicRule(Rule):
    rule_id = "S008"
    severity = Severity.WARNING
    title = "dead-logic"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        reachable = observable_cone(circuit)
        direct = set(dangling_nets(circuit))  # S006/S007 report these
        nets = [
            g.output
            for g in circuit.iter_gates()
            if g.output not in reachable and g.output not in direct
        ]
        if nets:
            yield self.issue(
                f"{len(nets)} gate output(s) cannot reach any primary "
                f"output or scan cell: {ctx.name_nets(nets)}",
                nets=nets,
            )
