"""Linter entry points: run the rule registry against a circuit.

:func:`lint_circuit` is the full two-phase lint (structural +
testability); :func:`lint_structural` is the cheap errors-only subset
used as a gate at the top of Procedure 2 and the experiment runner,
where SCOAP and fault collapsing would be wasted work on the happy path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

# Importing the rule modules populates the registry.
from repro.analysis import structural as _structural  # noqa: F401
from repro.analysis import testability as _testability  # noqa: F401
from repro.analysis.report import LintReport
from repro.analysis.rules import AnalysisContext, LintOptions, Rule, all_rules
from repro.circuit.netlist import Circuit

#: Documented, expected findings on catalog circuits.  The synthetic
#: generator occasionally leaves a benign stub (see docs/linting.md for
#: the per-circuit rationale); everything listed here is WARNING-level
#: noise, never an ERROR.  ``repro lint --all`` and the catalog lint
#: test apply these automatically.
CATALOG_SUPPRESSIONS: Dict[str, Tuple[str, ...]] = {
    # s382's synthetic stand-in has one dangling gate output, which also
    # shows up as an unobservable net (T002): the net exists but drives
    # nothing, so its two stuck-at faults are trivially untestable.
    "s382": ("S006", "T002"),
    # The full-size stand-ins each have a handful of faults whose SCOAP
    # detection difficulty crosses the T001 threshold -- expected at
    # 10k+ gates (deep reconvergent logic), and exactly the hard-fault
    # population Procedure 2's limited-scan schedules exist to reach.
    "s15850": ("T001",),
    "s38584": ("T001",),
}

#: Catalog circuits with random-pattern-resistant faults under the COP
#: model (rule T005, estimated detection probability < 1e-3).  On this
#: catalog the finding is the *norm*, not an anomaly: the paper exists
#: because real sequential benchmarks have RPR tails, and these are
#: exactly the circuits its limited-scan procedures target.  The rule
#: stays a WARNING for user-supplied circuits, where it is actionable
#: (run ``repro analyze``, consider limited scan); here it is a
#: documented property.  Only s27 and b06 are COP-clean at 1e-3.
_RPR_CATALOG: Tuple[str, ...] = (
    "s208", "s298", "s344", "s382", "s400", "s420", "s510", "s641",
    "s820", "s953", "s1196", "s1423", "s5378", "s9234", "s13207",
    "s15850", "s35932", "s38417", "s38584",
    "b01", "b02", "b03", "b04", "b09", "b10", "b11",
)
for _name in _RPR_CATALOG:
    CATALOG_SUPPRESSIONS[_name] = CATALOG_SUPPRESSIONS.get(_name, ()) + (
        "T005",
    )
del _name


def structural_rules() -> list:
    """The structural (``S###``) subset of the registry."""
    return [r for r in all_rules() if r.rule_id.startswith("S")]


def testability_rules() -> list:
    """The testability (``T###``) subset of the registry."""
    return [r for r in all_rules() if r.rule_id.startswith("T")]


def lint_circuit(
    circuit: Circuit,
    options: Optional[LintOptions] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Run every registered rule (minus suppressions) on ``circuit``."""
    options = options or LintOptions()
    selected = all_rules() if rules is None else list(rules)
    suppressed = tuple(sorted(set(options.suppress)))
    ctx = AnalysisContext(circuit, options)
    issues = []
    for rule in selected:
        if rule.rule_id in suppressed:
            continue
        issues.extend(rule.check(circuit, ctx))
    return LintReport(
        circuit_name=circuit.name, issues=issues, suppressed=suppressed
    )


def lint_structural(
    circuit: Circuit, options: Optional[LintOptions] = None
) -> LintReport:
    """Structural rules only; cheap enough to gate every run."""
    return lint_circuit(circuit, options=options, rules=structural_rules())
