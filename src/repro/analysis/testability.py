"""Testability rules (``T###``): static random-pattern health.

The paper's premise is that random patterns miss random-pattern-resistant
faults; SCOAP (T001-T003) and the vectorized COP engine (T005-T006,
:mod:`repro.analysis.cop`) flag those statically, before any simulation
cycle is spent.  All rules here skip silently when the circuit is
structurally broken (the ``S###`` rules report the root cause first).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.rules import AnalysisContext, Rule, Severity, register
from repro.circuit.netlist import Circuit


@register
class RandomPatternResistantRule(Rule):
    rule_id = "T001"
    severity = Severity.WARNING
    title = "random-pattern-resistant"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        scoap = ctx.scoap
        faults = ctx.collapsed_faults
        if scoap is None or not faults:
            return
        from repro.atpg.scoap import INFINITY

        threshold = ctx.options.scoap_difficulty_threshold
        hard: List[Tuple[int, str]] = []
        for fault in faults:
            difficulty = scoap.fault_difficulty(fault)
            if threshold <= difficulty < INFINITY:
                hard.append((difficulty, f"{fault.site} s-a-{fault.value}"))
        if hard:
            hard.sort(reverse=True)
            worst_cost, worst_name = hard[0]
            yield self.issue(
                f"{len(hard)} of {len(faults)} collapsed faults have SCOAP "
                f"detection difficulty >= {threshold} (hardest: {worst_name}"
                f", cost {worst_cost}); random patterns are unlikely to "
                f"reach 100% coverage in useful time",
                nets=[name.split(" ")[0] for _, name in hard],
            )


@register
class UntestableNetRule(Rule):
    rule_id = "T002"
    severity = Severity.WARNING
    title = "untestable-net"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        scoap = ctx.scoap
        if scoap is None:
            return
        from repro.atpg.scoap import INFINITY

        uncontrollable = [
            net
            for net in circuit.signals()
            if scoap.cc0[net] >= INFINITY or scoap.cc1[net] >= INFINITY
        ]
        unobservable = [
            net for net in circuit.signals() if scoap.co[net] >= INFINITY
        ]
        if uncontrollable:
            yield self.issue(
                f"{len(uncontrollable)} net(s) cannot be driven to both "
                f"values (stuck-at faults there are untestable): "
                f"{ctx.name_nets(uncontrollable)}",
                nets=uncontrollable,
            )
        if unobservable:
            yield self.issue(
                f"{len(unobservable)} net(s) are unobservable at every PO "
                f"and scan cell: {ctx.name_nets(unobservable)}",
                nets=unobservable,
            )


@register
class UnobservableScanPositionRule(Rule):
    rule_id = "T003"
    severity = Severity.WARNING
    title = "unobservable-scan-position"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        scoap = ctx.scoap
        if scoap is None or not circuit.flops:
            return
        from repro.atpg.scoap import INFINITY

        n_sv = circuit.num_state_vars
        for position, flop in enumerate(circuit.flops):
            if scoap.co[flop.q] >= INFINITY:
                yield self.issue(
                    f"scan position {position} of {n_sv} (flop {flop.q}): "
                    f"state never propagates to an observable point, so "
                    f"limited-scan tests cannot use it",
                    nets=[flop.q],
                )


@register
class FanoutProfileRule(Rule):
    rule_id = "T004"
    severity = Severity.INFO
    title = "fanout-profile"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        counts = ctx.fanout_counts()
        if not counts:
            return
        # Fanout-free nets form cones PODEM backtraces without conflicts;
        # a high fraction means random patterns behave predictably.
        total = len(counts)
        fanout_free = sum(1 for n in counts.values() if n <= 1)
        max_net = max(counts, key=lambda net: counts[net])
        unused_inputs = [
            net
            for net in circuit.inputs
            if counts.get(net, 0) == 0 and net not in circuit.outputs
        ]
        message = (
            f"fanout profile: {fanout_free}/{total} nets fanout-free "
            f"({fanout_free / total:.0%}), max fanout {counts[max_net]} "
            f"at {max_net}"
        )
        if unused_inputs:
            message += (
                f"; {len(unused_inputs)} unused primary input(s): "
                f"{ctx.name_nets(unused_inputs)}"
            )
        yield self.issue(message, nets=unused_inputs)


@register
class CopResistantFaultsRule(Rule):
    rule_id = "T005"
    severity = Severity.WARNING
    title = "cop-resistant-faults"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        analysis = ctx.testability
        if analysis is None or not analysis.faults:
            return
        rpr = analysis.rpr_faults()
        if not rpr:
            return
        worst_fault, worst_p = rpr[0]
        length = analysis.expected_test_length()
        shown = (
            "unbounded"
            if length is None
            else (f"{float(length):.2e}" if length > 10**6 else str(length))
        )
        yield self.issue(
            f"{len(rpr)} of {len(analysis.faults)} collapsed faults have "
            f"COP-estimated detection probability < "
            f"{analysis.rpr_threshold:g} (hardest: {worst_fault.site} "
            f"s-a-{worst_fault.value}, p = {worst_p:.2e}); expected random "
            f"test length for 95% confidence: {shown} patterns",
            nets=sorted({fault.site for fault, _ in rpr}),
        )


@register
class ScanBenefitRankingRule(Rule):
    rule_id = "T006"
    severity = Severity.INFO
    title = "scan-benefit-ranking"

    def check(self, circuit: Circuit, ctx: AnalysisContext):
        analysis = ctx.testability
        if analysis is None or not circuit.flops:
            return
        ranking = [
            entry for entry in analysis.benefit_ranking() if entry[2] > 0.0
        ]
        if not ranking:
            return
        top = ranking[: ctx.options.benefit_top_k]
        shown = ", ".join(
            f"{name} (pos {pos}, {score:.2f})" for pos, name, score in top
        )
        yield self.issue(
            f"state bits whose scan would reach the most RPR faults "
            f"(benefit = share of RPR fault control/observation support): "
            f"{shown}",
            nets=[name for _, name, _ in top],
        )
