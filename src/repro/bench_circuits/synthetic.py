"""Deterministic synthetic benchmark circuit generator.

Generates sequential circuits with a requested interface (``n_pi``,
``n_po``, ``n_ff``) and approximate gate count.  Design goals, in order:

1. **Determinism** -- the same spec and seed always produce the identical
   netlist (experiments are reproducible bit for bit).
2. **Benchmark-like structure** -- mostly NAND/NOR/AND/OR/NOT gates,
   fan-in 2 with occasional 3..6, locality-biased wiring (deep cones and
   reconvergent fanout), plus a few wide AND/OR "comparator" trees, which
   are the classic random-pattern-resistant sites.  This is what gives
   the limited-scan method faults worth improving on.
3. **Connectivity** -- an orphan queue feeds otherwise-unused signals back
   into later gate inputs, so nearly every net drives something; the few
   remaining dangles are preferentially used as flop inputs and outputs.

The generator never creates combinational cycles (gate inputs are drawn
only from already-created signals).
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

#: Gate-type mix roughly matching ISCAS-89 profiles.
_TYPE_CHOICES = [
    (GateType.NAND, 0.27),
    (GateType.NOR, 0.18),
    (GateType.AND, 0.19),
    (GateType.OR, 0.16),
    (GateType.NOT, 0.10),
    (GateType.XOR, 0.08),
    (GateType.BUF, 0.02),
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Interface and size of a synthetic circuit."""

    name: str
    n_pi: int
    n_po: int
    n_ff: int
    n_gates: int
    seed: Optional[int] = None  # default: derived from the name

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        return zlib.crc32(self.name.encode()) & 0x7FFFFFFF

    def __post_init__(self) -> None:
        if self.n_pi < 1:
            raise ValueError("need at least one primary input")
        if self.n_po < 0 or self.n_ff < 0:
            raise ValueError("negative interface counts")
        if self.n_po == 0 and self.n_ff == 0:
            raise ValueError("circuit would have no observation points")
        min_gates = self.n_po + self.n_ff
        if self.n_gates < min_gates:
            raise ValueError(
                f"{self.n_gates} gates cannot drive {self.n_po} POs "
                f"and {self.n_ff} flops"
            )


def synthesize(spec: SyntheticSpec) -> Circuit:
    """Generate the circuit for ``spec`` (deterministic)."""
    rng = np.random.Generator(np.random.PCG64(spec.resolved_seed()))
    circuit = Circuit(spec.name)

    pis = [f"I{i}" for i in range(spec.n_pi)]
    qs = [f"Q{i}" for i in range(spec.n_ff)]
    for net in pis:
        circuit.add_input(net)

    pool: List[str] = pis + qs  # signals available as gate inputs
    use_count = {net: 0 for net in pool}
    orphans: deque = deque(pool)  # never-used signals, oldest first

    types, weights = zip(*_TYPE_CHOICES)
    weights = np.asarray(weights) / sum(w for w in weights)

    #: A handful of wide trees (random-pattern-resistant comparators).
    n_wide = max(1, spec.n_gates // 80)
    wide_positions = set(
        int(p)
        for p in rng.choice(
            np.arange(spec.n_gates // 4, spec.n_gates),
            size=min(n_wide, max(1, spec.n_gates - spec.n_gates // 4)),
            replace=False,
        )
    )

    primaries = pis + qs

    def pick_input(recent_window: int = 48) -> str:
        # A mixture tuned for testability: enough locality to create
        # depth, enough fresh primary-input entropy to keep signals
        # decorrelated (heavy locality breeds redundant logic), and an
        # orphan queue so nearly everything is used.
        r = rng.random()
        if r < 0.25 and orphans and len(pool) > 8:
            net = orphans.popleft()
        elif r < 0.45:
            net = primaries[int(rng.integers(len(primaries)))]
        elif r < 0.80:
            window = pool[-min(len(pool), recent_window):]
            net = window[int(rng.integers(len(window)))]
        else:
            net = pool[int(rng.integers(len(pool)))]
        if use_count[net] == 0 and net in orphans:
            orphans.remove(net)
        use_count[net] += 1
        return net

    collector_start = max(1, spec.n_gates - max(2, spec.n_gates // 10))
    for g in range(spec.n_gates):
        out = f"n{g}"
        spare_orphans = len(orphans) - (spec.n_ff + spec.n_po)
        if g >= collector_start and spare_orphans > 0:
            # Collector phase: drain the orphan queue so the tail of the
            # netlist does not dangle (dangling lines are untestable).
            gates_left = spec.n_gates - g
            need_per_gate = -(-spare_orphans // max(1, gates_left)) + 1
            fanin = max(2, min(8, max(need_per_gate, spare_orphans + 1)))
            seen = []
            while orphans and len(seen) < fanin:
                net = orphans.popleft()
                if net not in seen:
                    seen.append(net)
                    use_count[net] += 1
            while len(seen) < 2:
                net = pool[int(rng.integers(len(pool)))]
                if net not in seen:
                    seen.append(net)
                    use_count[net] += 1
            gtype = GateType.NAND if rng.random() < 0.5 else GateType.NOR
            circuit.add_gate(out, gtype, seen)
            pool.append(out)
            use_count[out] = 0
            orphans.append(out)
            continue
        if g in wide_positions:
            gtype = GateType.AND if rng.random() < 0.5 else GateType.OR
            fanin = int(rng.integers(4, 6))
        else:
            gtype = types[int(rng.choice(len(types), p=weights))]
            if gtype in (GateType.NOT, GateType.BUF):
                fanin = 1
            else:
                r = rng.random()
                fanin = 2 if r < 0.8 else (3 if r < 0.95 else 4)
        seen: List[str] = []
        for _ in range(fanin):
            net = pick_input()
            if net in seen:  # avoid degenerate duplicate pins
                continue
            seen.append(net)
        if len(seen) < gtype.min_arity:
            # Duplicate-avoidance starved the gate; fall back to NOT.
            gtype = GateType.NOT
            seen = seen[:1] or [pool[int(rng.integers(len(pool)))]]
        circuit.add_gate(out, gtype, seen)
        pool.append(out)
        use_count[out] = 0
        orphans.append(out)

    def take_sink(prefer_orphans: bool = True) -> str:
        if prefer_orphans and orphans:
            net = orphans.popleft()
        else:
            # Late signals make deep observation paths.
            start = max(0, len(pool) - spec.n_gates // 2 - 1)
            net = pool[int(rng.integers(start, len(pool)))]
            if net in orphans:
                orphans.remove(net)
        use_count[net] += 1
        return net

    # Flop inputs first (they also act as sinks), then primary outputs.
    d_nets = [take_sink() for _ in range(spec.n_ff)]
    for q, d in zip(qs, d_nets):
        circuit.add_flop(q, d)

    po_nets: List[str] = []
    for _ in range(spec.n_po):
        net = take_sink()
        # A net may be both a flop input and a PO; avoid duplicate POs.
        tries = 0
        while net in po_nets and tries < 10:
            net = take_sink(prefer_orphans=False)
            tries += 1
        po_nets.append(net)
    for net in po_nets:
        circuit.add_output(net)

    return circuit


def synthesize_named(
    name: str, n_pi: int, n_po: int, n_ff: int, n_gates: int, seed: Optional[int] = None
) -> Circuit:
    """Convenience wrapper around :func:`synthesize`."""
    return synthesize(
        SyntheticSpec(
            name=name, n_pi=n_pi, n_po=n_po, n_ff=n_ff, n_gates=n_gates, seed=seed
        )
    )
