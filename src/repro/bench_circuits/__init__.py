"""Benchmark circuits.

The paper evaluates on ISCAS-89 and ITC-99 benchmarks.  The real netlist
of the small ``s27`` (used in the paper's Section 2 worked example) is
embedded; every other benchmark is represented by a **seeded synthetic
stand-in** matched to the published interface statistics (see DESIGN.md
section 3 for the substitution rationale).

- :mod:`repro.bench_circuits.s27` -- the genuine ISCAS-89 s27,
- :mod:`repro.bench_circuits.synthetic` -- the deterministic synthetic
  circuit generator,
- :mod:`repro.bench_circuits.catalog` -- name -> circuit factory with the
  published statistics.
"""

from repro.bench_circuits.s27 import s27_circuit, S27_BENCH
from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.bench_circuits.catalog import (
    CatalogEntry,
    available_circuits,
    circuit_info,
    load_circuit,
)

__all__ = [
    "s27_circuit",
    "S27_BENCH",
    "SyntheticSpec",
    "synthesize",
    "CatalogEntry",
    "available_circuits",
    "circuit_info",
    "load_circuit",
]
