"""Benchmark catalog: name -> circuit, with published interface statistics.

Every ISCAS-89 / ITC-99 circuit named in the paper is available.  ``s27``
is the genuine netlist; the others are synthetic stand-ins generated to
the published interface statistics (PI/PO/FF counts; gate counts are
approximate).  See DESIGN.md section 3 for why this substitution preserves
the paper's claims.  The ``tier`` field groups circuits by simulation
cost so experiments can pick defaults that finish quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench_circuits.s27 import s27_circuit
from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class CatalogEntry:
    """One benchmark: interface statistics and provenance."""

    name: str
    n_pi: int
    n_po: int
    n_ff: int
    n_gates: int
    synthetic: bool
    tier: str  # 'small' | 'medium' | 'large'


def _tier(n_gates: int) -> str:
    # Boundaries are calibrated to simulation cost now that the catalog
    # spans s27 (10 gates) through s38417 (22k gates): "small" finishes
    # in milliseconds, "medium" in seconds, "large" is the real-silicon
    # tier (thousands of gates, minutes of fault simulation).  s5378
    # (2779 gates) sat in "large" when the catalog topped out at s35932;
    # against the full ISCAS-89 set it is mid-pack and simulates in
    # seconds, so it belongs to "medium".
    if n_gates <= 600:
        return "small"
    if n_gates <= 3000:
        return "medium"
    return "large"


def _entry(name: str, n_pi: int, n_po: int, n_ff: int, n_gates: int) -> CatalogEntry:
    return CatalogEntry(
        name=name,
        n_pi=n_pi,
        n_po=n_po,
        n_ff=n_ff,
        n_gates=n_gates,
        synthetic=True,
        tier=_tier(n_gates),
    )


#: Published interface statistics of the paper's benchmarks (gate counts
#: approximate).  s27 is the real netlist and listed for completeness.
_CATALOG: Dict[str, CatalogEntry] = {
    "s27": CatalogEntry("s27", 4, 1, 3, 10, synthetic=False, tier="small"),
    "s208": _entry("s208", 10, 1, 8, 96),
    "s298": _entry("s298", 3, 6, 14, 119),
    "s344": _entry("s344", 9, 11, 15, 160),
    "s382": _entry("s382", 3, 6, 21, 158),
    "s400": _entry("s400", 3, 6, 21, 162),
    "s420": _entry("s420", 18, 1, 16, 196),
    "s510": _entry("s510", 19, 7, 6, 211),
    "s641": _entry("s641", 35, 24, 19, 379),
    "s820": _entry("s820", 18, 19, 5, 289),
    "s953": _entry("s953", 16, 23, 29, 395),
    "s1196": _entry("s1196", 14, 14, 18, 529),
    "s1423": _entry("s1423", 17, 5, 74, 657),
    "s5378": _entry("s5378", 35, 49, 179, 2779),
    "s9234": _entry("s9234", 36, 39, 211, 5597),
    "s13207": _entry("s13207", 62, 152, 638, 7951),
    "s15850": _entry("s15850", 77, 150, 534, 9772),
    "s35932": _entry("s35932", 35, 320, 1728, 16065),
    "s38417": _entry("s38417", 28, 106, 1636, 22179),
    "s38584": _entry("s38584", 38, 304, 1426, 19253),
    "b01": _entry("b01", 2, 2, 5, 45),
    "b02": _entry("b02", 1, 1, 4, 25),
    "b03": _entry("b03", 4, 4, 30, 150),
    "b04": _entry("b04", 11, 8, 66, 600),
    "b06": _entry("b06", 2, 6, 9, 50),
    "b09": _entry("b09", 1, 1, 28, 160),
    "b10": _entry("b10", 11, 6, 17, 180),
    "b11": _entry("b11", 7, 6, 31, 480),
}


def available_circuits(tier: str = None) -> List[str]:
    """Benchmark names, optionally filtered by cost tier."""
    names = list(_CATALOG)
    if tier is not None:
        names = [n for n in names if _CATALOG[n].tier == tier]
    return names


def circuit_info(name: str) -> CatalogEntry:
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(_CATALOG))}"
        ) from None


def load_circuit(name: str) -> Circuit:
    """Instantiate a benchmark circuit (deterministic).

    A real vendored ``.bench`` netlist (see
    :mod:`repro.bench_circuits.vendor`) is preferred when present;
    otherwise the deterministic synthetic stand-in is generated to the
    published interface statistics.  Large-tier stand-ins are round-
    tripped through the hardened ``.bench`` parser so the real-silicon
    tier always exercises the same ingestion path as user netlists.
    """
    entry = circuit_info(name)
    if not entry.synthetic:
        return s27_circuit()
    from repro.bench_circuits.vendor import load_vendored, reingest

    vendored = load_vendored(entry)
    if vendored is not None:
        return vendored
    circuit = synthesize(
        SyntheticSpec(
            name=entry.name,
            n_pi=entry.n_pi,
            n_po=entry.n_po,
            n_ff=entry.n_ff,
            n_gates=entry.n_gates,
        )
    )
    if entry.tier == "large":
        circuit = reingest(circuit)
    return circuit
