"""Vendoring and lazy retrieval of real benchmark netlists.

The catalog's large tier names the full-size ISCAS-89 circuits.  When a
genuine ``.bench`` netlist is available it is used; otherwise the
deterministic synthetic stand-in is generated to the published interface
statistics.  Either way the netlist enters the system through the
hardened ``.bench`` parser (:mod:`repro.circuit.bench_parser`, the E001+
trust boundary): real files are parsed from disk, and synthetic
stand-ins are round-tripped through ``write_bench`` -> ``parse_bench``
so a 22k-gate catalog load exercises exactly the ingestion path a user
netlist would.

Search order for a real netlist named ``s13207``:

1. ``$REPRO_BENCH_DIR/s13207.bench`` -- a user- or CI-provisioned
   directory of benchmark files;
2. ``repro/bench_circuits/vendored/s13207.bench`` -- files committed to
   the package itself;
3. if ``REPRO_BENCH_DOWNLOAD=1``, a one-time download into the first
   writable search directory (atomic write; never enabled by default --
   tests and CI run with no network access).

A real netlist is validated against the catalog's published PI/PO/FF
counts via :func:`repro.circuit.stats.circuit_stats` before it is
returned; a mismatch raises :class:`VendorError` rather than silently
simulating the wrong circuit.  Gate counts are *not* checked: published
tallies vary by netlist variant (buffer/inverter counting), while the
interface is exact.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional

from repro.circuit.bench_parser import parse_bench, parse_bench_file, write_bench
from repro.circuit.netlist import Circuit
from repro.circuit.stats import circuit_stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench_circuits.catalog import CatalogEntry

#: Directory of user-provided ``.bench`` files (searched first).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Set to ``1`` to allow a one-time network fetch of missing netlists.
DOWNLOAD_ENV = "REPRO_BENCH_DOWNLOAD"

#: Package-local vendored netlists.
VENDOR_DIR = Path(__file__).resolve().parent / "vendored"

#: Mirrors serving the classic ISCAS-89 distribution as ``{name}.bench``.
DOWNLOAD_URLS = (
    "https://raw.githubusercontent.com/jpsety/verilog_benchmark_circuits/master/{name}.bench",
    "https://ddd.fit.cvut.cz/www/prj/Benchmarks/ISCAS89/{name}.bench",
)


class VendorError(ValueError):
    """A vendored netlist does not match its published interface."""


def search_dirs() -> List[Path]:
    """Directories consulted for real ``.bench`` files, in order."""
    dirs: List[Path] = []
    env = os.environ.get(BENCH_DIR_ENV, "").strip()
    if env:
        dirs.append(Path(env))
    dirs.append(VENDOR_DIR)
    return dirs


def vendored_path(name: str) -> Optional[Path]:
    """The on-disk ``.bench`` file for ``name``, or None if not present."""
    for directory in search_dirs():
        candidate = directory / f"{name}.bench"
        if candidate.is_file():
            return candidate
    return None


def _download(name: str) -> Optional[Path]:
    """Fetch ``name.bench`` into the first writable search dir, or None."""
    if os.environ.get(DOWNLOAD_ENV, "").strip() != "1":
        return None
    from urllib.request import urlopen

    for url in DOWNLOAD_URLS:
        try:
            with urlopen(url.format(name=name), timeout=30) as resp:
                text = resp.read().decode("utf-8", errors="replace")
        except Exception:
            continue
        for directory in search_dirs():
            try:
                directory.mkdir(parents=True, exist_ok=True)
                from repro.robustness.atomic import atomic_write_text

                target = directory / f"{name}.bench"
                atomic_write_text(target, text)
                return target
            except OSError:
                continue
    return None


def ensure_vendored(name: str) -> Optional[Path]:
    """Locate (or, if enabled, download) the real netlist for ``name``."""
    path = vendored_path(name)
    if path is None:
        path = _download(name)
    return path


def validate_interface(circuit: Circuit, entry: "CatalogEntry") -> None:
    """Check a netlist against the catalog's published PI/PO/FF counts."""
    stats = circuit_stats(circuit)
    actual = (stats.num_inputs, stats.num_outputs, stats.num_flops)
    published = (entry.n_pi, entry.n_po, entry.n_ff)
    if actual != published:
        raise VendorError(
            f"{entry.name}: netlist interface (pi, po, ff) = {actual} does "
            f"not match published counts {published}"
        )


def load_vendored(entry: "CatalogEntry") -> Optional[Circuit]:
    """The real netlist for ``entry``, parsed and validated, or None."""
    path = ensure_vendored(entry.name)
    if path is None:
        return None
    circuit = parse_bench_file(path)
    circuit.name = entry.name
    validate_interface(circuit, entry)
    return circuit


def reingest(circuit: Circuit) -> Circuit:
    """Round a circuit through the hardened parser.

    ``write_bench`` -> ``parse_bench`` is a byte-stable fixpoint, so the
    result is structurally identical -- but it has passed every parser
    diagnostic and structural validation a user-supplied netlist would.
    """
    return parse_bench(write_bench(circuit), name=circuit.name)
