"""The ISCAS-89 benchmark circuit s27.

Small enough to embed verbatim: 4 primary inputs, 1 primary output,
3 flip-flops (G5, G6, G7 in scan order) and 10 logic gates.  This is the
circuit behind the paper's Section 2 worked example (Tables 1 and 2).
"""

from __future__ import annotations

from repro.circuit.bench_parser import parse_bench
from repro.circuit.netlist import Circuit

S27_BENCH = """\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def s27_circuit() -> Circuit:
    """A fresh :class:`Circuit` instance of s27."""
    return parse_bench(S27_BENCH, name="s27")
