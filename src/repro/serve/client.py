"""Blocking stdlib client for the serve API.

``http.client`` only -- usable from tests, ``tools/serve_smoke.py``,
and user scripts without any dependency beyond the standard library.
Server-side refusals come back as the same :class:`ServeError` the
server raised, reconstructed from the structured error envelope, so
callers branch on ``exc.code`` identically in-process and over HTTP.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional

from repro.serve.errors import ServeError
from repro.serve.models import TERMINAL_STATES


class ServeClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8472, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            data = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if data else {}
            conn.request(method, path, body=data, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServeError(
                "X001",
                f"server returned non-JSON ({response.status}): {raw[:200]!r}",
                http_status=response.status,
            ) from exc
        if response.status >= 400:
            error = payload.get("error", {}) if isinstance(payload, dict) else {}
            raise ServeError(
                error.get("code", "X001"),
                error.get("message", f"HTTP {response.status}"),
                http_status=response.status,
                detail=error.get("detail"),
            )
        return payload

    # -- API -------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self,
        bench: str,
        name: str = "bench",
        config: Optional[Dict[str, Any]] = None,
        tenant: str = "anonymous",
        priority: str = "standard",
        targets: str = "collapsed",
        chaos: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "bench": bench,
            "name": name,
            "tenant": tenant,
            "priority": priority,
            "targets": targets,
        }
        if config:
            body["config"] = config
        if chaos:
            body["chaos"] = chaos
        return self._request("POST", "/jobs", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def events(self, job_id: str, since: int = 0) -> List[Dict[str, Any]]:
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}"
        )["events"]

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final status.

        Raises :class:`TimeoutError` (the stdlib one) if the job is
        still running when ``timeout_s`` elapses -- the job itself is
        unaffected; only this client stopped waiting.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} "
                    f"after {timeout_s:g}s"
                )
            time.sleep(poll_s)
