"""Per-job resource budgets: wall-clock, address space, bounded retries.

Every attempt runs in a fresh sandboxed child
(:func:`repro.fuzz.sandbox.run_sandboxed`) under a wall-clock budget
(parent-enforced) and an ``RLIMIT_AS`` budget (kernel-enforced), with
``pdeathsig`` armed so a SIGKILLed server takes its children down with
it -- an orphan would keep appending to a checkpoint journal the
restarted server is resuming from.

Failures retry with *seeded* exponential backoff -- literally
:meth:`repro.faults.sharding.RecoveryPolicy.backoff_delay`, keyed by
``(seed, job_seq, 0, attempt)`` -- so recovery timing is as
deterministic as everything else.  Every retry resumes from the job's
checkpoint journal: each attempt extends the committed prefix, so even
a budget too small for one uninterrupted run converges over retries,
and a final failure still leaves an honest partial result behind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.faults.sharding import RecoveryPolicy
from repro.fuzz.sandbox import STATUS_OK, SandboxVerdict, run_sandboxed
from repro.serve import errors
from repro.serve.worker import job_child_main

#: Sandbox status -> the stable budget error code recorded on the job.
STATUS_TO_CODE = {
    "timeout": errors.BUDGET_WALL,
    "oom": errors.BUDGET_MEMORY,
    "killed": errors.WORKER_DIED,
}


@dataclass(frozen=True)
class JobBudget:
    """Resource envelope of one job.

    Attributes:
        wall_s: wall-clock seconds *per attempt* (a retry resumes from
            the checkpoint, so total forward progress is cumulative).
        mem_mb: ``RLIMIT_AS`` in MiB for the job child; None = unlimited.
        max_retries: attempts after the first before the job is declared
            failed (or partial, if its journal has committed progress).
        backoff_seed: seed of the deterministic retry backoff.
    """

    wall_s: float = 300.0
    mem_mb: Optional[int] = 2048
    max_retries: int = 1
    backoff_seed: int = 0

    def __post_init__(self) -> None:
        if self.wall_s <= 0:
            raise ValueError("wall_s must be positive")
        if self.mem_mb is not None and self.mem_mb < 1:
            raise ValueError("mem_mb must be >= 1 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def backoff_delay(self, job_seq: int, attempt: int) -> float:
        """Seeded exponential backoff before retry ``attempt``."""
        policy = RecoveryPolicy(
            max_retries=self.max_retries, seed=self.backoff_seed
        )
        return policy.backoff_delay(job_seq, 0, attempt)


@dataclass
class BudgetedRun:
    """Outcome of a job's full attempt loop."""

    verdict: SandboxVerdict
    attempts: int

    @property
    def ok(self) -> bool:
        return self.verdict.status == STATUS_OK

    @property
    def error_code(self) -> Optional[str]:
        if self.ok:
            return None
        return STATUS_TO_CODE.get(self.verdict.status, errors.WORKER_DIED)


def run_job_with_budget(
    payload: Dict[str, Any],
    budget: JobBudget,
    job_seq: int,
    on_attempt: Optional[Callable[[int], None]] = None,
    on_child_start: Optional[Callable[[int], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> BudgetedRun:
    """Run one job under its budget, retrying with seeded backoff.

    Blocking -- the manager calls this from a worker thread.  Attempt 0
    honors ``payload['resume']`` as given (crash recovery passes True);
    every subsequent attempt forces ``resume=True`` so committed
    progress from the failed attempt is never re-simulated.
    """
    verdict = SandboxVerdict("killed", detail="never attempted")
    attempts = 0
    for attempt in range(budget.max_retries + 1):
        if attempt > 0:
            sleep(budget.backoff_delay(job_seq, attempt - 1))
        task = dict(payload, resume=payload.get("resume") or attempt > 0)
        chaos = task.get("chaos")
        if chaos:
            from repro.robustness.chaos import ServeChaosPlan

            task["chaos"] = ServeChaosPlan.from_dict(chaos).for_attempt(
                attempt
            )
        if on_attempt is not None:
            on_attempt(attempt)
        attempts = attempt + 1
        verdict = run_sandboxed(
            job_child_main,
            (task,),
            timeout_s=budget.wall_s,
            mem_bytes=(
                budget.mem_mb * 1024 * 1024 if budget.mem_mb else None
            ),
            pdeathsig=True,
            on_start=on_child_start,
        )
        if verdict.status == STATUS_OK:
            break
    return BudgetedRun(verdict=verdict, attempts=attempts)
