"""Job records: the unit of state the journal makes durable.

A job's life is a tiny state machine::

    queued -> running -> done        (result in the content-addressed cache)
                      -> partial     (budget expired; last committed
                                      checkpoint served as a partial result)
                      -> failed      (structured error code, e.g. B003)

plus ``done`` directly from submission when the result cache already
holds the answer.  Every transition is journaled before it is acted on,
so a crashed server reconstructs exactly this machine on restart:
``queued`` jobs are still queued, ``running`` jobs are re-dispatched
with ``resume=True`` against their checkpoint journal, terminal jobs
are served from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Job states (terminal: done / partial / failed).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
PARTIAL = "partial"
FAILED = "failed"

TERMINAL_STATES = (DONE, PARTIAL, FAILED)

#: Priority classes, best first.  Order is the scheduling order.
PRIORITY_CLASSES = ("interactive", "standard", "batch")

#: Target-fault universes a submission may request (mirrors the CLI).
TARGET_MODES = ("collapsed", "detectable")


@dataclass
class JobRecord:
    """Everything the service knows about one submission."""

    job_id: str
    seq: int                      # monotone submission sequence number
    tenant: str
    priority: str
    targets: str                  # one of TARGET_MODES
    config: Dict[str, Any]        # BistConfig.to_dict() (result-affecting)
    circuit_name: str
    circuit_fingerprint: str
    submission_key: str           # content-addressed result-cache key
    bench_path: str               # spooled netlist, relative to data_dir
    state: str = QUEUED
    attempts: int = 0
    cached: bool = False          # served from the result cache, no child
    result_key: Optional[str] = None
    session_fingerprint: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    submitted_at: float = 0.0     # wall-clock, informational only
    finished_at: Optional[float] = None
    chaos: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "tenant": self.tenant,
            "priority": self.priority,
            "targets": self.targets,
            "config": self.config,
            "circuit_name": self.circuit_name,
            "circuit_fingerprint": self.circuit_fingerprint,
            "submission_key": self.submission_key,
            "bench_path": self.bench_path,
            "state": self.state,
            "attempts": self.attempts,
            "cached": self.cached,
            "result_key": self.result_key,
            "session_fingerprint": self.session_fingerprint,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "chaos": self.chaos,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        return cls(
            job_id=data["job_id"],
            seq=data["seq"],
            tenant=data["tenant"],
            priority=data["priority"],
            targets=data["targets"],
            config=data["config"],
            circuit_name=data["circuit_name"],
            circuit_fingerprint=data["circuit_fingerprint"],
            submission_key=data["submission_key"],
            bench_path=data["bench_path"],
            state=data.get("state", QUEUED),
            attempts=data.get("attempts", 0),
            cached=data.get("cached", False),
            result_key=data.get("result_key"),
            session_fingerprint=data.get("session_fingerprint"),
            error=data.get("error"),
            submitted_at=data.get("submitted_at", 0.0),
            finished_at=data.get("finished_at"),
            chaos=data.get("chaos") or {},
        )

    def public_dict(self) -> Dict[str, Any]:
        """The status payload clients see (spool paths stay private)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "targets": self.targets,
            "circuit": self.circuit_name,
            "circuit_fingerprint": self.circuit_fingerprint,
            "submission_key": self.submission_key,
            "state": self.state,
            "attempts": self.attempts,
            "cached": self.cached,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


def count_by_state(jobs: List[JobRecord]) -> Dict[str, int]:
    counts = {s: 0 for s in (QUEUED, RUNNING, DONE, PARTIAL, FAILED)}
    for job in jobs:
        counts[job.state] = counts.get(job.state, 0) + 1
    return counts
