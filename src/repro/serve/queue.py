"""Multi-tenant admission control: priorities, rate limits, bounded depth.

The queue is the service's overload valve.  Three rules, applied at
submission time in this order:

1. **Priority class must exist** (``interactive`` > ``standard`` >
   ``batch``); unknown classes are a 400 (``Q003``), not a silent
   default -- a typo'd priority is a client bug worth surfacing.
2. **Per-tenant token bucket**: each tenant refills at ``rate_per_s``
   up to ``burst``; an empty bucket sheds the submission with ``Q002``
   and a ``retry_after`` hint instead of letting one tenant starve the
   rest.
3. **Bounded depth**: at ``max_depth`` pending jobs the queue sheds
   with ``Q001`` -- the 429 a client can back off on, rather than the
   collapse (unbounded memory, minutes of latency) it cannot.

Scheduling is strict priority, FIFO within a class.  Recovery re-queues
(:meth:`MultiTenantQueue.requeue`) bypass rules 2 and 3: those jobs
were already admitted and journaled, and durability outranks shedding.

The clock is injectable so rate-limit tests are deterministic; the
default is :func:`time.monotonic` (never wall-clock: a step of the
system clock must not refill anyone's bucket).
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve import errors
from repro.serve.errors import ServeError
from repro.serve.models import PRIORITY_CLASSES


class TokenBucket:
    """Classic token bucket with an injectable monotonic clock."""

    def __init__(
        self, rate_per_s: float, burst: float, clock: Callable[[], float]
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate_per_s
        )
        self._last = now

    def try_take(self) -> Optional[float]:
        """Take one token; on failure return seconds until one exists."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        if self.rate_per_s <= 0:
            return float("inf")
        return (1.0 - self._tokens) / self.rate_per_s


class MultiTenantQueue:
    """Bounded, rate-limited, strict-priority job queue.

    Pure data structure (no asyncio, no threads): the manager layers
    its own wakeup on top.  All methods are O(log n) or better.
    """

    def __init__(
        self,
        max_depth: int = 64,
        rate_per_s: float = 2.0,
        burst: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._heap: List[Tuple[int, int, str]] = []  # (rank, tiebreak, id)
        self._tiebreak = itertools.count()
        self._buckets: Dict[str, TokenBucket] = {}
        self.shed_full = 0
        self.shed_rate_limited = 0
        self.admitted = 0

    # -- admission -------------------------------------------------------
    def _rank(self, priority: str) -> int:
        try:
            return PRIORITY_CLASSES.index(priority)
        except ValueError:
            raise ServeError(
                errors.BAD_PRIORITY,
                f"unknown priority {priority!r}; one of "
                f"{', '.join(PRIORITY_CLASSES)}",
                http_status=400,
            ) from None

    def submit(self, job_id: str, tenant: str, priority: str) -> None:
        """Admit a job or shed it with a structured 429-style error."""
        rank = self._rank(priority)
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate_per_s, self.burst, self._clock
            )
        retry_after = bucket.try_take()
        if retry_after is not None:
            self.shed_rate_limited += 1
            raise ServeError(
                errors.RATE_LIMITED,
                f"tenant {tenant!r} is over its submission rate",
                http_status=429,
                detail={"retry_after_s": round(retry_after, 3)},
            )
        if len(self._heap) >= self.max_depth:
            self.shed_full += 1
            raise ServeError(
                errors.QUEUE_FULL,
                f"queue depth {self.max_depth} reached; retry later",
                http_status=429,
                detail={"depth": len(self._heap)},
            )
        heapq.heappush(self._heap, (rank, next(self._tiebreak), job_id))
        self.admitted += 1

    def requeue(self, job_id: str, priority: str) -> None:
        """Re-admit a journaled job during crash recovery.

        No rate limit and no depth bound: the job was already accepted
        and made durable; forgetting it now would break the service's
        central promise.
        """
        rank = self._rank(priority)
        heapq.heappush(self._heap, (rank, next(self._tiebreak), job_id))

    # -- scheduling ------------------------------------------------------
    def pop(self) -> Optional[str]:
        """The best pending job id, or None when idle."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    # -- introspection ---------------------------------------------------
    def depth(self) -> int:
        return len(self._heap)

    def depth_by_class(self) -> Dict[str, int]:
        counts = {p: 0 for p in PRIORITY_CLASSES}
        for rank, _, _ in self._heap:
            counts[PRIORITY_CLASSES[rank]] += 1
        return counts

    def stats(self) -> Dict[str, object]:
        return {
            "depth": self.depth(),
            "by_class": self.depth_by_class(),
            "max_depth": self.max_depth,
            "admitted": self.admitted,
            "shed_full": self.shed_full,
            "shed_rate_limited": self.shed_rate_limited,
            "tenants": len(self._buckets),
        }
