"""``repro serve``: a durable, crash-safe BIST-characterization service.

The paper's Procedure 2 takes minutes per circuit; this package turns
:class:`repro.core.session.LimitedScanBist` into a long-running job
service that survives being SIGKILLed at any instant:

- every acknowledged submission and state transition is fsynced to a
  JSONL job journal (:mod:`~repro.serve.journal`) *before* it is acted
  on, so a restarted server replays to exactly the pre-crash state;
- in-flight jobs resume from their Procedure 2 checkpoint journals
  (:mod:`repro.robustness.checkpoint`) and produce results
  byte-identical to an uninterrupted run;
- identical submissions are answered from a content-addressed result
  cache (:mod:`~repro.serve.cache`) without a single fault-simulation
  dispatch;
- admission control (:mod:`~repro.serve.queue`) sheds overload with
  structured 429-style errors instead of collapsing;
- each job runs in a sandboxed child under wall-clock and memory
  budgets (:mod:`~repro.serve.budgets`) with seeded-deterministic retry
  backoff and graceful degradation to partial results;
- ingestion (:meth:`JobManager.submit <repro.serve.jobs.JobManager.submit>`)
  is a trust boundary: the hardened ``.bench`` parser and the
  structural lint gate refuse malformed netlists with stable
  ``E``/``S`` codes before they cost any queue capacity.

Everything is standard library + the repository itself: the HTTP layer
(:mod:`~repro.serve.server`) is hand-rolled on ``asyncio.start_server``
and the client (:mod:`~repro.serve.client`) on ``http.client``.

Start it with ``repro serve --data-dir DIR``; see ``docs/serving.md``.
"""

from repro.serve.budgets import BudgetedRun, JobBudget, run_job_with_budget
from repro.serve.cache import ResultCache, submission_key
from repro.serve.client import ServeClient
from repro.serve.errors import ServeError
from repro.serve.jobs import JobManager
from repro.serve.journal import JOB_JOURNAL_VERSION, JobJournal, JobJournalError
from repro.serve.models import (
    DONE,
    FAILED,
    PARTIAL,
    PRIORITY_CLASSES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRecord,
)
from repro.serve.queue import MultiTenantQueue, TokenBucket
from repro.serve.server import ServeApp, serve_forever

__all__ = [
    "BudgetedRun",
    "JobBudget",
    "run_job_with_budget",
    "ResultCache",
    "submission_key",
    "ServeClient",
    "ServeError",
    "JobManager",
    "JOB_JOURNAL_VERSION",
    "JobJournal",
    "JobJournalError",
    "DONE",
    "FAILED",
    "PARTIAL",
    "PRIORITY_CLASSES",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "JobRecord",
    "MultiTenantQueue",
    "TokenBucket",
    "ServeApp",
    "serve_forever",
]
