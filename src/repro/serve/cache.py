"""Content-addressed Procedure 2 result cache.

The paper's Procedure 2 is minutes-scale on real circuits, but its
output is a pure function of ``(circuit structure, result-affecting
config, target-fault universe)``.  The cache key -- the *submission
fingerprint* -- hashes exactly those inputs:

- the submitted circuit name and
  :func:`repro.robustness.checkpoint.circuit_fingerprint` (canonical
  ``.bench`` text -- the same structural identity the compile cache
  uses; the name rides along because served results embed it), plus
- :meth:`BistConfig.to_dict` (execution knobs excluded, so serial and
  parallel submissions share entries), plus
- the target *mode* (``collapsed``/``detectable``) rather than the
  materialized fault list, so the key is computable at submission time
  without running fault collapse or PODEM classification.

The finer-grained
:func:`~repro.robustness.checkpoint.session_fingerprint` (which hashes
the materialized fault list) is computed by the job worker and stored
*inside* each entry as provenance: two submissions with the same
submission key are guaranteed the same session fingerprint, because the
fault list is itself a deterministic function of the hashed inputs.

Entries are canonical JSON (sorted keys), written atomically, keyed by
``<key>.v<FORMAT_VERSION>.json``.  A torn or corrupt entry is a miss
that the next completed job silently heals -- exactly the compile
cache's contract (:mod:`repro.circuit.cache`).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.robustness.atomic import atomic_write_text


def submission_key(
    circuit_name: str, circuit_fingerprint: str, config: Any, targets: str
) -> str:
    """The content-addressed result-cache key for one submission.

    The circuit *name* participates (as it does in
    ``session_fingerprint``): results embed the name, so keying on it
    keeps every cache hit byte-identical to a fresh run of the same
    submission.
    """
    digest = hashlib.sha256()
    digest.update(circuit_name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(circuit_fingerprint.encode("utf-8"))
    digest.update(
        json.dumps(config.to_dict(), sort_keys=True).encode("utf-8")
    )
    digest.update(targets.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """On-disk store of served Procedure 2 results."""

    #: Bump when the stored payload's schema changes incompatibly.
    FORMAT_VERSION = 1

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.v{self.FORMAT_VERSION}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None on any kind of miss."""
        try:
            payload = json.loads(self.path_for(key).read_text("utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != self.FORMAT_VERSION
            or payload.get("key") != key
            or "result" not in payload
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(
        self,
        key: str,
        result: Dict[str, Any],
        session_fingerprint: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Atomically persist a completed result under ``key``.

        Only *complete* runs belong here: a partial result (budget
        expiry) is job state, not a cacheable answer -- callers keep
        those under the job directory instead.
        """
        payload = {
            "format": self.FORMAT_VERSION,
            "key": key,
            "session_fingerprint": session_fingerprint,
            "result": result,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.path_for(key),
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )
        self.stores += 1
        return payload

    def stats(self) -> Dict[str, int]:
        entries = (
            list(self.root.glob(f"*.v{self.FORMAT_VERSION}.json"))
            if self.root.is_dir()
            else []
        )
        return {
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
