"""Durable job journal: the service's single source of truth.

Same conventions as the Procedure 2 checkpoint journal
(:mod:`repro.robustness.checkpoint`): an append-only JSONL file whose
first line is an atomically-written header, every append flushed and
fsynced, and a torn tail -- the expected outcome of a SIGKILL mid-write
-- treated as an uncommitted transaction.

Records:

- ``header`` -- version and service name, written once atomically.
- ``submit`` -- the full :class:`~repro.serve.models.JobRecord` of a
  new job.  Durable *before* the submission is acknowledged: an
  acknowledged job can never be forgotten by a crash.
- ``state`` -- one state transition (``running``/``done``/``partial``/
  ``failed``) with its attendant fields (attempt count, result key,
  error).  Durable *before* the transition is acted on.

Replay folds the records into the latest :class:`JobRecord` per job.
Unlike the checkpoint journal, a torn tail is also *healed*: the file
is truncated back to the last committed record before appending resumes,
so one crash can never corrupt the next record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.robustness.atomic import atomic_write_text, fsync_dir
from repro.serve.models import JobRecord

#: Bump when a record's schema changes incompatibly.
JOB_JOURNAL_VERSION = 1


class JobJournalError(RuntimeError):
    """The journal exists but is not a compatible job journal."""


class JobJournal:
    """Append-only, fsynced, torn-tail-healing job journal.

    Attributes:
        path: the JSONL file.
        jobs: job id -> latest :class:`JobRecord`, rebuilt on open.
        records: committed record count (header included).
        healed_bytes: torn-tail bytes dropped by the last open.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.jobs: Dict[str, JobRecord] = {}
        self.records = 0
        self.healed_bytes = 0
        self._order: List[str] = []  # submission order, for listing
        if self.path.exists():
            self._replay()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self.path,
                json.dumps(
                    {
                        "kind": "header",
                        "version": JOB_JOURNAL_VERSION,
                        "service": "repro-serve",
                    },
                    sort_keys=True,
                )
                + "\n",
            )
            self.records = 1

    # -- replay ----------------------------------------------------------
    def _replay(self) -> None:
        good_end = 0
        records: List[Dict[str, Any]] = []
        with open(self.path, "rb") as fh:
            data = fh.read()
        offset = 0
        for raw in data.split(b"\n"):
            line_end = offset + len(raw) + 1  # +1 for the newline
            stripped = raw.strip()
            if stripped:
                try:
                    record = json.loads(stripped.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                if not isinstance(record, dict) or "kind" not in record:
                    break
                # A record is committed only if its newline landed.
                if line_end > len(data):
                    break
                records.append(record)
                good_end = line_end
            elif line_end <= len(data):
                good_end = line_end
            offset = line_end
        if not records or records[0].get("kind") != "header":
            raise JobJournalError(f"{self.path} is not a job journal")
        if records[0].get("version") != JOB_JOURNAL_VERSION:
            raise JobJournalError(
                f"{self.path} has journal version "
                f"{records[0].get('version')!r}, this code reads "
                f"{JOB_JOURNAL_VERSION}"
            )
        if good_end < len(data):
            # Heal the torn tail so future appends start on a record
            # boundary.  The dropped suffix was never acknowledged.
            self.healed_bytes = len(data) - good_end
            with open(self.path, "rb+") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
        for record in records[1:]:
            kind = record["kind"]
            if kind == "submit":
                job = JobRecord.from_dict(record["job"])
                if job.job_id not in self.jobs:
                    self._order.append(job.job_id)
                self.jobs[job.job_id] = job
            elif kind == "state":
                job = self.jobs.get(record.get("job_id", ""))
                if job is None:
                    continue  # state for an unknown job: skip, don't die
                job.state = record["state"]
                for key in (
                    "attempts",
                    "cached",
                    "result_key",
                    "session_fingerprint",
                    "error",
                    "finished_at",
                ):
                    if key in record:
                        setattr(job, key, record[key])
            # Unknown kinds skipped: forward-compatible within a version.
        self.records = len(records)

    # -- appends ---------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self.records += 1

    def record_submit(self, job: JobRecord) -> None:
        """Durably admit a job (fsynced before the caller acknowledges)."""
        self._append({"kind": "submit", "job": job.to_dict()})
        if job.job_id not in self.jobs:
            self._order.append(job.job_id)
        self.jobs[job.job_id] = job

    def record_state(self, job: JobRecord, **extra: Any) -> None:
        """Durably record ``job``'s current state (plus ``extra`` fields)."""
        record = {
            "kind": "state",
            "job_id": job.job_id,
            "state": job.state,
            "attempts": job.attempts,
            **extra,
        }
        if job.terminal:
            record.update(
                cached=job.cached,
                result_key=job.result_key,
                session_fingerprint=job.session_fingerprint,
                error=job.error,
                finished_at=job.finished_at,
            )
        self._append(record)

    # -- queries ---------------------------------------------------------
    def in_order(self) -> List[JobRecord]:
        """Jobs in submission order."""
        return [self.jobs[job_id] for job_id in self._order]

    def next_seq(self) -> int:
        return 1 + max((j.seq for j in self.jobs.values()), default=0)

    def stats(self) -> Dict[str, Any]:
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "records": self.records,
            "bytes": size,
            "healed_bytes": self.healed_bytes,
            # Every append is fsynced before it is acted on, so the
            # durable journal never trails the in-memory state.
            "lag_records": 0,
        }
