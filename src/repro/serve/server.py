"""Minimal asyncio HTTP/1.1 front end for the job manager.

Hand-rolled on :func:`asyncio.start_server` because the repository's
rule is *stdlib only*: no web framework, no event-loop add-ons.  The
protocol surface is deliberately tiny -- JSON request/response,
``Connection: close``, no chunked encoding, bounded request size --
because every feature a server does not have is a feature that cannot
be exploited or crash mid-write.

Routes::

    GET  /healthz                  liveness + queue/cache/journal gauges
    POST /jobs                     submit a netlist + config -> job id
    GET  /jobs                     all jobs, submission order
    GET  /jobs/<id>                one job's status
    GET  /jobs/<id>/events?since=N replayable progress event stream
    GET  /jobs/<id>/result         the (complete, cached, or partial) result

Every error body is the structured :meth:`ServeError.to_dict` envelope
with a stable code -- clients branch on ``error.code``, never on prose.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve import errors
from repro.serve.errors import ServeError
from repro.serve.jobs import JobManager

#: Request bodies above this are refused before buffering completes:
#: the largest ISCAS-89 netlist is ~1.2 MB, so 16 MiB is generous.
MAX_BODY_BYTES = 16 * 1024 * 1024
#: Cap on the request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _response(status: int, payload: Dict[str, Any]) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode("ascii")
    return head + body


class ServeApp:
    """Routes HTTP requests onto one :class:`JobManager`."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager

    # -- request handling ------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._dispatch(reader)
        except ServeError as exc:
            status, payload = exc.http_status, exc.to_dict()
        except Exception as exc:  # noqa: BLE001 - last-resort envelope
            status, payload = 500, {
                "error": {
                    "code": "X000",
                    "message": f"internal error: {type(exc).__name__}",
                }
            }
        try:
            writer.write(_response(status, payload))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _dispatch(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        method, target, headers = await self._read_head(reader)
        body = await self._read_body(reader, headers)
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)

        if path == "/healthz" and method == "GET":
            return 200, self.manager.healthz()
        if path == "/jobs":
            if method == "POST":
                job = self.manager.submit(self._json_body(body))
                return 202, job.public_dict()
            if method == "GET":
                return 200, {"jobs": self.manager.list_jobs()}
            raise ServeError(
                errors.BAD_REQUEST, f"{method} not allowed here", 405
            )
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):].split("/")
            if method != "GET":
                raise ServeError(
                    errors.BAD_REQUEST, f"{method} not allowed here", 405
                )
            job_id = rest[0]
            if len(rest) == 1:
                return 200, self.manager.get(job_id).public_dict()
            if len(rest) == 2 and rest[1] == "events":
                since = self._int_param(query, "since", 0)
                return 200, {
                    "job_id": job_id,
                    "events": self.manager.events(job_id, since=since),
                }
            if len(rest) == 2 and rest[1] == "result":
                return 200, self.manager.result(job_id)
        raise ServeError(errors.BAD_REQUEST, f"no route {target!r}", 404)

    # -- parsing helpers -------------------------------------------------
    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, Dict[str, str]]:
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            raise ServeError(
                errors.BAD_REQUEST, "truncated request head", 400
            ) from exc
        except asyncio.LimitOverrunError as exc:
            raise ServeError(
                errors.BAD_REQUEST, "request head too large", 413
            ) from exc
        if len(raw) > MAX_HEAD_BYTES:
            raise ServeError(errors.BAD_REQUEST, "request head too large", 413)
        try:
            head = raw.decode("ascii")
        except UnicodeDecodeError as exc:
            raise ServeError(
                errors.BAD_REQUEST, "request head is not ASCII", 400
            ) from exc
        lines = head.split("\r\n")
        request_line = lines[0].split(" ")
        if len(request_line) != 3:
            raise ServeError(errors.BAD_REQUEST, "malformed request line", 400)
        method, target, _version = request_line
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ServeError(errors.BAD_REQUEST, "malformed header", 400)
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, headers

    @staticmethod
    async def _read_body(
        reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise ServeError(
                errors.BAD_REQUEST, "bad Content-Length", 400
            ) from exc
        if length < 0:
            raise ServeError(errors.BAD_REQUEST, "bad Content-Length", 400)
        if length > MAX_BODY_BYTES:
            raise ServeError(
                errors.BAD_REQUEST,
                f"body exceeds {MAX_BODY_BYTES} bytes",
                413,
            )
        if length == 0:
            return b""
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ServeError(
                errors.BAD_REQUEST, "truncated request body", 400
            ) from exc

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServeError(
                errors.BAD_REQUEST, f"body is not valid JSON: {exc}", 400
            ) from exc
        if not isinstance(payload, dict):
            raise ServeError(
                errors.BAD_REQUEST, "body must be a JSON object", 400
            )
        return payload

    @staticmethod
    def _int_param(query: Dict[str, Any], name: str, default: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError as exc:
            raise ServeError(
                errors.BAD_REQUEST, f"'{name}' must be an integer", 400
            ) from exc


async def serve_forever(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    port_file: Optional[Path] = None,
    ready: Optional[asyncio.Event] = None,
    stop: Optional[asyncio.Event] = None,
) -> None:
    """Run the HTTP server and ``workers`` job loops until cancelled.

    ``port=0`` binds an ephemeral port; the bound port is written to
    ``port_file`` (atomically) so probes and tests can find it without
    racing the log output.  SIGTERM/SIGINT cancel everything cleanly --
    which is safe at *any* point, because every acknowledged effect is
    already journaled.  Tests hosting the server in a side thread pass
    their own ``stop`` event (set via ``loop.call_soon_threadsafe``)
    since signal handlers only install on the main thread.
    """
    from repro.robustness.atomic import atomic_write_text

    app = ServeApp(manager)
    server = await asyncio.start_server(
        app.handle, host=host, port=port, limit=MAX_HEAD_BYTES
    )
    bound_port = server.sockets[0].getsockname()[1]
    if port_file is not None:
        atomic_write_text(port_file, f"{bound_port}\n")
    worker_tasks = [
        asyncio.create_task(manager.run_worker(), name=f"worker-{i}")
        for i in range(max(1, workers))
    ]

    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # non-Unix loop or non-main thread: rely on cancellation
    if ready is not None:
        ready.set()
    try:
        async with server:
            await stop.wait()
    finally:
        manager.stop()
        for task in worker_tasks:
            task.cancel()
        await asyncio.gather(*worker_tasks, return_exceptions=True)
