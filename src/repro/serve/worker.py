"""The job worker: what actually runs inside the sandboxed child.

One job = one forked child (see :mod:`repro.fuzz.sandbox`) so a runaway
simulation can be killed, memory-capped, and retried without taking the
service down.  The child re-parses the spooled netlist through the
hardened parser (defense in depth -- the server already validated it),
builds the session, and drives Procedure 2 through
:meth:`~repro.core.session.LimitedScanBist.run_checkpointed`, so every
iteration is committed to the job's checkpoint journal before the next
begins.  A retried or resumed attempt passes ``resume=True`` and
continues from the committed state, byte-identical to an uninterrupted
run -- the property the whole serving layer's crash story rests on.

:func:`partial_result_from_checkpoint` is the degradation path: when a
job exhausts its budgets, the parent reconstructs the coverage achieved
so far purely from the journal's committed transactions -- no
simulation, no fault list -- and serves that as an honest partial
result instead of a bare failure.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.robustness.checkpoint import CheckpointError, load_checkpoint


def job_child_main(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one characterization job; returns a plain-dict verdict.

    ``payload`` keys: ``bench_path`` (spooled canonical netlist),
    ``circuit_name``, ``config`` (result-affecting dict), ``targets``
    (``collapsed``/``detectable``), ``checkpoint`` (journal path),
    ``resume`` (bool), ``cache_dir`` (optional compile cache),
    ``chaos`` (optional :class:`ServeChaosPlan` dict).
    Imports live inside the function: it runs in a forked child and the
    parent should not pay for simulator imports at server startup.
    """
    from pathlib import Path

    from repro.circuit.bench_parser import parse_bench
    from repro.circuit.cache import CompileCache
    from repro.core.config import BistConfig
    from repro.core.session import LimitedScanBist
    from repro.experiments.serialize import result_to_dict
    from repro.faults.collapse import collapse_faults
    from repro.robustness.chaos import ServeChaosPlan, install_commit_bomb
    from repro.robustness.checkpoint import session_fingerprint

    chaos = ServeChaosPlan.from_dict(payload.get("chaos"))
    if chaos.active:
        install_commit_bomb(chaos.die_after_commits, chaos.commit_delay_s)

    circuit = parse_bench(
        Path(payload["bench_path"]).read_text("utf-8"),
        name=payload.get("circuit_name", "bench"),
    )
    config = BistConfig.from_dict(payload["config"])
    cache_dir = payload.get("cache_dir")
    cache = CompileCache(cache_dir) if cache_dir else None
    targets = (
        collapse_faults(circuit)
        if payload.get("targets", "collapsed") == "collapsed"
        else None
    )
    bist = LimitedScanBist(
        circuit, config=config, target_faults=targets, cache=cache
    )
    result = bist.run_checkpointed(
        payload["checkpoint"], resume=bool(payload.get("resume"))
    )
    return {
        "result": result_to_dict(result),
        "session_fingerprint": session_fingerprint(
            circuit.name, config, bist.target_faults
        ),
        "complete": result.complete,
    }


def partial_result_from_checkpoint(path: Any) -> Optional[Dict[str, Any]]:
    """Committed coverage of an unfinished job, from its journal alone.

    Returns a result-shaped dict with ``"partial": True`` (pairs,
    iteration cursor, detection counts -- everything the journal's
    committed transactions prove), or None when the journal is absent
    or empty, in which case the job has nothing honest to report.
    """
    try:
        state = load_checkpoint(path)
    except CheckpointError:
        return None
    header = state.header
    ts0_detected = (
        len(state.ts0["detected"]) if state.ts0 is not None else 0
    )
    detected_total = ts0_detected + sum(
        p["newly_detected"] for p in state.pairs
    )
    num_targets = header.get("num_targets", 0)
    return {
        "partial": True,
        "circuit": header.get("circuit"),
        "config": header.get("config"),
        "n_sv": header.get("n_sv"),
        "num_targets": num_targets,
        "ts0_detected": ts0_detected,
        "complete": False,
        "iterations_run": state.cursor[0],
        "pairs": [
            {
                "iteration": p["iteration"],
                "d1": p["d1"],
                "newly_detected": p["newly_detected"],
                "nsh": p["nsh"],
                "ls_time_units": p["ls_time_units"],
                "total_time_units": p["total_time_units"],
            }
            for p in state.pairs
        ],
        "metrics": {
            "det_total": detected_total,
            "fault_coverage": (
                detected_total / num_targets if num_targets else 1.0
            ),
        },
    }
