"""Stable, structured errors for the job service.

Every rejection the service issues carries a short stable code, an HTTP
status, and a human message; clients switch on the code, never on
message text.  Three code families exist:

- ``E001``--``E010`` -- netlist parse rejections, verbatim from the
  hardened ``.bench`` parser (:mod:`repro.circuit.bench_parser`): the
  service's ingestion boundary *is* the parser's trust boundary.
- ``S00x`` -- structural lint rejections, verbatim from the design-rule
  registry (:mod:`repro.analysis`): a netlist that parses but cannot be
  simulated soundly is refused before it costs queue capacity.
- ``Q/J/C/B`` -- service-level codes defined here: queueing (``Qxxx``,
  the 429-style load-shedding family), job lookup (``Jxxx``), request
  construction (``Cxxx``), and resource budgets (``Bxxx``, recorded on
  jobs rather than returned over HTTP).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Service-level error codes (stable; add, never repurpose).
QUEUE_FULL = "Q001"          # bounded queue depth exceeded -> 429
RATE_LIMITED = "Q002"        # tenant token bucket empty -> 429
BAD_PRIORITY = "Q003"        # unknown priority class -> 400
UNKNOWN_JOB = "J001"         # no such job id -> 404
RESULT_NOT_READY = "J002"    # job exists, still queued/running -> 409
BAD_REQUEST = "C001"         # malformed body / missing fields -> 400
BAD_CONFIG = "C002"          # BistConfig rejected the parameters -> 400
BUDGET_WALL = "B001"         # wall-clock budget exhausted (job outcome)
BUDGET_MEMORY = "B002"       # address-space budget exhausted (job outcome)
WORKER_DIED = "B003"         # job worker died without a verdict (job outcome)


class ServeError(Exception):
    """A structured rejection: stable ``code`` + HTTP status + detail."""

    def __init__(
        self,
        code: str,
        message: str,
        http_status: int = 400,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.http_status = http_status
        self.detail = detail or {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "error": {
                "code": self.code,
                "message": str(self),
                **({"detail": self.detail} if self.detail else {}),
            }
        }


def from_parse_error(exc: Any) -> ServeError:
    """Wrap a :class:`~repro.circuit.bench_parser.BenchParseError`.

    The primary code is the first issue's ``E`` code; every issue rides
    along in ``detail`` so a client sees the parser's full diagnosis in
    one round trip.
    """
    issues = [
        {"code": i.code, "lineno": i.lineno, "message": i.message}
        for i in exc.issues
    ]
    first = issues[0] if issues else {"code": "E000", "message": str(exc)}
    return ServeError(
        first["code"],
        f"netlist rejected: {first['message']}",
        http_status=422,
        detail={"issues": issues},
    )


def from_lint_report(report: Any) -> ServeError:
    """Wrap a failing structural :class:`~repro.analysis.LintReport`."""
    errors = [
        {"code": i.rule_id, "message": i.message} for i in report.errors
    ]
    first = errors[0]
    return ServeError(
        first["code"],
        f"netlist rejected by design-rule lint: {first['message']}",
        http_status=422,
        detail={"issues": errors},
    )
