"""The job manager: ingestion, scheduling, execution, recovery.

Write-ahead discipline throughout: every decision is journaled
(fsynced) *before* it is acted on or acknowledged, so the journal plus
the per-job checkpoint journals are a complete reconstruction of the
service at any crash point:

- a job is enqueued only after its ``submit`` record and spooled
  netlist are durable;
- a worker child is forked only after the ``running`` record is
  durable;
- a result is acknowledged only after it is in the content-addressed
  cache and the terminal record is durable.

Recovery is therefore a pure replay: ``queued`` jobs are re-queued,
``running`` jobs are re-dispatched with ``resume=True`` (their
checkpoint journal carries the committed iterations; the resumed result
is byte-identical), terminal jobs serve from disk.

The manager is asyncio-native but does no simulation itself: job
children run via :func:`repro.serve.budgets.run_job_with_budget` inside
``asyncio.to_thread``, so the event loop stays responsive while minutes
of fault simulation happen in sandboxed processes.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import __version__
from repro.robustness.chaos import SERVER_CHAOS_EXIT, ServeChaosPlan
from repro.serve import errors
from repro.serve.budgets import JobBudget, run_job_with_budget
from repro.serve.cache import ResultCache, submission_key
from repro.serve.errors import ServeError
from repro.serve.journal import JobJournal
from repro.serve.models import (
    DONE,
    FAILED,
    PARTIAL,
    QUEUED,
    RUNNING,
    TARGET_MODES,
    JobRecord,
    count_by_state,
)
from repro.serve.queue import MultiTenantQueue
from repro.serve.worker import partial_result_from_checkpoint

#: Fields of a submission body the service understands.
_KNOWN_FIELDS = {
    "bench", "name", "config", "tenant", "priority", "targets", "chaos",
}


class JobManager:
    """Owns the journal, queue, cache, and worker loop for one data dir."""

    def __init__(
        self,
        data_dir: Union[str, Path],
        queue: Optional[MultiTenantQueue] = None,
        budget: Optional[JobBudget] = None,
        compile_cache_dir: Optional[Union[str, Path]] = None,
        chaos: Optional[ServeChaosPlan] = None,
        allow_request_chaos: bool = False,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.journal = JobJournal(self.data_dir / "jobs.jsonl")
        self.queue = queue or MultiTenantQueue()
        self.budget = budget or JobBudget()
        self.cache = ResultCache(self.data_dir / "results")
        self.compile_cache_dir = (
            str(compile_cache_dir) if compile_cache_dir else None
        )
        self.chaos = chaos or ServeChaosPlan()
        self.allow_request_chaos = allow_request_chaos
        self.started_monotonic = time.monotonic()
        self.jobs_simulated = 0      # worker children that ran to a verdict
        self.submissions = 0
        self._wakeup = asyncio.Event()
        self._stopping = False
        self._recover()

    # ------------------------------------------------------------------
    # Ingestion: the trust boundary.
    # ------------------------------------------------------------------
    def submit(self, body: Dict[str, Any]) -> JobRecord:
        """Validate, journal, and enqueue one submission.

        Raises :class:`ServeError` with a stable code for every way a
        submission can be refused; on success the returned record is
        durable (a crash after return can never forget the job).
        """
        from repro.analysis import lint_structural
        from repro.circuit.bench_parser import (
            BenchParseError,
            parse_bench,
            write_bench,
        )
        from repro.core.config import BistConfig
        from repro.robustness.atomic import atomic_write_text
        from repro.robustness.checkpoint import circuit_fingerprint

        if not isinstance(body, dict):
            raise ServeError(
                errors.BAD_REQUEST, "body must be a JSON object", 400
            )
        unknown = sorted(set(body) - _KNOWN_FIELDS)
        if unknown:
            raise ServeError(
                errors.BAD_REQUEST,
                f"unknown field(s): {', '.join(unknown)}",
                400,
            )
        bench_text = body.get("bench")
        if not isinstance(bench_text, str) or not bench_text.strip():
            raise ServeError(
                errors.BAD_REQUEST, "'bench' must be netlist text", 400
            )
        name = body.get("name", "bench")
        if not isinstance(name, str) or not name:
            raise ServeError(errors.BAD_REQUEST, "'name' must be a string", 400)
        tenant = body.get("tenant", "anonymous")
        if not isinstance(tenant, str) or not tenant:
            raise ServeError(
                errors.BAD_REQUEST, "'tenant' must be a string", 400
            )
        priority = body.get("priority", "standard")
        targets = body.get("targets", "collapsed")
        if targets not in TARGET_MODES:
            raise ServeError(
                errors.BAD_REQUEST,
                f"'targets' must be one of {', '.join(TARGET_MODES)}",
                400,
            )
        chaos_req = body.get("chaos")
        if chaos_req and not self.allow_request_chaos:
            raise ServeError(
                errors.BAD_REQUEST,
                "per-request chaos requires the server's --enable-chaos",
                400,
            )

        # The parser is the trust boundary: every malformed netlist is
        # refused here with its full E-code diagnosis.
        try:
            circuit = parse_bench(bench_text, name=name)
        except BenchParseError as exc:
            raise errors.from_parse_error(exc) from exc
        # ... and the structural design-rule gate right behind it.
        report = lint_structural(circuit)
        if report.has_errors:
            raise errors.from_lint_report(report)

        config_dict = body.get("config") or {}
        if not isinstance(config_dict, dict):
            raise ServeError(
                errors.BAD_REQUEST, "'config' must be an object", 400
            )
        defaults = BistConfig().to_dict()
        # from_dict ignores keys it does not know; at a trust boundary a
        # typo'd parameter must be a refusal, not a silent default.
        bad_keys = sorted(set(config_dict) - set(defaults))
        if bad_keys:
            raise ServeError(
                errors.BAD_CONFIG,
                f"unknown config parameter(s): {', '.join(bad_keys)}",
                400,
                detail={"known": sorted(defaults)},
            )
        try:
            config = BistConfig.from_dict({**defaults, **config_dict})
        except (ValueError, TypeError, KeyError) as exc:
            raise ServeError(
                errors.BAD_CONFIG, f"invalid config: {exc}", 400
            ) from exc

        fingerprint = circuit_fingerprint(circuit)
        key = submission_key(name, fingerprint, config, targets)
        seq = self.journal.next_seq()
        job = JobRecord(
            job_id=f"j{seq:06d}-{key[:12]}",
            seq=seq,
            tenant=tenant,
            priority=priority,
            targets=targets,
            config=config.to_dict(),
            circuit_name=name,
            circuit_fingerprint=fingerprint,
            submission_key=key,
            bench_path=f"jobs/{seq:06d}/circuit.bench",
            submitted_at=time.time(),
            chaos=dict(chaos_req or {}),
        )

        cached = self.cache.load(key)
        if cached is not None:
            # Identical submission already answered: the job is born
            # terminal, costs no queue slot and no simulation.
            job.state = DONE
            job.cached = True
            job.result_key = key
            job.session_fingerprint = cached.get("session_fingerprint")
            job.finished_at = time.time()
            self.journal.record_submit(job)
            self.submissions += 1
            self._maybe_chaos_exit()
            return job

        # Admission control may shed *before* anything is journaled.
        self.queue.submit(job.job_id, tenant, priority)
        job_dir = self.data_dir / f"jobs/{seq:06d}"
        job_dir.mkdir(parents=True, exist_ok=True)
        # Spool the canonical serialization: the worker's view is then
        # guaranteed structurally identical to what was validated here.
        atomic_write_text(job_dir / "circuit.bench", write_bench(circuit))
        self.journal.record_submit(job)
        self.submissions += 1
        self._wakeup.set()
        self._maybe_chaos_exit()
        return job

    def _maybe_chaos_exit(self) -> None:
        if (
            self.chaos.exit_after_submits is not None
            and self.submissions >= self.chaos.exit_after_submits
        ):
            # Deterministic "crash right after durably admitting a
            # job": the harshest window the journal must cover.
            os._exit(SERVER_CHAOS_EXIT)

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Re-queue every non-terminal journaled job (crash restart)."""
        self.recovered_jobs = 0
        for job in self.journal.in_order():
            if job.state == RUNNING:
                # The previous server died mid-job; its checkpoint
                # journal holds the committed prefix.  Mark the resume
                # durably so a crash loop is visible in the journal.
                job.state = QUEUED
                self.journal.record_state(job, resumed=True)
                self.queue.requeue(job.job_id, job.priority)
                self.recovered_jobs += 1
            elif job.state == QUEUED:
                self.queue.requeue(job.job_id, job.priority)
                self.recovered_jobs += 1
        if self.recovered_jobs:
            self._wakeup.set()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def _job_dir(self, job: JobRecord) -> Path:
        return self.data_dir / f"jobs/{job.seq:06d}"

    def _checkpoint_path(self, job: JobRecord) -> Path:
        return self._job_dir(job) / "checkpoint.jsonl"

    def _payload(self, job: JobRecord, resume: bool) -> Dict[str, Any]:
        chaos = dict(self.chaos.to_dict())
        for key, value in (job.chaos or {}).items():
            if value is not None:
                chaos[key] = value
        return {
            "bench_path": str(self.data_dir / job.bench_path),
            "circuit_name": job.circuit_name,
            "config": job.config,
            "targets": job.targets,
            "checkpoint": str(self._checkpoint_path(job)),
            "resume": resume,
            "cache_dir": self.compile_cache_dir,
            "chaos": chaos,
        }

    async def execute_one(self, job_id: str) -> None:
        """Drive one job to a terminal state (runs in the event loop)."""
        job = self.journal.jobs[job_id]
        resume = self._checkpoint_path(job).exists()
        job.state = RUNNING
        self.journal.record_state(job, resume=resume)

        def on_attempt(attempt: int) -> None:
            job.attempts = job.attempts + 1

        run = await asyncio.to_thread(
            run_job_with_budget,
            self._payload(job, resume),
            self.budget,
            job.seq,
            on_attempt,
        )
        self.jobs_simulated += 1
        job.finished_at = time.time()
        if run.ok:
            payload = run.verdict.payload or {}
            self.cache.store(
                job.submission_key,
                payload.get("result", {}),
                session_fingerprint=payload.get("session_fingerprint"),
            )
            job.state = DONE
            job.result_key = job.submission_key
            job.session_fingerprint = payload.get("session_fingerprint")
            self.journal.record_state(job)
            return
        # Budget exhausted or the worker kept dying: degrade gracefully
        # to the committed checkpoint prefix if there is one.
        partial = partial_result_from_checkpoint(self._checkpoint_path(job))
        job.error = {
            "code": run.error_code,
            "message": run.verdict.detail or run.verdict.status,
            "attempts": run.attempts,
        }
        if partial is not None:
            from repro.robustness.atomic import atomic_write_text

            atomic_write_text(
                self._job_dir(job) / "partial.json",
                json.dumps(partial, sort_keys=True, indent=2) + "\n",
            )
            job.state = PARTIAL
        else:
            job.state = FAILED
        self.journal.record_state(job)

    async def run_worker(self) -> None:
        """One scheduling loop: pop best job, execute, repeat."""
        while not self._stopping:
            job_id = self.queue.pop()
            if job_id is None:
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=1.0)
                except asyncio.TimeoutError:
                    pass
                continue
            await self.execute_one(job_id)

    def stop(self) -> None:
        self._stopping = True
        self._wakeup.set()

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        job = self.journal.jobs.get(job_id)
        if job is None:
            raise ServeError(
                errors.UNKNOWN_JOB, f"no job {job_id!r}", http_status=404
            )
        return job

    def result(self, job_id: str) -> Dict[str, Any]:
        """The job's result document (complete, cached, or partial)."""
        job = self.get(job_id)
        if job.state == DONE:
            payload = self.cache.load(job.result_key or job.submission_key)
            if payload is not None:
                return {
                    "job_id": job.job_id,
                    "state": job.state,
                    "cached": job.cached,
                    "partial": False,
                    "session_fingerprint": payload.get("session_fingerprint"),
                    "result": payload["result"],
                }
            # Cache entry lost (wiped directory): still answer honestly.
            raise ServeError(
                errors.RESULT_NOT_READY,
                f"result for {job_id} is no longer cached; resubmit",
                http_status=409,
            )
        if job.state == PARTIAL:
            partial_path = self._job_dir(job) / "partial.json"
            try:
                partial = json.loads(partial_path.read_text("utf-8"))
            except (OSError, json.JSONDecodeError):
                partial = None
            return {
                "job_id": job.job_id,
                "state": job.state,
                "cached": False,
                "partial": True,
                "error": job.error,
                "result": partial,
            }
        if job.state == FAILED:
            return {
                "job_id": job.job_id,
                "state": job.state,
                "cached": False,
                "partial": False,
                "error": job.error,
                "result": None,
            }
        raise ServeError(
            errors.RESULT_NOT_READY,
            f"job {job_id} is {job.state}",
            http_status=409,
            detail={"state": job.state},
        )

    def events(self, job_id: str, since: int = 0) -> List[Dict[str, Any]]:
        """Progress events, derived from the job's checkpoint journal.

        Deterministic and replayable: event ``seq`` numbers are stable
        across polls and across server restarts, so ``?since=N`` resumes
        a client's stream exactly.
        """
        job = self.get(job_id)
        events: List[Dict[str, Any]] = [
            {"kind": "submitted", "state": QUEUED, "cached": job.cached}
        ]
        path = self._checkpoint_path(job)
        if path.exists():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    lines = fh.readlines()
            except OSError:
                lines = []
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail: uncommitted
                kind = record.get("kind")
                if kind == "ts0":
                    events.append(
                        {"kind": "ts0", "detected": len(record["detected"])}
                    )
                elif kind == "pair":
                    events.append(
                        {
                            "kind": "pair",
                            "iteration": record.get("iteration"),
                            "d1": record.get("d1"),
                            "newly_detected": record.get("newly_detected"),
                        }
                    )
                elif kind == "cursor":
                    events.append(
                        {
                            "kind": "iteration",
                            "iteration": record.get("iteration"),
                        }
                    )
        if job.terminal:
            events.append(
                {"kind": "finished", "state": job.state, "error": job.error}
            )
        for seq, event in enumerate(events):
            event["seq"] = seq
        return events[since:]

    def list_jobs(self) -> List[Dict[str, Any]]:
        return [job.public_dict() for job in self.journal.in_order()]

    def healthz(self) -> Dict[str, Any]:
        """Liveness + the operational gauges an operator actually wants."""
        payload: Dict[str, Any] = {
            "status": "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "queue": self.queue.stats(),
            "jobs": count_by_state(list(self.journal.jobs.values())),
            "journal": self.journal.stats(),
            "result_cache": self.cache.stats(),
            "jobs_simulated": self.jobs_simulated,
            "recovered_jobs": self.recovered_jobs,
        }
        if self.compile_cache_dir:
            from repro.circuit.cache import CompileCache

            payload["compile_cache"] = CompileCache(
                self.compile_cache_dir
            ).stats()
        return payload
