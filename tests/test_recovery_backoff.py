"""Property tests for :meth:`RecoveryPolicy.backoff_delay`.

The serving layer reuses this backoff for job retries
(:meth:`repro.serve.budgets.JobBudget.backoff_delay`), so its contract
is now load-bearing in two places: delays must be a *pure function* of
``(seed, dispatch, shard, attempt)`` (deterministic recovery timing),
nonnegative, capped, and growing no faster than the jittered
exponential envelope.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.sharding import RecoveryPolicy
from repro.serve.budgets import JobBudget

indices = st.integers(min_value=0, max_value=10_000)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
attempts = st.integers(min_value=0, max_value=20)


class TestBackoffProperties:
    @given(seed=seeds, dispatch=indices, shard=indices, attempt=attempts)
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, seed, dispatch, shard, attempt):
        a = RecoveryPolicy(seed=seed).backoff_delay(dispatch, shard, attempt)
        b = RecoveryPolicy(seed=seed).backoff_delay(dispatch, shard, attempt)
        assert a == b

    @given(seed=seeds, dispatch=indices, shard=indices, attempt=attempts)
    @settings(max_examples=200, deadline=None)
    def test_nonnegative_and_capped(self, seed, dispatch, shard, attempt):
        policy = RecoveryPolicy(seed=seed)
        delay = policy.backoff_delay(dispatch, shard, attempt)
        assert 0.0 <= delay <= policy.backoff_cap

    @given(
        seed=seeds,
        dispatch=indices,
        shard=indices,
        attempt=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_exponential_envelope(self, seed, dispatch, shard, attempt):
        """Each delay sits inside the jittered doubling envelope."""
        policy = RecoveryPolicy(seed=seed)
        delay = policy.backoff_delay(dispatch, shard, attempt)
        lo = min(policy.backoff_cap, policy.backoff_base * 2.0**attempt * 0.5)
        hi = min(policy.backoff_cap, policy.backoff_base * 2.0**attempt * 1.5)
        assert lo <= delay <= hi

    @given(dispatch=indices, shard=indices, attempt=attempts)
    @settings(max_examples=50, deadline=None)
    def test_zero_base_disables_backoff(self, dispatch, shard, attempt):
        policy = RecoveryPolicy(backoff_base=0.0)
        assert policy.backoff_delay(dispatch, shard, attempt) == 0.0

    @given(seed=seeds, dispatch=indices, shard=indices)
    @settings(max_examples=100, deadline=None)
    def test_distinct_attempts_jitter_independently(
        self, seed, dispatch, shard
    ):
        """The jitter stream is per-(indices), not one shared sequence:
        asking for attempt 3 gives the same answer whether or not
        attempts 0-2 were computed first."""
        policy = RecoveryPolicy(seed=seed)
        direct = policy.backoff_delay(dispatch, shard, 3)
        for attempt in range(3):
            policy.backoff_delay(dispatch, shard, attempt)
        assert policy.backoff_delay(dispatch, shard, 3) == direct


class TestJobBudgetBackoff:
    """The serve layer's view of the same contract."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        job_seq=indices,
        attempt=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_recovery_policy(self, seed, job_seq, attempt):
        budget = JobBudget(backoff_seed=seed, max_retries=3)
        policy = RecoveryPolicy(max_retries=3, seed=seed)
        assert budget.backoff_delay(job_seq, attempt) == pytest.approx(
            policy.backoff_delay(job_seq, 0, attempt)
        )

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            JobBudget(wall_s=0)
        with pytest.raises(ValueError):
            JobBudget(mem_mb=0)
        with pytest.raises(ValueError):
            JobBudget(max_retries=-1)
