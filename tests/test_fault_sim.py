"""Tests for the parallel-fault sequential fault simulator.

The key oracle: per-fault single-machine simulation (whole-word
injections through the scalar `simulate_test` path) must agree with the
packed parallel-fault simulator on every detection decision.
"""

import numpy as np
import pytest

from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import (
    FaultSimulator,
    ObservationPolicy,
    ScanTest,
)
from repro.faults.model import Fault, FaultGraph, generate_faults
from repro.rpg.prng import make_source
from repro.simulation.compiled import Injections
from repro.simulation.sequential import simulate_test


def brute_force_detects(graph, test: ScanTest, fault: Fault) -> bool:
    """Oracle: simulate fault-free and single-fault machines, compare."""
    model = graph.model
    inj = Injections.build_whole_word(
        [(graph.signal_of(fault), 0, fault.value)], model.level_of_signal
    )
    good = simulate_test(model, test.si, test.vectors, schedule=test.schedule)
    bad = simulate_test(
        model, test.si, test.vectors, schedule=test.schedule, injections=inj
    )
    if good.outputs != bad.outputs:
        return True
    if good.scanout != bad.scanout:
        return True
    return good.states[good.length] != bad.states[bad.length]


def random_tests(circuit, n_tests, length, seed, with_schedule=False):
    src = make_source(seed)
    tests = []
    for _ in range(n_tests):
        si = src.bits(circuit.num_state_vars)
        vectors = [src.bits(circuit.num_inputs) for _ in range(length)]
        schedule = None
        if with_schedule:
            schedule = [(0, ())]
            for _u in range(1, length):
                if src.mod_draw(3) == 0:
                    k = src.mod_draw(circuit.num_state_vars + 1)
                    schedule.append((k, tuple(src.bits(k))))
                else:
                    schedule.append((0, ()))
        tests.append(ScanTest(si=si, vectors=vectors, schedule=schedule))
    return tests


class TestAgainstBruteForce:
    @pytest.mark.parametrize("with_schedule", [False, True])
    def test_matches_oracle_on_s27(self, s27, with_schedule):
        graph = FaultGraph(s27)
        sim = FaultSimulator(graph)
        faults = generate_faults(s27)
        tests = random_tests(s27, 3, 6, seed=99, with_schedule=with_schedule)
        packed = sim.simulate(tests, faults)
        for fault in faults:
            expect = any(brute_force_detects(graph, t, fault) for t in tests)
            assert (fault in packed) == expect, str(fault)

    def test_matches_oracle_on_tiny_synth(self, tiny_synth):
        graph = FaultGraph(tiny_synth)
        sim = FaultSimulator(graph)
        faults = collapse_faults(tiny_synth)
        tests = random_tests(tiny_synth, 2, 5, seed=3, with_schedule=True)
        packed = sim.simulate(tests, faults)
        for fault in faults:
            expect = any(brute_force_detects(graph, t, fault) for t in tests)
            assert (fault in packed) == expect, str(fault)


class TestDetectionRecords:
    def test_records_have_valid_fields(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = random_tests(s27, 4, 5, seed=1, with_schedule=True)
        for fault, rec in sim.simulate(tests, faults).items():
            assert rec.fault == fault
            assert 0 <= rec.test_index < 4
            assert 0 <= rec.time_unit <= 5
            assert rec.where in ("po", "limited-scan", "scan-out")

    def test_first_test_wins(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = random_tests(s27, 4, 5, seed=1)
        records = sim.simulate(tests, faults)
        # Re-simulating only the first test must mark its detections
        # with test_index 0 in the multi-test run too.
        first_only = sim.simulate(tests[:1], faults)
        for fault in first_only:
            assert records[fault].test_index == 0


class TestObservationPolicy:
    def test_scan_out_detection_exists(self, s27):
        """Some faults are detectable only at the final scan-out."""
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = random_tests(s27, 2, 4, seed=5)
        full = sim.simulate(tests, faults)
        no_final = sim.simulate(
            tests, faults, ObservationPolicy(final_scan_out=False)
        )
        assert set(no_final) < set(full)

    def test_limited_scan_out_adds_detections(self, medium_synth):
        sim = FaultSimulator(medium_synth)
        faults = collapse_faults(medium_synth)
        tests = random_tests(medium_synth, 6, 8, seed=7, with_schedule=True)
        full = sim.simulate(tests, faults)
        masked = sim.simulate(
            tests, faults, ObservationPolicy(limited_scan_out=False)
        )
        assert set(masked) <= set(full)

    def test_policy_restriction_never_adds(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = random_tests(s27, 3, 5, seed=11, with_schedule=True)
        full = set(sim.simulate(tests, faults))
        for policy in (
            ObservationPolicy(primary_outputs=False),
            ObservationPolicy(limited_scan_out=False),
            ObservationPolicy(final_scan_out=False),
        ):
            assert set(sim.simulate(tests, faults, policy)) <= full


class TestSemantics:
    def test_q_fault_not_visible_in_scanned_state(self):
        """A stuck-at on a flop's output net corrupts the logic but not
        the latched value: with only scan-out observation and no logic
        path back to state, it must go undetected."""
        from repro.circuit.library import GateType
        from repro.circuit.netlist import Circuit

        c = Circuit("qtest")
        c.add_input("a")
        c.add_output("y")
        c.add_flop("q", "a")  # q: latch of a
        c.add_gate("y", GateType.BUF, ["q"])
        sim = FaultSimulator(c)
        test = ScanTest(si=[0], vectors=[[1], [1]])
        q_sa0 = Fault(site="q", value=0)
        # Detected at the PO (y follows q which reads as 0)...
        assert sim.simulate([test], [q_sa0])
        # ...but NOT via scan-out alone: the latched bits are healthy.
        res = sim.simulate(
            [test],
            [q_sa0],
            ObservationPolicy(primary_outputs=False, limited_scan_out=False),
        )
        assert not res

    def test_d_fault_visible_in_scanned_state(self):
        from repro.circuit.library import GateType
        from repro.circuit.netlist import Circuit

        c = Circuit("dtest")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("d", GateType.BUF, ["a"])
        c.add_flop("q", "d")
        c.add_gate("y", GateType.BUF, ["q"])
        sim = FaultSimulator(c)
        test = ScanTest(si=[0], vectors=[[1]])
        d_sa0 = Fault(site="d", value=0)
        res = sim.simulate(
            [test],
            [d_sa0],
            ObservationPolicy(primary_outputs=False, limited_scan_out=False),
        )
        assert d_sa0 in res
        assert res[d_sa0].where == "scan-out"

    def test_fill_bits_shared_between_machines(self, s27):
        """Scan-in fill bits are identical in good/faulty machines, so a
        no-logic circuitless shift cannot create false detections."""
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        # One test whose only activity is a big shift: vectors all zero.
        test = ScanTest(
            si=[0, 0, 0],
            vectors=[[0, 0, 0, 0], [0, 0, 0, 0]],
            schedule=[(0, ()), (3, (1, 0, 1))],
        )
        res = sim.simulate([test], faults)
        for fault, rec in res.items():
            assert rec.where in ("po", "limited-scan", "scan-out")

    def test_input_validation(self, s27):
        sim = FaultSimulator(s27)
        with pytest.raises(ValueError):
            sim.simulate([ScanTest(si=[0], vectors=[[0, 0, 0, 0]])], [])
        with pytest.raises(ValueError):
            sim.simulate([ScanTest(si=[0, 0, 0], vectors=[[0]])], [])
        bad_sched = ScanTest(
            si=[0, 0, 0], vectors=[[0, 0, 0, 0]], schedule=[(0, ()), (0, ())]
        )
        with pytest.raises(ValueError):
            sim.simulate([bad_sched], [])

    def test_early_exit_when_all_detected(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)[:4]
        tests = random_tests(s27, 50, 6, seed=2)
        res = sim.simulate(tests, faults)
        assert len(res) <= 4
