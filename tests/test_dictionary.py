"""Tests for fault dictionaries and diagnosis."""

import pytest

from repro.faults.collapse import collapse_faults
from repro.faults.dictionary import (
    build_dictionary,
    diagnose,
    simulate_defect,
)
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.rpg.prng import make_source


@pytest.fixture(scope="module")
def s27_dictionary():
    from repro.bench_circuits.s27 import s27_circuit

    circuit = s27_circuit()
    faults = collapse_faults(circuit)
    src = make_source(21)
    tests = [
        ScanTest(si=src.bits(3), vectors=[src.bits(4) for _ in range(4)])
        for _ in range(12)
    ]
    return build_dictionary(circuit, tests, faults), faults


class TestDictionary:
    def test_signature_shape(self, s27_dictionary):
        dictionary, faults = s27_dictionary
        assert dictionary.num_tests == 12
        assert set(dictionary.signatures) == set(faults)
        for sig in dictionary.signatures.values():
            assert len(sig) == 12

    def test_signatures_match_fault_sim(self, s27_dictionary):
        from repro.bench_circuits.s27 import s27_circuit

        dictionary, faults = s27_dictionary
        sim = FaultSimulator(s27_circuit())
        for t, test in enumerate(dictionary.tests[:4]):
            hits = set(sim.simulate([test], faults))
            for fault in faults:
                assert dictionary.signatures[fault][t] == (fault in hits)

    def test_equivalence_groups_partition(self, s27_dictionary):
        dictionary, faults = s27_dictionary
        groups = dictionary.equivalence_groups()
        assert sum(len(g) for g in groups) == len(faults)

    def test_diagnostic_resolution_bounds(self, s27_dictionary):
        dictionary, _ = s27_dictionary
        assert 0.0 <= dictionary.diagnostic_resolution() <= 1.0

    def test_detecting_tests(self, s27_dictionary):
        dictionary, faults = s27_dictionary
        for fault in faults[:5]:
            for t in dictionary.detecting_tests(fault):
                assert dictionary.signatures[fault][t]


class TestDiagnosis:
    def test_injected_defect_is_top_ranked(self, s27_dictionary):
        """Closed loop: simulate a defect, diagnose, expect the true
        fault at rank 1 (or tied with signature-equivalent faults)."""
        dictionary, faults = s27_dictionary
        detected_faults = [
            f for f in faults if any(dictionary.signatures[f])
        ]
        hits = 0
        for true_fault in detected_faults:
            observed = simulate_defect(dictionary, true_fault)
            ranked = diagnose(dictionary, observed, top_k=len(faults))
            top_score = ranked[0].score
            top_group = [c.fault for c in ranked if c.score == top_score]
            if true_fault in top_group:
                hits += 1
        assert hits == len(detected_faults)

    def test_perfect_candidate_has_no_mispredictions(self, s27_dictionary):
        dictionary, faults = s27_dictionary
        fault = next(f for f in faults if any(dictionary.signatures[f]))
        observed = simulate_defect(dictionary, fault)
        best = diagnose(dictionary, observed, top_k=1)[0]
        assert best.mispredicted == 0
        assert best.unexplained == 0

    def test_observed_length_validated(self, s27_dictionary):
        dictionary, _ = s27_dictionary
        with pytest.raises(ValueError):
            diagnose(dictionary, [True])

    def test_all_pass_device(self, s27_dictionary):
        """A defect-free device: the best candidates predict no fails."""
        dictionary, _ = s27_dictionary
        ranked = diagnose(dictionary, [False] * dictionary.num_tests, top_k=3)
        assert ranked[0].explained == 0
