"""Tests for the design-rule & testability linter (repro.analysis)."""

import contextlib
import json
import warnings

import pytest

from repro.analysis import (
    CATALOG_SUPPRESSIONS,
    LintError,
    LintOptions,
    Severity,
    all_rules,
    get_rule,
    lint_circuit,
    lint_structural,
    structural_rules,
)
# Aliased import: the bare name matches pytest's test* collection pattern.
from repro.analysis import testability_rules as _testability_rules
from repro.bench_circuits import available_circuits, load_circuit
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, Flop
from repro.circuit.validate import find_issues
from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2


def _scoap_hard_circuit() -> Circuit:
    """Self-composed AND tree: cc1 doubles per level, so a handful of
    gates exceeds any realistic difficulty threshold."""
    c = Circuit("hard")
    for i in range(64):
        c.add_input(f"p{i}")
    c.add_gate("g1", GateType.AND, [f"p{i}" for i in range(64)])
    c.add_gate("g2", GateType.AND, ["g1", "g1"])
    c.add_gate("g3", GateType.AND, ["g2", "g2"])
    c.add_gate("g4", GateType.AND, ["g3", "g3"])
    c.add_output("g4")
    return c


class TestRegistry:
    def test_rule_ids_are_stable(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        # The documented rule set; additions are fine, renames are not.
        assert {"S001", "S002", "S003", "S004", "S005", "S006", "S007",
                "S008", "T001", "T002", "T003", "T004"} <= set(ids)

    def test_partition_by_prefix(self):
        assert all(r.rule_id.startswith("S") for r in structural_rules())
        assert all(r.rule_id.startswith("T") for r in _testability_rules())
        total = len(structural_rules()) + len(_testability_rules())
        assert total == len(all_rules())

    def test_structural_rules_are_the_error_layer(self):
        for rule in structural_rules():
            assert rule.severity in (Severity.ERROR, Severity.WARNING)
        for rule in _testability_rules():
            assert rule.severity in (Severity.WARNING, Severity.INFO)

    def test_get_rule(self):
        assert get_rule("S001").title == "combinational-loop"
        with pytest.raises(KeyError):
            get_rule("S999")


class TestStructuralRules:
    def test_clean_circuit(self, s27):
        report = lint_circuit(s27)
        assert not report.has_errors
        assert not report.warnings

    def test_self_loop_gate(self):
        c = Circuit("loopy")
        c.add_input("a")
        c.add_output("x")
        c.add_gate("x", GateType.AND, ["a", "x"])
        report = lint_circuit(c)
        assert "S004" in report.fired_rules()  # the specific diagnosis
        assert "S001" in report.fired_rules()  # ... and the general one
        assert report.has_errors

    def test_net_driven_by_gate_and_flop(self):
        # Circuit.add_* forbids this, so forge it the way a buggy
        # transform would: by direct attribute surgery.
        c = Circuit("double")
        c.add_input("a")
        c.add_output("x")
        c.add_gate("x", GateType.BUF, ["a"])
        flop = Flop(q="x", d="a")
        c._flops.append(flop)
        c._flop_by_q["x"] = flop
        report = lint_circuit(c)
        issues = report.by_rule("S003")
        assert len(issues) == 1
        assert "gate" in issues[0].message and "flop" in issues[0].message
        assert report.has_errors

    def test_zero_flop_circuit_lints(self):
        c = Circuit("comb")
        c.add_input("a")
        c.add_input("b")
        c.add_output("y")
        c.add_gate("y", GateType.AND, ["a", "b"])
        report = lint_circuit(c)
        assert not report.has_errors
        assert not report.by_rule("T003")  # no scan positions to check

    def test_undriven_nets(self):
        c = Circuit("broken")
        c.add_input("a")
        c.add_output("nowhere")
        c.add_gate("x", GateType.AND, ["a", "ghost"])
        report = lint_circuit(c)
        messages = [i.message for i in report.by_rule("S002")]
        assert any("nowhere" in m for m in messages)
        assert any("ghost" in m for m in messages)

    def test_dangling_and_dead_logic(self):
        c = Circuit("dead")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.NOT, ["a"])
        c.add_gate("feeder", GateType.BUF, ["a"])   # feeds only "sink"
        c.add_gate("sink", GateType.NOT, ["feeder"])  # drives nothing
        report = lint_circuit(c)
        assert [i.nets for i in report.by_rule("S006")] == [("sink",)]
        assert [i.nets for i in report.by_rule("S008")] == [("feeder",)]

    def test_dead_state_flop(self):
        c = Circuit("deadstate")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.NOT, ["a"])
        c.add_flop("q_unused", "a")
        report = lint_circuit(c)
        assert [i.nets for i in report.by_rule("S007")] == [("q_unused",)]
        assert not report.has_errors  # dead state is a warning, not an error

    def test_no_observable_points(self):
        c = Circuit("blind")
        c.add_input("a")
        c.add_gate("x", GateType.NOT, ["a"])
        report = lint_structural(c)
        assert "S005" in report.fired_rules()


class TestTestabilityRules:
    def test_scoap_hard_circuit_fires_t001(self):
        report = lint_circuit(_scoap_hard_circuit())
        issues = report.by_rule("T001")
        assert len(issues) == 1
        assert "difficulty >= 512" in issues[0].message
        assert not report.has_errors  # resistance is a warning

    def test_t001_threshold_is_configurable(self):
        options = LintOptions(scoap_difficulty_threshold=10**6)
        report = lint_circuit(_scoap_hard_circuit(), options)
        assert not report.by_rule("T001")

    def test_const_gate_fires_untestable_net(self):
        c = Circuit("constant")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("z", GateType.CONST0, [])
        c.add_gate("y", GateType.OR, ["a", "z"])
        report = lint_circuit(c)
        uncontrollable = report.by_rule("T002")
        assert uncontrollable and "z" in uncontrollable[0].nets

    def test_unobservable_scan_position(self):
        # The flop's state feeds a gate whose output dangles: position
        # exists in the chain but never reaches an observable point.
        c = Circuit("blindscan")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.NOT, ["a"])
        c.add_flop("q", "a")
        c.add_gate("waste", GateType.NOT, ["q"])
        report = lint_circuit(c)
        issues = report.by_rule("T003")
        assert issues and issues[0].nets == ("q",)
        assert "scan position 0" in issues[0].message

    def test_testability_skips_broken_circuits(self):
        c = Circuit("cyclic")
        c.add_input("a")
        c.add_output("x")
        c.add_gate("x", GateType.AND, ["a", "y"])
        c.add_gate("y", GateType.AND, ["a", "x"])
        report = lint_circuit(c)
        assert report.has_errors
        assert not report.by_rule("T001") and not report.by_rule("T002")

    def test_fanout_profile_info(self, s27):
        issues = lint_circuit(s27).by_rule("T004")
        assert len(issues) == 1
        assert issues[0].severity is Severity.INFO
        assert "fanout" in issues[0].message


class TestReport:
    def test_json_round_trip(self, s27):
        data = json.loads(lint_circuit(s27).to_json())
        assert data["circuit"] == "s27"
        assert data["errors"] == 0
        assert all({"rule", "severity", "message", "nets"} <= set(i)
                   for i in data["issues"])

    def test_render_contains_rule_ids(self):
        c = Circuit("broken")
        c.add_input("a")
        c.add_output("nowhere")
        text = lint_circuit(c).render()
        assert "[S002]" in text and "[error]" in text

    def test_suppression(self):
        c = Circuit("dangles")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.NOT, ["a"])
        c.add_gate("unused", GateType.BUF, ["a"])
        report = lint_circuit(c, LintOptions(suppress=("S006", "S008")))
        assert not report.by_rule("S006")
        assert report.suppressed == ("S006", "S008")

    def test_lint_error_carries_report(self):
        c = Circuit("broken")
        c.add_input("a")
        c.add_output("nowhere")
        report = lint_structural(c)
        err = LintError(report)
        assert err.report is report
        assert "nowhere" in str(err)


class TestValidateWrapper:
    def test_find_issues_equals_lint_errors(self):
        c = Circuit("broken")
        c.add_input("a")
        c.add_output("nowhere")
        c.add_gate("x", GateType.AND, ["a", "ghost"])
        assert find_issues(c) == [
            i.message for i in lint_structural(c).errors
        ]


class TestProcedure2Gate:
    def _broken(self) -> Circuit:
        c = Circuit("broken")
        c.add_input("a")
        c.add_output("nowhere")
        c.add_flop("q", "a")
        return c

    def test_error_mode_raises(self):
        cfg = BistConfig(la=2, lb=4, n=2, lint="error")
        with pytest.raises(LintError):
            run_procedure2(self._broken(), cfg, [])

    def test_warn_mode_warns(self):
        cfg = BistConfig(la=2, lb=4, n=2, lint="warn")
        with pytest.warns(RuntimeWarning, match="structural lint errors"):
            with contextlib.suppress(Exception):
                run_procedure2(self._broken(), cfg, [])

    def test_off_mode_is_silent(self):
        cfg = BistConfig(la=2, lb=4, n=2, lint="off")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with contextlib.suppress(Exception):
                run_procedure2(self._broken(), cfg, [])
        assert not [w for w in caught if w.category is RuntimeWarning]

    def test_clean_circuit_unaffected(self, s27):
        cfg = BistConfig(la=2, lb=4, n=2, lint="error")
        result = run_procedure2(s27, cfg, [])
        assert result.complete  # no targets -> trivially complete

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BistConfig(lint="loud")

    def test_with_lengths_keeps_lint(self):
        cfg = BistConfig(lint="error").with_lengths(4, 8, 16)
        assert cfg.lint == "error"


class TestRunnerPreflight:
    def test_clean_batch_summarized(self):
        from repro.experiments.runner import lint_preflight

        text = lint_preflight(["s27"])
        assert "s27" in text and "ok" in text

    def test_broken_circuit_aborts(self, monkeypatch):
        import repro.bench_circuits as bench_circuits
        from repro.experiments.runner import lint_preflight

        broken = Circuit("bad")
        broken.add_input("a")
        broken.add_output("nowhere")
        monkeypatch.setattr(
            bench_circuits, "load_circuit", lambda name: broken
        )
        with pytest.raises(LintError):
            lint_preflight(["bad"])


class TestCatalog:
    def test_small_circuits_clean_or_suppressed(self):
        for name in available_circuits(tier="small"):
            self._assert_clean(name)

    @pytest.mark.slow
    def test_all_catalog_circuits_clean_or_suppressed(self):
        for name in available_circuits():
            self._assert_clean(name)

    @staticmethod
    def _assert_clean(name: str) -> None:
        options = LintOptions(suppress=CATALOG_SUPPRESSIONS.get(name, ()))
        report = lint_circuit(load_circuit(name), options)
        assert not report.has_errors, f"{name}: {report.render()}"
        assert not report.warnings, (
            f"{name} has undocumented warnings: {report.render()}"
        )
