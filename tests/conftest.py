"""Shared fixtures for the test suite."""

from __future__ import annotations

import glob

import pytest

from repro.bench_circuits.s27 import s27_circuit
from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import FaultGraph


def _pool_segments() -> set:
    """Live shared-memory segments of the persistent worker pool."""
    return set(glob.glob("/dev/shm/rlspool_*"))


@pytest.fixture(autouse=True)
def no_leaked_pool_segments():
    """Every test must release its worker-pool shared memory.

    The persistent pool publishes session state under
    ``/dev/shm/rlspool_*``; a segment that survives a test means a
    missing ``close_pool()``/finalizer on some path (including crash
    recovery), which would leak kernel memory across Procedure 2
    sessions.  Segments that already existed before the test (another
    process, a leak under investigation) are tolerated but new ones are
    not.
    """
    before = _pool_segments()
    yield
    leaked = _pool_segments() - before
    assert not leaked, f"leaked worker-pool segments: {sorted(leaked)}"


@pytest.fixture
def s27():
    return s27_circuit()


@pytest.fixture
def s27_graph(s27):
    return FaultGraph(s27)


@pytest.fixture
def tiny_synth():
    """A small deterministic synthetic circuit (fast in every test)."""
    return synthesize(
        SyntheticSpec(name="tiny", n_pi=4, n_po=2, n_ff=3, n_gates=24, seed=11)
    )


@pytest.fixture
def medium_synth():
    """s208-shaped synthetic circuit."""
    return synthesize(
        SyntheticSpec(name="mini208", n_pi=10, n_po=1, n_ff=8, n_gates=96, seed=5)
    )


def build_mux_circuit() -> Circuit:
    """A hand-built 2:1 mux with a flop: known truth table for oracles.

    out = (a AND sel) OR (b AND NOT sel); flop captures out.
    """
    c = Circuit("mux")
    for name in ("a", "b", "sel"):
        c.add_input(name)
    c.add_output("out")
    c.add_gate("nsel", GateType.NOT, ["sel"])
    c.add_gate("t1", GateType.AND, ["a", "sel"])
    c.add_gate("t2", GateType.AND, ["b", "nsel"])
    c.add_gate("out", GateType.OR, ["t1", "t2"])
    c.add_flop("q0", "out")
    return c


@pytest.fixture
def mux_circuit():
    return build_mux_circuit()
