"""Tests for the AST determinism linter (tools/detlint.py)."""

from pathlib import Path

import pytest

from tools.detlint import is_critical_path, main, scan_file, scan_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def _scan_source(tmp_path, source, name="snippet.py", critical=False):
    directory = tmp_path / "core" if critical else tmp_path
    directory.mkdir(exist_ok=True)
    path = directory / name
    path.write_text(source)
    return scan_file(path)


class TestUnseededRng:
    def test_unseeded_random_flagged(self, tmp_path):
        findings = _scan_source(tmp_path, "import random\nr = random.Random()\n")
        assert [f.rule for f in findings] == ["DET001"]

    def test_seeded_random_ok(self, tmp_path):
        assert not _scan_source(tmp_path, "import random\nr = random.Random(7)\n")

    def test_global_random_functions_flagged(self, tmp_path):
        findings = _scan_source(
            tmp_path, "import random\nx = random.randint(0, 4)\nrandom.seed(1)\n"
        )
        assert [f.rule for f in findings] == ["DET001", "DET001"]

    def test_numpy_global_state_flagged(self, tmp_path):
        findings = _scan_source(
            tmp_path,
            "import numpy as np\nnp.random.seed(3)\nx = np.random.rand(4)\n",
        )
        assert [f.rule for f in findings] == ["DET001", "DET001"]

    def test_seeded_generator_ok(self, tmp_path):
        assert not _scan_source(
            tmp_path,
            "import numpy as np\n"
            "rng = np.random.Generator(np.random.PCG64(42))\n",
        )

    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings = _scan_source(
            tmp_path,
            "from numpy.random import default_rng\ng = default_rng()\n",
        )
        assert [f.rule for f in findings] == ["DET001"]

    def test_from_import_alias_tracked(self, tmp_path):
        findings = _scan_source(
            tmp_path, "from random import Random as R\nr = R()\n"
        )
        assert [f.rule for f in findings] == ["DET001"]


class TestWallClock:
    def test_time_time_flagged_in_critical_path(self, tmp_path):
        findings = _scan_source(
            tmp_path, "import time\nt = time.time()\n", critical=True
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_time_time_allowed_elsewhere(self, tmp_path):
        assert not _scan_source(tmp_path, "import time\nt = time.time()\n")

    def test_perf_counter_always_ok(self, tmp_path):
        assert not _scan_source(
            tmp_path, "import time\nt = time.perf_counter()\n", critical=True
        )

    def test_critical_path_detection(self):
        assert is_critical_path(Path("src/repro/core/config.py"))
        assert is_critical_path(Path("src/repro/faults/fault_sim.py"))
        assert is_critical_path(Path("src/repro/simulation/scan.py"))
        assert not is_critical_path(Path("src/repro/experiments/runner.py"))


class TestRawCpuCount:
    def test_os_cpu_count_flagged_in_critical_path(self, tmp_path):
        findings = _scan_source(
            tmp_path, "import os\nn = os.cpu_count()\n", critical=True
        )
        assert [f.rule for f in findings] == ["DET004"]
        assert "available_cpu_count" in findings[0].message

    def test_os_cpu_count_allowed_elsewhere(self, tmp_path):
        # benchmarks/ record host metadata with it; only the
        # determinism/sizing-critical packages are restricted.
        assert not _scan_source(tmp_path, "import os\nn = os.cpu_count()\n")

    def test_os_alias_tracked(self, tmp_path):
        findings = _scan_source(
            tmp_path, "import os as o\nn = o.cpu_count()\n", critical=True
        )
        assert [f.rule for f in findings] == ["DET004"]

    def test_from_import_tracked(self, tmp_path):
        findings = _scan_source(
            tmp_path,
            "from os import cpu_count\nn = cpu_count()\n",
            critical=True,
        )
        assert [f.rule for f in findings] == ["DET004"]

    def test_other_os_calls_ok(self, tmp_path):
        assert not _scan_source(
            tmp_path,
            "import os\np = os.path.join('a', 'b')\nos.getpid()\n",
            critical=True,
        )

    def test_inline_suppression(self, tmp_path):
        findings = _scan_source(
            tmp_path,
            "import os\n"
            "n = os.cpu_count()  # detlint: ignore[DET004]\n",
            critical=True,
        )
        assert not findings


class TestSetIteration:
    def test_for_over_set_flagged(self, tmp_path):
        findings = _scan_source(tmp_path, "for v in {1, 2}:\n    print(v)\n")
        assert [f.rule for f in findings] == ["DET003"]

    def test_list_of_set_flagged(self, tmp_path):
        findings = _scan_source(tmp_path, "xs = list(set([2, 1]))\n")
        assert [f.rule for f in findings] == ["DET003"]

    def test_join_of_set_flagged(self, tmp_path):
        findings = _scan_source(tmp_path, "s = ', '.join({'b', 'a'})\n")
        assert [f.rule for f in findings] == ["DET003"]

    def test_comprehension_over_set_flagged(self, tmp_path):
        findings = _scan_source(tmp_path, "xs = [v for v in {1, 2}]\n")
        assert [f.rule for f in findings] == ["DET003"]

    def test_sorted_set_ok(self, tmp_path):
        assert not _scan_source(tmp_path, "xs = sorted({2, 1})\n")

    def test_membership_and_set_building_ok(self, tmp_path):
        assert not _scan_source(
            tmp_path,
            "seen = set()\nif 3 in {1, 2, 3}:\n    seen.add(3)\n",
        )


class TestSuppression:
    def test_inline_ignore_specific_rule(self, tmp_path):
        findings = _scan_source(
            tmp_path,
            "import time\nt = time.time()  # detlint: ignore[DET002]\n",
            critical=True,
        )
        assert not findings

    def test_inline_ignore_all_rules(self, tmp_path):
        findings = _scan_source(
            tmp_path, "xs = list({1, 2})  # detlint: ignore\n"
        )
        assert not findings

    def test_ignore_for_other_rule_does_not_apply(self, tmp_path):
        findings = _scan_source(
            tmp_path,
            "import time\nt = time.time()  # detlint: ignore[DET001]\n",
            critical=True,
        )
        assert [f.rule for f in findings] == ["DET002"]


class TestCli:
    def test_exit_codes(self, tmp_path):
        bad = tmp_path / "core"
        bad.mkdir()
        (bad / "x.py").write_text("import time\nt = time.time()\n")
        assert main([str(tmp_path)]) == 1
        (bad / "x.py").write_text("import time\nt = time.perf_counter()\n")
        assert main([str(tmp_path)]) == 0

    def test_missing_path(self):
        assert main(["no/such/dir"]) == 2

    def test_syntax_error_reported(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        findings = scan_paths([tmp_path])
        assert [f.rule for f in findings] == ["DET000"]

    def test_repo_sources_are_clean(self):
        assert scan_paths([REPO_ROOT / "src", REPO_ROOT / "tools"]) == []
