"""Tests for netlist transforms (decomposition, fanout branches)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.circuit.library import GateType, eval_gate_bits
from repro.circuit.netlist import Circuit
from repro.circuit.transform import (
    decompose_to_two_input,
    insert_fanout_branches,
)
from repro.circuit.validate import validate_circuit
from repro.simulation.compiled import CompiledModel
from repro.simulation.sequential import simulate_test


def _wide_gate_circuit() -> Circuit:
    c = Circuit("wide")
    for n in ("a", "b", "c", "d"):
        c.add_input(n)
    c.add_output("y")
    c.add_output("z")
    c.add_gate("y", GateType.NAND, ["a", "b", "c", "d"])
    c.add_gate("z", GateType.XOR, ["a", "b", "c"])
    return c


class TestDecompose:
    def test_two_input_only_afterwards(self):
        dec, _ = decompose_to_two_input(_wide_gate_circuit())
        assert all(len(g.inputs) <= 2 for g in dec.iter_gates())
        validate_circuit(dec)

    def test_functionally_equivalent(self):
        orig = _wide_gate_circuit()
        dec, _ = decompose_to_two_input(orig)
        for bits in range(16):
            vec = [(bits >> i) & 1 for i in range(4)]
            a, b, c, d = vec
            expect_y = eval_gate_bits(GateType.NAND, [a, b, c, d])
            expect_z = eval_gate_bits(GateType.XOR, [a, b, c])
            model = CompiledModel(dec, decompose=False)
            trace = simulate_test(model, [], [vec])
            assert trace.outputs[0] == f"{expect_y}{expect_z}"

    def test_pin_map_is_total(self):
        orig = _wide_gate_circuit()
        dec, pin_map = decompose_to_two_input(orig)
        for gate in orig.iter_gates():
            for pin in range(len(gate.inputs)):
                new_consumer, new_pin = pin_map[(gate.output, pin)]
                new_gate = dec.gate_for(new_consumer)
                # The mapped pin must read the same source net.
                assert new_gate.inputs[new_pin] == gate.inputs[pin]

    def test_untouched_gates_map_to_themselves(self, s27):
        dec, pin_map = decompose_to_two_input(s27)
        assert dec.num_gates == s27.num_gates
        for gate in s27.iter_gates():
            for pin in range(len(gate.inputs)):
                assert pin_map[(gate.output, pin)] == (gate.output, pin)

    def test_final_stage_keeps_output_name_and_inversion(self):
        dec, _ = decompose_to_two_input(_wide_gate_circuit())
        assert dec.gate_for("y").gtype is GateType.NAND
        assert dec.gate_for("z").gtype is GateType.XOR


class TestInsertBranches:
    def test_multi_fanout_gets_buffers(self, s27):
        branched, branch_of = insert_fanout_branches(s27)
        # G11 drives G17, G10 and flop G6 -> three private branches.
        branches = {
            net for coord, net in branch_of.items() if net.startswith("G11$b")
        }
        assert len(branches) == 3
        validate_circuit(branched)

    def test_single_fanout_untouched(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("y")
        c.add_gate("t", GateType.NOT, ["a"])
        c.add_gate("y", GateType.NOT, ["t"])
        branched, branch_of = insert_fanout_branches(c)
        assert branch_of[("y", 0)] == "t"
        assert branched.num_gates == 2

    def test_po_tap_counts_as_fanout(self):
        # Net feeds a PO and one gate: the gate pin must get a branch.
        c = Circuit()
        c.add_input("a")
        c.add_output("t")
        c.add_output("y")
        c.add_gate("t", GateType.NOT, ["a"])
        c.add_gate("y", GateType.BUF, ["t"])
        _, branch_of = insert_fanout_branches(c)
        assert branch_of[("y", 0)].startswith("t$b")

    def test_behaviour_preserved(self, s27):
        branched, _ = insert_fanout_branches(s27)
        m1 = CompiledModel(s27)
        m2 = CompiledModel(branched, decompose=False)
        si = [1, 0, 1]
        vecs = [[0, 1, 1, 1], [1, 0, 0, 1], [1, 1, 1, 1]]
        t1 = simulate_test(m1, si, vecs)
        t2 = simulate_test(m2, si, vecs)
        assert t1.outputs == t2.outputs
        assert t1.states == t2.states


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_transform_pipeline_preserves_behaviour(seed):
    """Property: decompose + branch insertion never changes behaviour."""
    circuit = synthesize(
        SyntheticSpec(name="p", n_pi=5, n_po=2, n_ff=3, n_gates=30, seed=seed)
    )
    dec, _ = decompose_to_two_input(circuit)
    branched, _ = insert_fanout_branches(dec)
    m1 = CompiledModel(circuit)
    m2 = CompiledModel(branched, decompose=False)
    rng = np.random.Generator(np.random.PCG64(seed))
    si = rng.integers(0, 2, size=3).tolist()
    vecs = rng.integers(0, 2, size=(4, 5)).tolist()
    t1 = simulate_test(m1, si, vecs)
    t2 = simulate_test(m2, si, vecs)
    assert t1.outputs == t2.outputs
    assert t1.states == t2.states
