"""Unit tests for the vectorized COP testability engine.

The differential suite (test_cop_differential.py) checks agreement with
*measured* detection on whole circuits; this file pins down the engine
itself: exactness on fanout-free logic (where COP's independence
assumption holds by construction), the constant/degenerate gate cases,
compile-cache round-trips, and the determinism and fallback contracts
of the testability-guided D1 ordering.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis.cop import (
    DEFAULT_RPR_THRESHOLD,
    CopMeasures,
    analyze_circuit,
    compute_cop,
    cop_cache_key,
    fault_detection_probabilities,
    testability_d1_order as d1_order,
)
from repro.bench_circuits import load_circuit
from repro.circuit.cache import CompileCache
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault


def tree_circuit() -> Circuit:
    """Fanout-free combinational tree: COP is exact here."""
    c = Circuit("tree")
    for name in "abcd":
        c.add_input(name)
    c.add_gate("g1", GateType.AND, ["a", "b"])
    c.add_gate("g2", GateType.OR, ["c", "d"])
    c.add_gate("y", GateType.XOR, ["g1", "g2"])
    c.add_output("y")
    return c


def _eval_tree(assignment, stuck=None):
    """Evaluate the tree's nets, optionally with one stem stuck-at."""
    values = dict(assignment)

    def net(name):
        if stuck is not None and name == stuck[0]:
            return stuck[1]
        return values[name]

    values["g1"] = net("a") & net("b")
    values["g2"] = net("c") | net("d")
    values["y"] = net("g1") ^ net("g2")
    return net("y")


class TestExactOnTrees:
    def test_matches_exhaustive_enumeration(self):
        circuit = tree_circuit()
        arrays = circuit.to_arrays()
        measures = compute_cop(arrays)
        faults = [
            Fault(site, value)
            for site in ("a", "b", "c", "d", "g1", "g2", "y")
            for value in (0, 1)
        ]
        predicted = fault_detection_probabilities(arrays, measures, faults)
        for fault, p in zip(faults, predicted):
            detecting = sum(
                _eval_tree(dict(zip("abcd", bits)))
                != _eval_tree(
                    dict(zip("abcd", bits)), stuck=(fault.site, fault.value)
                )
                for bits in itertools.product((0, 1), repeat=4)
            )
            assert p == pytest.approx(detecting / 16.0), str(fault)

    def test_constant_gates(self):
        c = Circuit("consts")
        c.add_input("a")
        c.add_gate("zero", GateType.CONST0, [])
        c.add_gate("one", GateType.CONST1, [])
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.add_gate("z", GateType.OR, ["a", "zero"])
        c.add_output("y")
        c.add_output("z")
        arrays = c.to_arrays()
        measures = compute_cop(arrays)
        index = {name: i for i, name in enumerate(arrays.names)}
        assert measures.c1[index["zero"]] == 0.0
        assert measures.c1[index["one"]] == 1.0
        # AND with a constant 1 / OR with a constant 0 are transparent.
        assert measures.c1[index["y"]] == 0.5
        assert measures.c1[index["z"]] == 0.5
        # A stuck-at on the dead side of a constant is undetectable.
        p = fault_detection_probabilities(
            arrays, measures, [Fault("one", 1), Fault("zero", 0)]
        )
        assert p.tolist() == [0.0, 0.0]

    def test_probabilities_are_probabilities(self, s27):
        arrays = s27.to_arrays()
        measures = compute_cop(arrays)
        faults = collapse_faults(s27)
        p = fault_detection_probabilities(arrays, measures, faults)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)


class TestAnalyzeCircuit:
    def test_s27_report(self, s27):
        analysis = analyze_circuit(s27)
        # s27 is COP-clean: every fault comfortably random-detectable.
        assert analysis.num_rpr == 0
        assert analysis.num_untestable == 0
        assert analysis.expected_test_length() == 109
        assert len(analysis.faults) == 32

    def test_s208_finds_rpr_faults(self):
        analysis = analyze_circuit(load_circuit("s208"))
        assert analysis.num_rpr > 0
        hardest_p = analysis.rpr_faults()[0][1]
        assert hardest_p < DEFAULT_RPR_THRESHOLD
        # The benefit ranking exists and is sorted descending.
        scores = [score for _, _, score in analysis.benefit_ranking()]
        assert scores == sorted(scores, reverse=True)
        assert scores[0] > 0.0

    def test_threshold_is_respected(self, s27):
        # With an absurd threshold everything is RPR.
        analysis = analyze_circuit(s27, rpr_threshold=1.0)
        assert analysis.num_rpr == len(analysis.faults)

    def test_cache_round_trip(self, s27, tmp_path):
        cache = CompileCache(tmp_path)
        cold = analyze_circuit(s27, cache=cache)
        assert not cold.cache_hit
        warm = analyze_circuit(s27, cache=cache)
        assert warm.cache_hit
        assert cold.to_dict(top_k=32) == {
            **warm.to_dict(top_k=32), "cache_hit": False,
        }

    def test_cached_measures_survive_pickling(self, s27, tmp_path):
        cache = CompileCache(tmp_path)
        analyze_circuit(s27, cache=cache)
        from repro.robustness.checkpoint import circuit_fingerprint

        state = cache.load(cop_cache_key(circuit_fingerprint(s27)))
        assert state is not None
        measures = CopMeasures.from_state(state)
        fresh = compute_cop(s27.to_arrays())
        np.testing.assert_array_equal(measures.c1, fresh.c1)
        np.testing.assert_array_equal(measures.obs, fresh.obs)


class TestTestabilityD1Order:
    D1S = (1, 2, 4, 8)

    def test_is_a_permutation_and_deterministic(self):
        circuit = load_circuit("s208")
        first = d1_order(circuit, self.D1S)
        second = d1_order(circuit, self.D1S)
        assert first == second
        assert sorted(first) == sorted(self.D1S)

    def test_is_a_rotation_of_increasing_order(self):
        # The heuristic keeps the paper's increasing walk (Table 7) and
        # only picks the starting point; any start must yield a rotation.
        circuit = load_circuit("s208")
        order = d1_order(circuit, self.D1S)
        ordered = sorted(self.D1S)
        start = ordered.index(order[0])
        assert order == tuple(ordered[start:] + ordered[:start])

    def test_broken_circuit_falls_back_to_config_order(self):
        c = Circuit("broken")
        c.add_input("a")
        c.add_gate("y", GateType.AND, ["a", "ghost"])  # undriven input
        c.add_output("y")
        assert d1_order(c, self.D1S) == self.D1S

    def test_no_flops_falls_back(self, s27):
        comb = tree_circuit()
        assert d1_order(comb, self.D1S) == self.D1S


@pytest.mark.slow
class TestLargeCircuitBudget:
    def test_s38584_analysis_under_ten_seconds(self):
        import time

        circuit = load_circuit("s38584")
        t0 = time.perf_counter()
        analysis = analyze_circuit(circuit)
        elapsed = time.perf_counter() - t0
        assert elapsed < 10.0, f"s38584 analysis took {elapsed:.1f}s"
        assert analysis.num_rpr > 0
        assert len(analysis.faults) == 65720
