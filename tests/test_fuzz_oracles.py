"""The metamorphic / differential oracle battery."""

import numpy as np
import pytest

from repro.bench_circuits.s27 import S27_BENCH
from repro.circuit.bench_parser import parse_bench
from repro.fuzz.oracles import (
    OracleOutcome,
    check_bench_roundtrip,
    check_cost_model,
    check_parse_contract,
    check_scan_invariants,
    check_sim_equivalence,
    check_verilog_roundtrip,
    run_oracles,
    verilog_safe,
)


def rng_for(seed):
    return np.random.Generator(np.random.PCG64(seed))


GOOD = "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nx = AND(a, b)\n"


class TestParseContract:
    def test_clean_parse(self):
        circuit, violation, codes = check_parse_contract(GOOD)
        assert circuit is not None
        assert violation is None
        assert codes == []

    def test_clean_reject(self):
        circuit, violation, codes = check_parse_contract("x = FROB(a)\n")
        assert circuit is None
        assert violation is None
        assert codes  # at least E002

    def test_reject_codes_sorted_unique(self):
        _, _, codes = check_parse_contract(
            "INPUT(a)\nINPUT(a)\nOUTPUT(x)\nx = FROB(ghost)\nx = NOT(a)\n"
        )
        assert codes == sorted(set(codes))


class TestRoundtrips:
    def test_bench_roundtrip_holds(self):
        assert check_bench_roundtrip(parse_bench(S27_BENCH)) is None

    def test_verilog_roundtrip_holds(self):
        assert check_verilog_roundtrip(parse_bench(S27_BENCH)) is None

    def test_verilog_unsafe_names_skip(self):
        c = parse_bench("INPUT(a.1)\nOUTPUT(x)\nx = NOT(a.1)\n")
        assert not verilog_safe(c)
        assert check_verilog_roundtrip(c) is None  # skip, not violation

    def test_clock_named_net_is_unsafe(self):
        c = parse_bench("INPUT(clk)\nOUTPUT(x)\nx = NOT(clk)\n")
        assert not verilog_safe(c)


class TestDifferentialSim:
    def test_s27_equivalence(self):
        assert check_sim_equivalence(parse_bench(S27_BENCH), rng_for(0)) is None

    def test_combinational_equivalence(self):
        assert check_sim_equivalence(parse_bench(GOOD), rng_for(1)) is None


class TestParameterOracles:
    @pytest.mark.parametrize("seed", range(20))
    def test_scan_invariants(self, seed):
        assert check_scan_invariants(rng_for(seed)) is None

    @pytest.mark.parametrize("seed", range(20))
    def test_cost_model(self, seed):
        assert check_cost_model(rng_for(seed)) is None


class TestBattery:
    def test_pass_disposition(self):
        outcome = run_oracles(GOOD, rng_for(0))
        assert outcome.disposition == "pass"
        assert outcome.violations == []

    def test_reject_disposition(self):
        outcome = run_oracles("x = FROB(a)\n", rng_for(0))
        assert outcome.disposition == "reject"
        assert outcome.reject_codes

    def test_outcome_add_filters_none(self):
        o = OracleOutcome()
        o.add("x", None)
        o.add("y", "boom")
        assert o.violations == [("y", "boom")]
        assert o.disposition == "violation"
