"""Regression harness for ``benchmarks/bench_pool.py``.

Runs the benchmark in ``--smoke`` mode (seconds-scale, s298), validates
the ``BENCH_pool.json`` schema, and fails if the batched evaluation
path regresses below the serial baseline recorded in the file.  The
committed full-grid ``BENCH_pool.json`` at the repository root is also
schema-checked so the tracked perf trajectory cannot silently rot.

Marked ``slow``: deselect with ``-m "not slow"`` for a fast inner loop.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_pool.py"
COMMITTED = REPO_ROOT / "BENCH_pool.json"

REQUIRED_ROW_KEYS = {
    "circuit", "mode", "n_jobs", "candidate_batch", "seconds",
    "speedup_vs_serial", "identical_to_serial", "degraded",
}


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_pool", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_pool", module)
    spec.loader.exec_module(module)
    return module


def _validate_schema(payload: dict) -> None:
    assert payload["schema"] == "bench-pool/v1"
    assert isinstance(payload["smoke"], bool)
    assert payload["host"]["cpu_count"] >= 1
    assert isinstance(payload["workloads"], dict) and payload["workloads"]
    rows = payload["results"]
    assert isinstance(rows, list) and rows
    for row in rows:
        assert REQUIRED_ROW_KEYS <= set(row), row
        assert row["mode"] in ("serial", "sharded", "pool")
        assert row["seconds"] >= 0.0
        assert row["speedup_vs_serial"] > 0.0
    serial_rows = [r for r in rows if r["mode"] == "serial"]
    assert serial_rows, "every grid must include the serial baseline"


@pytest.fixture(scope="module")
def smoke_payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_pool.json"
    module = _load_bench_module()
    rc = module.main(["--smoke", "--out", str(out)])
    assert rc == 0, "smoke benchmark reported non-identical results"
    return json.loads(out.read_text())


class TestSmokeBenchmark:
    def test_schema(self, smoke_payload):
        _validate_schema(smoke_payload)
        assert smoke_payload["smoke"] is True

    def test_everything_identical_to_serial(self, smoke_payload):
        bad = [
            r for r in smoke_payload["results"]
            if not r["identical_to_serial"]
        ]
        assert not bad, bad

    def test_batched_path_not_below_serial_baseline(self, smoke_payload):
        """The in-process batched pass must beat one-at-a-time serial."""
        rows = [
            r for r in smoke_payload["results"]
            if r["mode"] == "pool" and r["n_jobs"] == 1
        ]
        assert rows
        for row in rows:
            assert row["speedup_vs_serial"] >= 1.0, row

    def test_pool_not_below_serial_on_multicore_hosts(self, smoke_payload):
        """Process-pool dispatch at smoke scale only pays for itself
        when real cores exist; on a single-core host the row is recorded
        but not gated (the overhead measurement is the point)."""
        if (os.cpu_count() or 1) < 2:
            pytest.skip("single-core host: pool smoke rows are ungated")
        rows = [
            r for r in smoke_payload["results"]
            if r["mode"] == "pool" and r["n_jobs"] > 1
        ]
        assert rows
        for row in rows:
            assert row["speedup_vs_serial"] >= 1.0, row


class TestCommittedTrajectory:
    def test_committed_file_schema(self):
        payload = json.loads(COMMITTED.read_text())
        _validate_schema(payload)
        assert payload["smoke"] is False

    def test_committed_pool_rows_identical_and_fast(self):
        payload = json.loads(COMMITTED.read_text())
        pool_rows = [
            r for r in payload["results"] if r["mode"] == "pool"
        ]
        assert pool_rows
        assert all(r["identical_to_serial"] for r in pool_rows)
        best_at_4 = max(
            (r["speedup_vs_serial"] for r in pool_rows if r["n_jobs"] == 4),
            default=0.0,
        )
        assert best_at_4 >= 3.0, (
            "committed trajectory no longer shows the >=3x pool speedup "
            f"at n_jobs=4 (best: {best_at_4}x)"
        )
