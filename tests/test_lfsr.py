"""Tests for the LFSR and the primitive-polynomial table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rpg.lfsr import Lfsr, PRIMITIVE_TAPS, lfsr_sequence, taps_to_polynomial


class TestTable:
    def test_covers_widths_2_to_64(self):
        assert set(PRIMITIVE_TAPS) == set(range(2, 65))

    def test_taps_include_width(self):
        for width, taps in PRIMITIVE_TAPS.items():
            assert width in taps
            assert all(1 <= t <= width for t in taps)

    @pytest.mark.parametrize("width", range(2, 17))
    def test_maximal_period_small_widths(self, width):
        """Primitive taps must give period 2**n - 1 (exhaustively checked
        for n <= 16; larger widths rely on the published table)."""
        lfsr = Lfsr(width, seed=1)
        assert lfsr.period(limit=2**width) == 2**width - 1


class TestLfsr:
    def test_deterministic(self):
        a = lfsr_sequence(16, seed=0xACE1, n=100)
        b = lfsr_sequence(16, seed=0xACE1, n=100)
        assert a == b

    def test_different_seeds_differ(self):
        a = lfsr_sequence(16, seed=1, n=64)
        b = lfsr_sequence(16, seed=2, n=64)
        assert a != b

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(8, seed=0)
        lfsr = Lfsr(8, seed=1)
        with pytest.raises(ValueError):
            lfsr.reseed(0x100)  # truncates to zero in 8 bits

    def test_custom_taps_validated(self):
        with pytest.raises(ValueError):
            Lfsr(8, taps=(9, 1))
        with pytest.raises(ValueError):
            Lfsr(8, taps=(5, 1))  # missing the width tap
        Lfsr(8, taps=(8, 6, 5, 4))

    def test_unknown_width_requires_taps(self):
        with pytest.raises(ValueError):
            Lfsr(65)

    def test_word_packs_msb_first(self):
        l1 = Lfsr(16, seed=0xBEEF)
        l2 = Lfsr(16, seed=0xBEEF)
        bits = l1.bits(8)
        word = l2.word(8)
        assert word == int("".join(map(str, bits)), 2)

    def test_output_is_balanced(self):
        """A maximal LFSR over its period emits 2**(n-1) ones."""
        width = 10
        lfsr = Lfsr(width, seed=1)
        ones = sum(lfsr.bits(2**width - 1))
        assert ones == 2 ** (width - 1)

    def test_state_stays_in_range(self):
        lfsr = Lfsr(8, seed=0x5A)
        for _ in range(300):
            lfsr.step()
            assert 1 <= lfsr.state <= 0xFF

    @given(seed=st.integers(min_value=1, max_value=2**16 - 1))
    @settings(max_examples=25, deadline=None)
    def test_never_reaches_zero_state(self, seed):
        lfsr = Lfsr(16, seed=seed)
        for _ in range(200):
            lfsr.step()
            assert lfsr.state != 0


class TestPolynomial:
    def test_taps_to_polynomial(self):
        # x^4 + x^3 + 1 -> bits 4, 3, 0.
        assert taps_to_polynomial((4, 3)) == 0b11001
