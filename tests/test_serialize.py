"""Tests for JSON serialization of experiment results."""

import json

import pytest

from repro.core.config import BistConfig
from repro.core.procedure2 import run_procedure2
from repro.experiments.serialize import (
    config_from_dict,
    config_to_dict,
    fault_from_dict,
    fault_to_dict,
    load_result,
    load_reports,
    report_from_dict,
    report_to_dict,
    result_from_dict,
    result_to_dict,
    save_reports,
    save_result,
)
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator
from repro.faults.model import Fault


@pytest.fixture(scope="module")
def s27_result():
    from repro.bench_circuits.s27 import s27_circuit

    circuit = s27_circuit()
    sim = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    cfg = BistConfig(la=4, lb=8, n=4)
    return run_procedure2(circuit, cfg, faults, simulator=sim)


class TestFault:
    def test_round_trip_stem(self):
        f = Fault(site="G8", value=1)
        assert fault_from_dict(fault_to_dict(f)) == f

    def test_round_trip_branch(self):
        f = Fault(site="G8", value=0, consumer="G15", pin=1)
        assert fault_from_dict(fault_to_dict(f)) == f


class TestConfig:
    def test_round_trip(self):
        cfg = BistConfig(la=16, lb=64, n=128, d2=5, reseed_per_test=False)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_json_compatible(self):
        json.dumps(config_to_dict(BistConfig()))


class TestResult:
    def test_round_trip_preserves_metrics(self, s27_result):
        back = result_from_dict(result_to_dict(s27_result))
        assert back.circuit_name == s27_result.circuit_name
        assert back.config == s27_result.config
        assert back.ncyc0 == s27_result.ncyc0
        assert back.ncyc_total == s27_result.ncyc_total
        assert back.app == s27_result.app
        assert back.det_total == s27_result.det_total
        assert back.ls_average == s27_result.ls_average
        assert back.complete == s27_result.complete

    def test_json_serializable(self, s27_result):
        text = json.dumps(result_to_dict(s27_result))
        assert "s27" in text

    def test_file_round_trip(self, tmp_path, s27_result):
        path = tmp_path / "r.json"
        save_result(s27_result, path)
        back = load_result(path)
        assert back.det_total == s27_result.det_total

    def test_metrics_block_present(self, s27_result):
        data = result_to_dict(s27_result)
        assert data["metrics"]["fault_coverage"] == s27_result.fault_coverage


class TestReports:
    def test_report_round_trip(self, tmp_path):
        from repro.experiments.common import bist_for

        report = bist_for("s27").first_complete(max_combos=4)
        back = report_from_dict(report_to_dict(report))
        assert back.circuit_name == "s27"
        assert back.combo == report.combo
        assert back.result.det_total == report.result.det_total

        path = tmp_path / "reports.json"
        save_reports([report], path)
        loaded = load_reports(path)
        assert len(loaded) == 1
        assert loaded[0].combo.label() == report.combo.label()
