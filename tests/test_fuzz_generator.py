"""The seeded circuit generator: determinism, validity, weird shapes."""

import numpy as np
import pytest

from repro.circuit.bench_parser import BenchParseError, parse_bench
from repro.fuzz.generator import WEIRD_SHAPES, GeneratorSpace, generate_bench


def rng_for(seed):
    return np.random.Generator(np.random.PCG64(seed))


class TestDeterminism:
    def test_same_seed_same_text(self):
        space = GeneratorSpace(p_weird=0.5)
        texts = {generate_bench(rng_for(7), space) for _ in range(3)}
        assert len(texts) == 1

    def test_different_seeds_differ(self):
        space = GeneratorSpace()
        assert generate_bench(rng_for(1), space) != generate_bench(
            rng_for(2), space
        )


class TestCleanGeneration:
    def test_clean_circuits_parse(self):
        space = GeneratorSpace(p_weird=0.0)
        for seed in range(30):
            text = generate_bench(rng_for(seed), space)
            c = parse_bench(text)
            assert c.num_inputs >= 1

    def test_respects_size_bounds(self):
        space = GeneratorSpace(
            p_weird=0.0, n_pi=(3, 3), n_po=(2, 2), n_ff=(1, 1),
            n_gates=(5, 10),
        )
        for seed in range(10):
            c = parse_bench(generate_bench(rng_for(seed), space))
            assert c.num_inputs == 3
            # PO picks dedup, so n_po is an upper bound.
            assert 1 <= len(c.outputs) <= 2
            assert c.num_state_vars == 1
            assert 5 <= c.num_gates <= 10


class TestWeirdShapes:
    def test_weird_circuits_reject_cleanly(self):
        """Injected defects must trip the parser, never crash it."""
        space = GeneratorSpace(p_weird=1.0, max_weird=3)
        rejected = 0
        for seed in range(40):
            text = generate_bench(rng_for(seed), space)
            try:
                parse_bench(text)
            except BenchParseError:
                rejected += 1
        assert rejected > 20  # most weird shapes are parse-invalid

    @pytest.mark.parametrize("shape", WEIRD_SHAPES)
    def test_each_shape_generates(self, shape):
        space = GeneratorSpace(p_weird=1.0, weird_shapes=(shape,))
        text = generate_bench(rng_for(0), space)
        assert text  # produced something; parser may accept or reject
        try:
            parse_bench(text)
        except BenchParseError:
            pass  # a clean reject is a valid outcome for every shape


class TestSpaceValidation:
    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            GeneratorSpace(n_pi=(5, 2))

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            GeneratorSpace(n_ff=(-1, 3))

    def test_unknown_weird_shape_rejected(self):
        with pytest.raises(ValueError):
            GeneratorSpace(weird_shapes=("self_loop", "nonsense"))
