"""Tests for at-speed run-length analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BistConfig
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.run_lengths import (
    RunLengthStats,
    analyze_run_lengths,
    run_lengths_of_test,
)
from repro.core.test_set import generate_ts0
from repro.faults.fault_sim import ScanTest


class TestRunLengthsOfTest:
    def test_no_schedule_single_run(self):
        test = ScanTest(si=[0], vectors=[[0]] * 7)
        assert run_lengths_of_test(test) == [7]

    def test_shift_splits_runs(self):
        schedule = [(0, ()), (0, ()), (2, (0, 1)), (0, ()), (0, ())]
        test = ScanTest(si=[0, 0], vectors=[[0]] * 5, schedule=schedule)
        # Runs: u0-u1 (2), then u2-u4 (3).
        assert run_lengths_of_test(test) == [2, 3]

    def test_zero_shift_steps_do_not_split(self):
        schedule = [(0, ())] * 4
        test = ScanTest(si=[0], vectors=[[1]] * 4, schedule=schedule)
        assert run_lengths_of_test(test) == [4]

    def test_back_to_back_shifts(self):
        schedule = [(0, ()), (1, (0,)), (1, (1,)), (0, ())]
        test = ScanTest(si=[0, 0], vectors=[[0]] * 4, schedule=schedule)
        assert run_lengths_of_test(test) == [1, 1, 2]

    def test_runs_sum_to_length(self):
        schedule = [(0, ()), (1, (0,)), (0, ()), (2, (1, 0)), (0, ())]
        test = ScanTest(si=[0, 0], vectors=[[0]] * 5, schedule=schedule)
        assert sum(run_lengths_of_test(test)) == 5


class TestAnalyze:
    def test_plain_ts0(self, s27):
        cfg = BistConfig(la=4, lb=8, n=3)
        stats = analyze_run_lengths(generate_ts0(s27, cfg))
        assert stats.num_runs == 6  # one run per test
        assert stats.histogram == {4: 3, 8: 3}
        assert stats.ls_average == 0.0
        assert stats.mean == 6.0

    def test_ls_matches_paper_definition(self, s27):
        cfg = BistConfig(la=4, lb=8, n=8)
        ts0 = generate_ts0(s27, cfg)
        ts = build_limited_scan_test_set(ts0, 1, 2, cfg, 3)
        stats = analyze_run_lengths(ts)
        expect = sum(t.num_limited_scans for t in ts) / sum(
            t.length for t in ts
        )
        assert stats.ls_average == pytest.approx(expect)

    def test_mean_run_length_tracks_inverse_ls(self, s27):
        """The paper's reading: ls = 0.5 -> runs of ~2 time units."""
        cfg = BistConfig(la=8, lb=16, n=8)
        ts0 = generate_ts0(s27, cfg)
        d1_small = analyze_run_lengths(
            build_limited_scan_test_set(ts0, 1, 1, cfg, 3)
        )
        d1_large = analyze_run_lengths(
            build_limited_scan_test_set(ts0, 1, 8, cfg, 3)
        )
        assert d1_small.ls_average > d1_large.ls_average
        assert d1_small.mean < d1_large.mean

    def test_percentiles_monotone(self, s27):
        cfg = BistConfig(la=4, lb=8, n=8)
        ts0 = generate_ts0(s27, cfg)
        stats = analyze_run_lengths(
            build_limited_scan_test_set(ts0, 2, 3, cfg, 3)
        )
        assert stats.percentile(10) <= stats.percentile(50) <= stats.percentile(90)
        with pytest.raises(ValueError):
            stats.percentile(150)

    def test_empty(self):
        stats = analyze_run_lengths([])
        assert stats.mean == 0.0
        assert stats.maximum == 0
        assert stats.percentile(50) == 0

    def test_summary(self, s27):
        cfg = BistConfig(la=4, lb=8, n=2)
        stats = analyze_run_lengths(generate_ts0(s27, cfg))
        assert "at-speed runs" in stats.summary()


@settings(max_examples=30, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=20),
    shifts=st.data(),
)
def test_runs_partition_time_units(length, shifts):
    """Property: run lengths always sum to the test length."""
    schedule = [(0, ())]
    for _ in range(1, length):
        k = shifts.draw(st.integers(0, 3))
        schedule.append((k, tuple([0] * k)))
    test = ScanTest(si=[0, 0, 0], vectors=[[0]] * length, schedule=schedule)
    assert sum(run_lengths_of_test(test)) == length
