"""Admission control: strict priority, per-tenant rate limits, shedding."""

import pytest

from repro.serve.errors import (
    BAD_PRIORITY,
    QUEUE_FULL,
    RATE_LIMITED,
    ServeError,
)
from repro.serve.queue import MultiTenantQueue, TokenBucket

pytestmark = pytest.mark.serve


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [None, None, None]
        retry = bucket.try_take()
        assert retry is not None and retry > 0

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=2.0, clock=clock)
        bucket.try_take()
        bucket.try_take()
        assert bucket.try_take() is not None
        clock.advance(0.5)  # 2/s * 0.5s = one token back
        assert bucket.try_take() is None

    def test_retry_after_is_accurate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=4.0, burst=1.0, clock=clock)
        bucket.try_take()
        retry = bucket.try_take()
        assert retry == pytest.approx(0.25)

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=0.0, burst=1.0, clock=clock)
        bucket.try_take()
        assert bucket.try_take() == float("inf")


class TestPriorityScheduling:
    def test_strict_priority_order(self):
        q = MultiTenantQueue(burst=100)
        q.submit("batch-1", "t", "batch")
        q.submit("std-1", "t", "standard")
        q.submit("int-1", "t", "interactive")
        q.submit("int-2", "t", "interactive")
        popped = [q.pop() for _ in range(4)]
        assert popped == ["int-1", "int-2", "std-1", "batch-1"]

    def test_fifo_within_class(self):
        q = MultiTenantQueue(burst=100)
        for i in range(5):
            q.submit(f"job-{i}", "t", "standard")
        assert [q.pop() for _ in range(5)] == [f"job-{i}" for i in range(5)]

    def test_pop_empty_returns_none(self):
        assert MultiTenantQueue().pop() is None

    def test_unknown_priority_is_q003(self):
        q = MultiTenantQueue()
        with pytest.raises(ServeError) as exc:
            q.submit("x", "t", "urgent")
        assert exc.value.code == BAD_PRIORITY
        assert exc.value.http_status == 400
        assert q.depth() == 0


class TestShedding:
    def test_depth_bound_sheds_q001(self):
        q = MultiTenantQueue(max_depth=2, burst=100)
        q.submit("a", "t", "standard")
        q.submit("b", "t", "standard")
        with pytest.raises(ServeError) as exc:
            q.submit("c", "t", "standard")
        assert exc.value.code == QUEUE_FULL
        assert exc.value.http_status == 429
        assert q.stats()["shed_full"] == 1

    def test_rate_limit_sheds_q002_with_retry_after(self):
        clock = FakeClock()
        q = MultiTenantQueue(rate_per_s=1.0, burst=1.0, clock=clock)
        q.submit("a", "loud", "standard")
        with pytest.raises(ServeError) as exc:
            q.submit("b", "loud", "standard")
        assert exc.value.code == RATE_LIMITED
        assert exc.value.http_status == 429
        assert exc.value.detail["retry_after_s"] > 0
        assert q.stats()["shed_rate_limited"] == 1

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        q = MultiTenantQueue(rate_per_s=1.0, burst=1.0, clock=clock)
        q.submit("a", "loud", "standard")
        with pytest.raises(ServeError):
            q.submit("b", "loud", "standard")
        # A different tenant's bucket is untouched by the loud one.
        q.submit("c", "quiet", "standard")
        assert q.depth() == 2

    def test_rate_recovers_after_waiting(self):
        clock = FakeClock()
        q = MultiTenantQueue(rate_per_s=1.0, burst=1.0, clock=clock)
        q.submit("a", "t", "standard")
        with pytest.raises(ServeError):
            q.submit("b", "t", "standard")
        clock.advance(1.0)
        q.submit("b", "t", "standard")  # no raise
        assert q.depth() == 2

    def test_requeue_bypasses_rate_and_depth(self):
        clock = FakeClock()
        q = MultiTenantQueue(max_depth=1, rate_per_s=1.0, burst=1.0,
                             clock=clock)
        q.submit("a", "t", "standard")
        # Queue full AND bucket empty -- recovery still re-admits.
        q.requeue("recovered-1", "interactive")
        q.requeue("recovered-2", "standard")
        assert q.depth() == 3
        assert q.pop() == "recovered-1"  # priority still applies

    def test_determinism_with_fake_clock(self):
        """Same submissions + same clock steps = same shed pattern."""

        def run():
            clock = FakeClock()
            q = MultiTenantQueue(max_depth=3, rate_per_s=2.0, burst=2.0,
                                 clock=clock)
            outcome = []
            for i in range(6):
                try:
                    q.submit(f"j{i}", "t", "standard")
                    outcome.append("ok")
                except ServeError as exc:
                    outcome.append(exc.code)
                clock.advance(0.2)
            return outcome

        assert run() == run()


class TestStats:
    def test_stats_shape(self):
        q = MultiTenantQueue(burst=100)
        q.submit("a", "t1", "interactive")
        q.submit("b", "t2", "batch")
        stats = q.stats()
        assert stats["depth"] == 2
        assert stats["by_class"] == {
            "interactive": 1, "standard": 0, "batch": 1
        }
        assert stats["admitted"] == 2
        assert stats["tenants"] == 2
