"""Tests for structural validation and circuit statistics."""

import pytest

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.stats import circuit_stats
from repro.circuit.validate import (
    CircuitError,
    find_dangling,
    find_issues,
    validate_circuit,
)


def _broken_circuit() -> Circuit:
    c = Circuit("broken")
    c.add_input("a")
    c.add_output("nowhere")
    c.add_gate("x", GateType.AND, ["a", "ghost"])
    return c


class TestValidate:
    def test_clean_circuit_passes(self, s27):
        validate_circuit(s27)

    def test_synthetic_circuits_pass(self, tiny_synth, medium_synth):
        validate_circuit(tiny_synth)
        validate_circuit(medium_synth)

    def test_undriven_po_reported(self):
        issues = find_issues(_broken_circuit())
        assert any("nowhere" in i for i in issues)

    def test_undriven_gate_input_reported(self):
        issues = find_issues(_broken_circuit())
        assert any("ghost" in i for i in issues)

    def test_validate_raises_with_all_issues(self):
        with pytest.raises(CircuitError) as exc:
            validate_circuit(_broken_circuit())
        assert len(exc.value.issues) >= 2

    def test_no_observable_points(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.NOT, ["a"])
        issues = find_issues(c)
        assert any("observable" in i for i in issues)

    def test_undriven_flop_input(self):
        c = Circuit()
        c.add_input("a")
        c.add_flop("q", "missing")
        issues = find_issues(c)
        assert any("missing" in i for i in issues)

    def test_combinational_cycle_reported(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("x")
        c.add_gate("x", GateType.AND, ["a", "y"])
        c.add_gate("y", GateType.AND, ["a", "x"])
        issues = find_issues(c)
        assert any("cycle" in i for i in issues)

    def test_find_dangling(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.NOT, ["a"])
        c.add_gate("unused", GateType.BUF, ["a"])
        assert find_dangling(c) == ["unused"]

    def test_s27_has_no_dangling(self, s27):
        assert find_dangling(s27) == []

    def test_synthetic_dangling_fraction_small(self, medium_synth):
        dangling = find_dangling(medium_synth)
        total = len(medium_synth.signals())
        assert len(dangling) / total < 0.08


class TestStats:
    def test_s27_stats(self, s27):
        st = circuit_stats(s27)
        assert st.num_inputs == 4
        assert st.num_outputs == 1
        assert st.num_flops == 3
        assert st.num_gates == 10
        assert st.max_fanin == 2
        assert st.depth >= 4

    def test_gate_type_counts(self, s27):
        st = circuit_stats(s27)
        assert st.gate_type_counts["NOR"] == 3
        assert st.gate_type_counts["NOT"] == 2
        assert sum(st.gate_type_counts.values()) == 10

    def test_as_row_contains_name(self, s27):
        assert "s27" in circuit_stats(s27).as_row()
