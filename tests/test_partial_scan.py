"""Tests for the partial-scan extension."""

import pytest

from repro.bench_circuits import load_circuit
from repro.core.config import BistConfig
from repro.core.partial_scan import PartialScanBist, select_scan_flops
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.rpg.prng import make_source


class TestSelectScanFlops:
    def test_full_fraction(self, s27):
        assert select_scan_flops(s27, 1.0) == [0, 1, 2]

    def test_half_fraction(self):
        circuit = load_circuit("s208")  # 8 flops
        chain = select_scan_flops(circuit, 0.5)
        assert len(chain) == 4
        assert chain == sorted(set(chain))
        assert all(0 <= p < 8 for p in chain)

    def test_minimum_one(self, s27):
        assert len(select_scan_flops(s27, 0.01)) == 1

    def test_validation(self, s27):
        with pytest.raises(ValueError):
            select_scan_flops(s27, 0.0)
        with pytest.raises(ValueError):
            select_scan_flops(s27, 1.5)

    def test_deterministic(self, s27):
        assert select_scan_flops(s27, 0.67) == select_scan_flops(s27, 0.67)


class TestChainSimulator:
    def test_full_chain_equals_default(self, s27):
        faults = collapse_faults(s27)
        src = make_source(4)
        tests = [
            ScanTest(si=src.bits(3), vectors=[src.bits(4) for _ in range(4)])
            for _ in range(5)
        ]
        default = FaultSimulator(s27)
        explicit = FaultSimulator(s27, chain=[0, 1, 2])
        assert set(default.simulate(tests, faults)) == set(
            explicit.simulate(tests, faults)
        )

    def test_partial_chain_si_length(self, s27):
        sim = FaultSimulator(s27, chain=[0, 2])
        assert sim.chain_length == 2
        test = ScanTest(si=[1, 0], vectors=[[0, 0, 0, 0]])
        sim.simulate([test], collapse_faults(s27))  # does not raise

    def test_partial_detects_fewer_or_equal(self, s27):
        faults = collapse_faults(s27)
        src = make_source(9)
        full_tests = [
            ScanTest(si=src.bits(3), vectors=[src.bits(4) for _ in range(5)])
            for _ in range(8)
        ]
        # Reuse the same PI vectors; SI truncated to the chain.
        part_tests = [
            ScanTest(si=t.si[:2], vectors=t.vectors) for t in full_tests
        ]
        full = FaultSimulator(s27)
        part = FaultSimulator(s27, chain=[0, 1])
        n_full = len(full.simulate(full_tests, faults))
        n_part = len(part.simulate(part_tests, faults))
        assert n_part <= n_full

    def test_invalid_chain_rejected(self, s27):
        with pytest.raises(ValueError):
            FaultSimulator(s27, chain=[0, 0])
        with pytest.raises(ValueError):
            FaultSimulator(s27, chain=[5])


class TestPartialScanBist:
    def test_runs_and_improves_coverage(self):
        circuit = load_circuit("s208")
        faults = collapse_faults(circuit)
        chain = select_scan_flops(circuit, 0.5)
        ps = PartialScanBist(
            circuit, chain, config=BistConfig(la=4, lb=8, n=16, max_iterations=4)
        )
        res = ps.run(faults)
        # Limited scan pairs must add detections beyond TS0 when TS0 is
        # incomplete (the paper's central claim, under partial scan too).
        assert res.det_total >= res.ts0_detected
        assert res.n_sv == len(chain)

    def test_ts0_sized_to_chain(self):
        circuit = load_circuit("s208")
        chain = select_scan_flops(circuit, 0.5)
        ps = PartialScanBist(circuit, chain, config=BistConfig(la=4, lb=8, n=4))
        ts0 = ps.generate_ts0()
        assert all(len(t.si) == len(chain) for t in ts0)

    def test_d2_respects_chain_length(self):
        circuit = load_circuit("s208")
        chain = select_scan_flops(circuit, 0.5)
        ps = PartialScanBist(circuit, chain, config=BistConfig(la=4, lb=8, n=4))
        res = ps.run(collapse_faults(circuit)[:20])
        assert res.config.effective_d2(len(chain)) == len(chain) + 1
