"""Regression harness for ``benchmarks/bench_scale.py``.

Runs the benchmark in ``--smoke`` mode, validates the
``BENCH_scale.json`` schema, and gates the compile-cache contract: warm
compiles must hit the cache, be no slower than cold compiles, and
produce byte-identical simulation; consecutive Procedure 2 runs in one
process must not grow peak memory.  The committed full-set
``BENCH_scale.json`` at the repository root is also schema-checked.

Marked ``slow``: deselect with ``-m "not slow"`` for a fast inner loop.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_scale.py"
COMMITTED = REPO_ROOT / "BENCH_scale.json"

REQUIRED_COMPILE_KEYS = {
    "circuit", "gates", "load_seconds", "compile_cold_seconds",
    "compile_warm_seconds", "warm_hit", "identical_cold_vs_warm",
    "maxrss_mb",
}
REQUIRED_PROC_KEYS = {
    "circuit", "variant", "n_jobs", "cache_hit", "compile_seconds",
    "run_seconds", "fault_coverage", "identical_to_serial", "maxrss_mb",
}


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_scale", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_scale", module)
    spec.loader.exec_module(module)
    return module


def _validate_schema(payload: dict) -> None:
    assert payload["schema"] == "bench-scale/v1"
    assert isinstance(payload["smoke"], bool)
    assert payload["host"]["cpu_count"] >= 1
    assert payload["compile"], "compile rows missing"
    for row in payload["compile"]:
        assert REQUIRED_COMPILE_KEYS <= set(row), row
        assert row["warm_hit"] is True
        assert row["identical_cold_vs_warm"] is True
        assert row["compile_warm_seconds"] <= row["compile_cold_seconds"]
    proc = payload["procedure2"]
    assert [r["variant"] for r in proc] == [
        "serial-cold", "serial-warm", "pool-warm"
    ]
    for row in proc:
        assert REQUIRED_PROC_KEYS <= set(row), row
        assert row["identical_to_serial"] is True
        assert 0.0 < row["fault_coverage"] <= 1.0
    assert proc[0]["cache_hit"] is False
    assert proc[1]["cache_hit"] is True


@pytest.fixture(scope="module")
def smoke_payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_scale.json"
    module = _load_bench_module()
    rc = module.main(["--smoke", "--out", str(out)])
    assert rc == 0, "smoke benchmark failed the identity/cache-hit contract"
    return json.loads(out.read_text())


class TestSmokeBenchmark:
    def test_schema(self, smoke_payload):
        _validate_schema(smoke_payload)
        assert smoke_payload["smoke"] is True

    def test_consecutive_runs_do_not_grow_memory(self, smoke_payload):
        """The second serial run reuses the warmed process: if peak RSS
        grows more than noise, per-run state (an object netlist, a pool
        segment) is leaking."""
        cold, warm, _ = smoke_payload["procedure2"]
        assert warm["maxrss_mb"] <= cold["maxrss_mb"] * 1.10, (cold, warm)


class TestCommittedTrajectory:
    def test_committed_file_schema(self):
        payload = json.loads(COMMITTED.read_text())
        _validate_schema(payload)
        assert payload["smoke"] is False

    def test_committed_covers_full_large_tier(self):
        payload = json.loads(COMMITTED.read_text())
        names = {r["circuit"] for r in payload["compile"]}
        assert {"s9234", "s13207", "s15850", "s38417", "s38584"} <= names

    def test_committed_cache_speedup(self):
        """Warm compiles must stay several-fold faster than cold ones;
        this is the whole value of the compile cache."""
        payload = json.loads(COMMITTED.read_text())
        for row in payload["compile"]:
            speedup = row["compile_cold_seconds"] / max(
                row["compile_warm_seconds"], 1e-3
            )
            assert speedup >= 2.0, row
