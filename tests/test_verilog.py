"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.bench_circuits.s27 import s27_circuit
from repro.circuit.library import GateType
from repro.circuit.verilog import (
    VerilogParseError,
    parse_verilog,
    write_verilog,
)

SIMPLE = """
// a comment
module demo (a, b, y, clk);
  input a, b, clk;
  output y;
  wire t, q;   /* block
                  comment */
  nand U1 (t, a, b);
  dff  FF (q, t, clk);
  buf  U2 (y, q);
endmodule
"""


class TestParse:
    def test_simple_module(self):
        c = parse_verilog(SIMPLE)
        assert c.name == "demo"
        assert c.inputs == ["a", "b"]  # clk stripped
        assert c.outputs == ["y"]
        assert c.state_vars == ["q"]
        assert c.gate_for("t").gtype is GateType.NAND

    def test_dff_without_clock_port(self):
        text = """
        module m (a, y);
          input a; output y;
          dff F (q, a);
          buf U (y, q);
        endmodule
        """
        c = parse_verilog(text)
        assert c.state_vars == ["q"]

    def test_constant_assigns(self):
        text = """
        module m (a, y);
          input a; output y;
          assign k = 1'b1;
          and U (y, a, k);
        endmodule
        """
        c = parse_verilog(text)
        assert c.gate_for("k").gtype is GateType.CONST1

    def test_errors(self):
        with pytest.raises(VerilogParseError, match="no module"):
            parse_verilog("wire x;")
        with pytest.raises(VerilogParseError, match="unknown primitive"):
            parse_verilog("module m (a); input a; frobnicate U (a, a); endmodule")
        with pytest.raises(VerilogParseError, match="unrecognized"):
            parse_verilog("module m (a); input a; always @(posedge clk) q <= a; endmodule")
        with pytest.raises(VerilogParseError, match="dff"):
            parse_verilog("module m (a); input a; dff F (q); endmodule")


class TestRoundTrip:
    def test_s27_round_trip(self):
        original = s27_circuit()
        text = write_verilog(original)
        back = parse_verilog(text)
        assert back.inputs == original.inputs
        assert back.outputs == original.outputs
        assert back.state_vars == original.state_vars
        assert {g.output: (g.gtype, g.inputs) for g in back.iter_gates()} == {
            g.output: (g.gtype, g.inputs) for g in original.iter_gates()
        }

    def test_round_trip_behaviour(self, medium_synth):
        from repro.circuit.transform import decompose_to_two_input
        from repro.simulation.compiled import CompiledModel
        from repro.simulation.sequential import simulate_test
        from repro.rpg.prng import make_source

        back = parse_verilog(write_verilog(medium_synth))
        m1 = CompiledModel(medium_synth)
        m2 = CompiledModel(back)
        src = make_source(1)
        si = src.bits(medium_synth.num_state_vars)
        vecs = [src.bits(medium_synth.num_inputs) for _ in range(4)]
        assert simulate_test(m1, si, vecs).outputs == simulate_test(
            m2, si, vecs
        ).outputs

    def test_combinational_circuit_has_no_clock(self):
        from repro.circuit.netlist import Circuit

        c = Circuit("comb")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.NOT, ["a"])
        text = write_verilog(c)
        assert "clk" not in text
        back = parse_verilog(text)
        assert back.num_state_vars == 0

    def test_const_round_trip(self):
        from repro.circuit.netlist import Circuit

        c = Circuit("k")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("k0", GateType.CONST0, [])
        c.add_gate("y", GateType.OR, ["a", "k0"])
        back = parse_verilog(write_verilog(c))
        assert back.gate_for("k0").gtype is GateType.CONST0
