"""Tests for the multiple-scan-chain model."""

import numpy as np
import pytest

from repro.simulation.multichain import (
    MultiChainConfig,
    balanced_chains,
    chain_tails,
    multi_shift,
)
from repro.simulation.scan import full_scan_state, state_to_string, word_to_bit


class TestConfig:
    def test_balanced_partition(self):
        cfg = balanced_chains(21, max_length=10)
        assert cfg.num_chains == 3
        assert sorted(len(c) for c in cfg.chains) == [7, 7, 7]
        assert cfg.scanned_positions == list(range(21))

    def test_exact_multiple(self):
        cfg = balanced_chains(20, max_length=10)
        assert cfg.num_chains == 2
        assert cfg.max_length == 10

    def test_single_chain_when_small(self):
        cfg = balanced_chains(4, max_length=10)
        assert cfg.num_chains == 1

    def test_scan_cycles_cap(self):
        cfg = balanced_chains(21, max_length=10)
        assert cfg.scan_cycles(100) == cfg.max_length
        assert cfg.scan_cycles(3) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiChainConfig(chains=((0, 1), (1, 2)))
        with pytest.raises(ValueError):
            MultiChainConfig(chains=((),))
        with pytest.raises(ValueError):
            balanced_chains(5, max_length=0)

    def test_empty_circuit(self):
        assert balanced_chains(0).num_chains == 0


class TestMultiShift:
    def test_parallel_shift(self):
        # Two chains of 2: state 10|01, shift 1 with fills (0, 1).
        cfg = MultiChainConfig(chains=((0, 1), (2, 3)))
        state = full_scan_state(4, [1, 0, 0, 1], 1)
        new, outs = multi_shift(state, cfg, 1, [(0,), (1,)])
        assert state_to_string(new) == "0110"
        assert [word_to_bit(w) for w in outs[0][:, 0]] == [0]
        assert [word_to_bit(w) for w in outs[1][:, 0]] == [1]

    def test_matches_single_chain_semantics(self):
        """One chain covering everything == limited_shift."""
        from repro.simulation.scan import limited_shift

        cfg = MultiChainConfig(chains=(tuple(range(5)),))
        state = full_scan_state(5, [1, 0, 1, 1, 0], 1)
        new_m, outs_m = multi_shift(state, cfg, 2, [(1, 0)])
        new_s, outs_s = limited_shift(state, 2, [1, 0])
        assert state_to_string(new_m) == state_to_string(new_s)
        assert [word_to_bit(w) for w in outs_m[0][:, 0]] == [
            word_to_bit(w) for w in outs_s[:, 0]
        ]

    def test_overlong_shift_flushes_chain(self):
        cfg = MultiChainConfig(chains=((0, 1),))
        state = full_scan_state(2, [1, 1], 1)
        new, outs = multi_shift(state, cfg, 3, [(0, 0, 0)])
        assert state_to_string(new) == "00"
        # Bits out: original right, original left, then a fill bit.
        assert [word_to_bit(w) for w in outs[0][:, 0]] == [1, 1, 0]

    def test_fill_validation(self):
        cfg = MultiChainConfig(chains=((0, 1), (2,)))
        state = full_scan_state(3, [0, 0, 0], 1)
        with pytest.raises(ValueError):
            multi_shift(state, cfg, 1, [(0,)])  # one fill list missing
        with pytest.raises(ValueError):
            multi_shift(state, cfg, 2, [(0,), (0, 0)])  # wrong length


class TestChainTails:
    def test_tail_rows(self):
        cfg = MultiChainConfig(chains=((0, 1), (2, 3, 4)))
        state = full_scan_state(5, [0, 1, 0, 0, 1], 1)
        tails = chain_tails(state, cfg)
        assert [word_to_bit(w) for w in tails[:, 0]] == [1, 1]
