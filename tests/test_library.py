"""Unit and property tests for the gate library."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.circuit.library import (
    ALL_ONES,
    BENCH_NAMES,
    GateType,
    eval_gate_bits,
    eval_gate_words,
)

TWO_INPUT = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestEvalGateBits:
    @pytest.mark.parametrize(
        "gtype,a,b,expected",
        [
            (GateType.AND, 1, 1, 1),
            (GateType.AND, 1, 0, 0),
            (GateType.NAND, 1, 1, 0),
            (GateType.NAND, 0, 1, 1),
            (GateType.OR, 0, 0, 0),
            (GateType.OR, 1, 0, 1),
            (GateType.NOR, 0, 0, 1),
            (GateType.NOR, 1, 1, 0),
            (GateType.XOR, 1, 0, 1),
            (GateType.XOR, 1, 1, 0),
            (GateType.XNOR, 1, 1, 1),
            (GateType.XNOR, 0, 1, 0),
        ],
    )
    def test_two_input_truth_table(self, gtype, a, b, expected):
        assert eval_gate_bits(gtype, [a, b]) == expected

    def test_not_and_buf(self):
        assert eval_gate_bits(GateType.NOT, [0]) == 1
        assert eval_gate_bits(GateType.NOT, [1]) == 0
        assert eval_gate_bits(GateType.BUF, [0]) == 0
        assert eval_gate_bits(GateType.BUF, [1]) == 1

    def test_constants(self):
        assert eval_gate_bits(GateType.CONST0, []) == 0
        assert eval_gate_bits(GateType.CONST1, []) == 1

    def test_wide_gates(self):
        assert eval_gate_bits(GateType.AND, [1, 1, 1, 1]) == 1
        assert eval_gate_bits(GateType.AND, [1, 1, 0, 1]) == 0
        assert eval_gate_bits(GateType.NOR, [0, 0, 0]) == 1
        assert eval_gate_bits(GateType.XOR, [1, 1, 1]) == 1

    def test_arity_violations(self):
        with pytest.raises(ValueError):
            eval_gate_bits(GateType.AND, [1])
        with pytest.raises(ValueError):
            eval_gate_bits(GateType.NOT, [1, 0])
        with pytest.raises(ValueError):
            eval_gate_bits(GateType.CONST0, [1])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            eval_gate_bits(GateType.AND, [1, 2])


class TestGateTypeProperties:
    def test_inversion_parity(self):
        assert GateType.NAND.inversion_parity == 1
        assert GateType.AND.inversion_parity == 0
        assert GateType.NOT.inversion_parity == 1
        assert GateType.XNOR.inversion_parity == 1

    def test_controlling_values(self):
        assert GateType.AND.controlling_value == 0
        assert GateType.NAND.controlling_value == 0
        assert GateType.OR.controlling_value == 1
        assert GateType.NOR.controlling_value == 1
        assert GateType.XOR.controlling_value is None
        assert GateType.NOT.controlling_value is None

    def test_base_mapping(self):
        assert GateType.NAND.base is GateType.AND
        assert GateType.NOR.base is GateType.OR
        assert GateType.XNOR.base is GateType.XOR
        assert GateType.NOT.base is GateType.BUF

    def test_bench_aliases(self):
        assert BENCH_NAMES["INV"] is GateType.NOT
        assert BENCH_NAMES["BUFF"] is GateType.BUF


class TestEvalGateWords:
    @given(
        gtype=st.sampled_from(TWO_INPUT),
        a=st.integers(min_value=0, max_value=2**64 - 1),
        b=st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_words_match_bitwise_scalar(self, gtype, a, b):
        """Word evaluation must equal per-bit scalar evaluation."""
        wa = np.array([a], dtype=np.uint64)
        wb = np.array([b], dtype=np.uint64)
        out = int(eval_gate_words(gtype, [wa, wb])[0])
        for bit in (0, 1, 31, 63):
            ba = (a >> bit) & 1
            bb = (b >> bit) & 1
            assert (out >> bit) & 1 == eval_gate_bits(gtype, [ba, bb])

    def test_not_all_ones(self):
        w = np.array([0], dtype=np.uint64)
        assert int(eval_gate_words(GateType.NOT, [w])[0]) == int(ALL_ONES)

    def test_const_words(self):
        assert int(eval_gate_words(GateType.CONST1, [])) == int(ALL_ONES)
        assert int(eval_gate_words(GateType.CONST0, [])) == 0

    def test_wide_word_gate(self):
        ws = [np.array([v], dtype=np.uint64) for v in (0b110, 0b101, 0b100)]
        assert int(eval_gate_words(GateType.AND, ws)[0]) == 0b100
        assert int(eval_gate_words(GateType.OR, ws)[0]) == 0b111

    def test_arity_check(self):
        with pytest.raises(ValueError):
            eval_gate_words(GateType.AND, [np.array([1], dtype=np.uint64)])

    @given(a=st.integers(min_value=0, max_value=2**64 - 1))
    def test_de_morgan_on_words(self, a):
        """NOT(a AND b) == (NOT a) OR (NOT b), bitwise."""
        b = 0xDEADBEEFCAFEBABE
        wa = np.array([a], dtype=np.uint64)
        wb = np.array([b], dtype=np.uint64)
        nand = eval_gate_words(GateType.NAND, [wa, wb])
        na = eval_gate_words(GateType.NOT, [wa])
        nb = eval_gate_words(GateType.NOT, [wb])
        orred = eval_gate_words(GateType.OR, [na, nb])
        assert int(nand[0]) == int(orred[0])
