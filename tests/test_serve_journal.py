"""The job journal's durability contract: replay, torn tails, healing."""

import json

import pytest

from repro.robustness.chaos import truncate_tail
from repro.serve.journal import JOB_JOURNAL_VERSION, JobJournal, JobJournalError
from repro.serve.models import DONE, QUEUED, RUNNING, JobRecord

pytestmark = pytest.mark.serve


def make_job(seq=1, **overrides):
    fields = dict(
        job_id=f"j{seq:06d}-abcdef",
        seq=seq,
        tenant="t",
        priority="standard",
        targets="collapsed",
        config={"n": 8},
        circuit_name="s27",
        circuit_fingerprint="f" * 64,
        submission_key="k" * 64,
        bench_path=f"jobs/{seq:06d}/circuit.bench",
    )
    fields.update(overrides)
    return JobRecord(**fields)


class TestBasics:
    def test_fresh_journal_has_header(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        first = json.loads(
            (tmp_path / "jobs.jsonl").read_text().splitlines()[0]
        )
        assert first["kind"] == "header"
        assert first["version"] == JOB_JOURNAL_VERSION
        assert journal.records == 1
        assert journal.jobs == {}

    def test_submit_then_replay(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        job = make_job()
        journal.record_submit(job)

        replayed = JobJournal(path)
        assert set(replayed.jobs) == {job.job_id}
        assert replayed.jobs[job.job_id].to_dict() == job.to_dict()
        assert replayed.next_seq() == 2

    def test_state_transitions_fold(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        job = make_job()
        journal.record_submit(job)
        job.state = RUNNING
        journal.record_state(job)
        job.state = DONE
        job.result_key = "k" * 64
        job.finished_at = 123.0
        journal.record_state(job)

        replayed = JobJournal(path).jobs[job.job_id]
        assert replayed.state == DONE
        assert replayed.result_key == "k" * 64
        assert replayed.finished_at == 123.0

    def test_submission_order_preserved(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        for seq in (1, 2, 3):
            journal.record_submit(make_job(seq))
        assert [j.seq for j in JobJournal(path).in_order()] == [1, 2, 3]

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JobJournalError):
            JobJournal(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text(json.dumps({"kind": "header", "version": 999}) + "\n")
        with pytest.raises(JobJournalError):
            JobJournal(path)


class TestTornTail:
    def _journal_with_two_jobs(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        journal.record_submit(make_job(1))
        journal.record_submit(make_job(2))
        return path

    @pytest.mark.parametrize("torn", [1, 7, 40])
    def test_torn_submit_is_dropped_and_healed(self, tmp_path, torn):
        path = self._journal_with_two_jobs(tmp_path)
        intact = path.stat().st_size
        truncate_tail(path, torn)

        replayed = JobJournal(path)
        assert [j.seq for j in replayed.in_order()] == [1]
        assert replayed.healed_bytes > 0
        # Healing truncated back to the last committed boundary ...
        healed_size = path.stat().st_size
        assert healed_size < intact - torn + 1
        # ... so a new append produces a parseable journal again.
        replayed.record_submit(make_job(3))
        final = JobJournal(path)
        assert [j.seq for j in final.in_order()] == [1, 3]
        assert final.healed_bytes == 0

    def test_torn_state_keeps_submit(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        job = make_job()
        journal.record_submit(job)
        job.state = RUNNING
        journal.record_state(job)
        truncate_tail(path, 5)  # tear the state record

        replayed = JobJournal(path).jobs[job.job_id]
        assert replayed.state == QUEUED  # the torn transition never happened

    def test_garbage_tail_is_healed(self, tmp_path):
        path = self._journal_with_two_jobs(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "submit", "job": {tor')  # no newline
        replayed = JobJournal(path)
        assert [j.seq for j in replayed.in_order()] == [1, 2]
        assert replayed.healed_bytes > 0

    def test_empty_tail_truncation(self, tmp_path):
        path = self._journal_with_two_jobs(tmp_path)
        size = path.stat().st_size
        truncate_tail(path, size)  # everything gone, header included
        with pytest.raises(JobJournalError):
            JobJournal(path)


class TestStats:
    def test_stats_shape(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.record_submit(make_job())
        stats = journal.stats()
        assert stats["records"] == 2
        assert stats["bytes"] > 0
        assert stats["healed_bytes"] == 0
        assert stats["lag_records"] == 0
