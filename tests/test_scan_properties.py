"""Property-style tests for the scan-chain primitives.

``limited_shift``/``full_scan_state`` are the bookkeeping under every
limited-scan schedule in the library, so their invariants are checked
against an independent scalar model (plain Python lists) across seeded
random cases:

- shifting by ``k`` matches manual bit bookkeeping (bits observed in
  shift order from the right end, fill entering on the left),
- a full-scan round trip restores/observes the scanned-in state,
- shift amount 0 is a no-op,
- two consecutive shifts compose into one shift of the combined length.
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings, strategies as st

from repro.simulation.scan import (
    full_scan_state,
    limited_shift,
    state_to_bits,
)


def scalar_shift(state, k, fill):
    """Independent scalar model: returns (new_state, out_bits)."""
    out = [state[len(state) - 1 - j] for j in range(k)]
    new = list(fill[::-1]) + state[: len(state) - k]
    return new, out


@st.composite
def shift_cases(draw, max_sv=12):
    n_sv = draw(st.integers(min_value=1, max_value=max_sv))
    state = draw(st.lists(st.integers(0, 1), min_size=n_sv, max_size=n_sv))
    k = draw(st.integers(min_value=0, max_value=n_sv))
    fill = draw(st.lists(st.integers(0, 1), min_size=k, max_size=k))
    return state, k, fill


@settings(max_examples=200, deadline=None)
@given(shift_cases())
def test_limited_shift_matches_scalar_model(case):
    state_bits, k, fill = case
    state = full_scan_state(len(state_bits), state_bits, n_words=1)
    new_state, out_words = limited_shift(state, k, fill)
    want_state, want_out = scalar_shift(state_bits, k, fill)
    assert state_to_bits(new_state) == want_state
    assert out_words.shape == (k, 1)
    got_out = [int(bool(out_words[j, 0] & np.uint64(1))) for j in range(k)]
    assert got_out == want_out


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=12))
def test_full_scan_round_trip(si):
    """A complete scan observes exactly the scanned-in state (right end
    first) and leaves the chain holding the fill."""
    n_sv = len(si)
    state = full_scan_state(n_sv, si, n_words=1)
    assert state_to_bits(state) == list(si)
    fill = [1 - b for b in si]
    new_state, out_words = limited_shift(state, n_sv, fill)
    got_out = [int(bool(out_words[j, 0] & np.uint64(1))) for j in range(n_sv)]
    assert got_out == list(si[::-1])
    assert state_to_bits(new_state) == list(fill[::-1])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=12))
def test_shift_zero_is_noop(si):
    state = full_scan_state(len(si), si, n_words=1)
    new_state, out_words = limited_shift(state, 0, [])
    assert np.array_equal(new_state, state)
    assert new_state is not state  # a copy, never an alias
    assert out_words.shape == (0, 1)


@st.composite
def composed_shifts(draw, max_sv=12):
    n_sv = draw(st.integers(min_value=2, max_value=max_sv))
    state = draw(st.lists(st.integers(0, 1), min_size=n_sv, max_size=n_sv))
    k1 = draw(st.integers(min_value=0, max_value=n_sv))
    k2 = draw(st.integers(min_value=0, max_value=n_sv - k1))
    fill = draw(
        st.lists(st.integers(0, 1), min_size=k1 + k2, max_size=k1 + k2)
    )
    return state, k1, k2, fill


@settings(max_examples=100, deadline=None)
@given(composed_shifts())
def test_consecutive_shifts_compose(case):
    """shift(k1) then shift(k2) == shift(k1 + k2) with concatenated fill,
    as long as k1 + k2 <= n_sv (no bit both enters and leaves)."""
    state_bits, k1, k2, fill = case
    state = full_scan_state(len(state_bits), state_bits, n_words=1)
    s1, out1 = limited_shift(state, k1, fill[:k1])
    s2, out2 = limited_shift(s1, k2, fill[k1:])
    s_once, out_once = limited_shift(state, k1 + k2, fill)
    assert np.array_equal(s2, s_once)
    assert np.array_equal(np.concatenate([out1, out2]), out_once)


def test_limited_shift_validates():
    state = full_scan_state(4, [0, 1, 0, 1], n_words=1)
    with pytest.raises(ValueError):
        limited_shift(state, 5, [0] * 5)
    with pytest.raises(ValueError):
        limited_shift(state, -1, [])
    with pytest.raises(ValueError):
        limited_shift(state, 2, [0])  # wrong fill length
