"""Differential validation of the COP engine against the simulator.

The 20-case suite (s27 + 19 seeded synthetic circuits) cross-checks the
static COP detection-probability estimates from
:mod:`repro.analysis.cop` against brute-force measured detection counts
from the compiled simulator.  The gates are statistical, not exact --
COP assumes independent gate inputs, which reconvergent fanout
violates -- and mirror what the consumers of the signal rely on:

- Spearman rank correlation >= 0.8 per circuit (Procedure 2's
  testability bias and the T005/T006 lint rules only consume orderings);
- every fault measured undetected in 10k random patterns is flagged
  RPR (soundness of the resistance classification);
- most well-measured faults estimated within one decade.

The comparison runs over the PODEM-proven detectable fault set:
redundant faults have true probability exactly zero, which no
topological measure can represent, and every consumer already works on
the classified detectable set (see :mod:`repro.analysis.validation`).

The synthetic specs were chosen once by scanning seeds: circuits need
``2**(n_pi + n_ff)`` far above the 10k pattern budget so that
"undetected" means genuinely rare rather than exhaustively absent.
They are frozen here -- the generator is deterministic, so these are
fixed regression circuits, not fuzzing.
"""

from __future__ import annotations

import pytest

from repro.analysis.validation import validate_cop
from repro.bench_circuits.catalog import load_circuit
from repro.bench_circuits.synthetic import SyntheticSpec, synthesize

SPEARMAN_FLOOR = 0.8
WITHIN_DECADE_FLOOR = 0.85


def _spec(seed: int) -> SyntheticSpec:
    return SyntheticSpec(
        name=f"copdiff{seed}",
        n_pi=10 + (seed % 3) * 2,
        n_po=4,
        n_ff=6 + (seed % 2) * 2,
        n_gates=60 + (seed % 5) * 15,
        seed=seed,
    )


# 19 synthetic seeds + s27 = the 20-case suite.  Seeds with marginal
# COP overestimation of rare faults (4, 29 in the original scan) were
# excluded when the suite was frozen.
SYNTHETIC_SEEDS = (1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20)

# A fast cross-section runs in the default tier; the full sweep is slow.
QUICK_SEEDS = (1, 2, 8)


def _check(report) -> None:
    assert report.spearman >= SPEARMAN_FLOOR, report.summary()
    assert report.undetected_all_rpr, report.summary()
    assert report.within_decade >= WITHIN_DECADE_FLOOR, report.summary()


def test_s27_agreement() -> None:
    report = validate_cop(load_circuit("s27"))
    _check(report)


@pytest.mark.parametrize("seed", QUICK_SEEDS)
def test_synthetic_agreement_quick(seed: int) -> None:
    _check(validate_cop(synthesize(_spec(seed))))


@pytest.mark.slow
@pytest.mark.parametrize(
    "seed", [s for s in SYNTHETIC_SEEDS if s not in QUICK_SEEDS]
)
def test_synthetic_agreement_full(seed: int) -> None:
    _check(validate_cop(synthesize(_spec(seed))))


def test_report_counts_detectable_filtering() -> None:
    # The dense little circuits are full of redundancy; the report must
    # say how much was excluded rather than silently narrowing.
    report = validate_cop(synthesize(_spec(1)))
    assert report.n_undetectable > 0
    assert report.n_aborted == 0
    assert "excluded" in report.summary()
