"""End-to-end integration tests asserting the paper's qualitative claims.

These are the 'shape' checks from DESIGN.md section 5: the exact numbers
depend on the synthetic netlists, but the relationships the paper reports
must hold.
"""

import dataclasses

import pytest

pytestmark = pytest.mark.slow

from repro.core.baselines import ts0_only
from repro.core.config import BistConfig
from repro.core.cost import ncyc0
from repro.experiments.common import bist_for


@pytest.fixture(scope="module")
def s208():
    return bist_for("s208")


class TestPaperClaims:
    def test_limited_scan_lifts_incomplete_ts0_to_complete(self, s208):
        """The central claim: TS0 alone is incomplete on random-pattern-
        resistant circuits; adding randomly-inserted limited scan
        operations reaches 100% of detectable faults."""
        res = s208.run(8, 16, 64)
        assert res.ts0_detected < res.num_targets  # RP-resistance exists
        assert res.complete
        assert res.app >= 1

    def test_cycles_increase_with_coverage(self, s208):
        res = s208.run(8, 16, 64)
        assert res.ncyc_total > res.ncyc0

    def test_ncyc0_monotone_in_each_parameter(self):
        """Table 3/4 claim: Ncyc0 increases with each of LA, LB, N."""
        n_sv = 8
        assert ncyc0(n_sv, 8, 16, 64) < ncyc0(n_sv, 8, 32, 64)
        assert ncyc0(n_sv, 8, 32, 64) < ncyc0(n_sv, 16, 32, 64)
        assert ncyc0(n_sv, 8, 16, 64) < ncyc0(n_sv, 8, 16, 128)

    def test_decreasing_d1_lowers_ls(self, s208):
        """Table 7 claim: trying D1 = 10..1 yields a lower average number
        of limited-scan time units than 1..10."""
        inc = s208.run(8, 16, 64)
        cfg = dataclasses.replace(
            s208.config.with_lengths(8, 16, 64),
            d1_values=tuple(range(10, 0, -1)),
        )
        dec = s208.run(config=cfg)
        if inc.pairs and dec.pairs:
            assert dec.ls_average < inc.ls_average

    def test_larger_parameters_reduce_app(self, s208):
        """Table 8 claim: growing (LA, LB, N) reduces the number of
        stored (I, D1) pairs (not necessarily strictly at every step)."""
        small = s208.run(8, 16, 64)
        large = s208.run(16, 128, 256)
        assert large.app <= small.app

    def test_ts0_only_matches_procedure2_initial(self, s208):
        cfg = s208.config.with_lengths(8, 16, 64)
        base = ts0_only(
            s208.circuit, cfg, s208.target_faults, simulator=s208.simulator
        )
        res = s208.run(8, 16, 64)
        assert base.detected == res.ts0_detected
        assert base.cycles == res.ncyc0

    def test_detections_attribute_all_targets_when_complete(self, s208):
        res = s208.run(8, 16, 64)
        assert set(res.detections) == set(s208.target_faults)

    def test_limited_scan_detections_use_all_three_mechanisms(self, s208):
        """Across the selected pairs, detections should occur at POs and
        at scan observation points -- both mechanisms of Section 2."""
        res = s208.run(8, 16, 64)
        wheres = {rec.where for rec in res.detections.values()}
        assert "po" in wheres
        assert wheres & {"limited-scan", "scan-out"}


class TestCrossCircuit:
    @pytest.mark.parametrize("name", ["s27", "b01", "s298"])
    def test_complete_coverage_reachable(self, name):
        bist = bist_for(name)
        report = bist.first_complete(max_combos=8)
        assert report.result.complete, report.result.summary()

    def test_easy_circuit_needs_no_pairs(self):
        """Some circuits (paper: s344, s510, b02, b06) are covered by
        TS0 alone -- app = 0."""
        bist = bist_for("s27")
        report = bist.first_complete(max_combos=6)
        # s27 is tiny; with any decent TS0 the pairs column is 0 or tiny.
        assert report.result.app <= 1
