"""Equivalence of the grouped (batched) fault simulator with the
per-test reference path, plus chunking behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ObservationPolicy, ScanTest
from repro.rpg.prng import make_source


def uniform_schedule_tests(circuit, n_tests, length, seed, d1=2):
    """Tests sharing one schedule (the Procedure 1 reseed-per-test shape)."""
    src = make_source(seed)
    schedule = [(0, ())]
    for _u in range(1, length):
        if src.mod_draw(d1) == 0:
            k = src.mod_draw(circuit.num_state_vars + 1)
            schedule.append((k, tuple(src.bits(k))))
        else:
            schedule.append((0, ()))
    tests = []
    for _ in range(n_tests):
        tests.append(
            ScanTest(
                si=src.bits(circuit.num_state_vars),
                vectors=[src.bits(circuit.num_inputs) for _ in range(length)],
                schedule=[(k, tuple(f)) for k, f in schedule],
            )
        )
    return tests


def mixed_tests(circuit, seed):
    """Two shapes, as in TS0 (lengths L_A and L_B)."""
    return uniform_schedule_tests(circuit, 5, 4, seed) + uniform_schedule_tests(
        circuit, 5, 7, seed + 1
    )


class TestEquivalence:
    def test_same_detection_set_s27(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 17)
        assert set(sim.simulate(tests, faults)) == set(
            sim.simulate_grouped(tests, faults)
        )

    def test_same_detection_set_medium(self, medium_synth):
        sim = FaultSimulator(medium_synth)
        faults = collapse_faults(medium_synth)
        tests = mixed_tests(medium_synth, 4)
        assert set(sim.simulate(tests, faults)) == set(
            sim.simulate_grouped(tests, faults)
        )

    def test_same_under_restricted_policies(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 23)
        for policy in (
            ObservationPolicy(primary_outputs=False),
            ObservationPolicy(limited_scan_out=False),
            ObservationPolicy(final_scan_out=False),
        ):
            assert set(sim.simulate(tests, faults, policy)) == set(
                sim.simulate_grouped(tests, faults, policy)
            )

    def test_chunking_does_not_change_results(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 5)
        full = set(sim.simulate_grouped(tests, faults, max_cols=4096))
        tiny = set(sim.simulate_grouped(tests, faults, max_cols=2))
        assert full == tiny

    def test_nonuniform_schedules_fall_back_correctly(self, s27):
        """Tests with distinct schedules form singleton batches but the
        detected set still matches the reference."""
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        src = make_source(77)
        tests = []
        for i in range(6):
            schedule = [(0, ())]
            for _u in range(1, 5):
                k = src.mod_draw(4)
                schedule.append((k, tuple(src.bits(k))))
            tests.append(
                ScanTest(
                    si=src.bits(3),
                    vectors=[src.bits(4) for _ in range(5)],
                    schedule=schedule,
                )
            )
        assert set(sim.simulate(tests, faults)) == set(
            sim.simulate_grouped(tests, faults)
        )

    def test_records_reference_real_tests(self, s27):
        sim = FaultSimulator(s27)
        faults = collapse_faults(s27)
        tests = mixed_tests(s27, 29)
        for fault, rec in sim.simulate_grouped(tests, faults).items():
            assert 0 <= rec.test_index < len(tests)
            assert rec.where in ("po", "limited-scan", "scan-out")
            assert 0 <= rec.time_unit <= tests[rec.test_index].length


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_grouped_equivalence_property(seed):
    """Property: grouped == per-test on random circuits and schedules."""
    circuit = synthesize(
        SyntheticSpec(name="g", n_pi=5, n_po=2, n_ff=4, n_gates=30, seed=seed)
    )
    sim = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    tests = uniform_schedule_tests(circuit, 6, 5, seed=seed + 1, d1=1)
    assert set(sim.simulate(tests, faults)) == set(
        sim.simulate_grouped(tests, faults)
    )
