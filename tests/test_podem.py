"""Tests for PODEM and detectability classification."""

import pytest

from repro.atpg.classify import classify_faults
from repro.atpg.podem import Podem, PodemStatus, eval3, X
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator, ScanTest
from repro.faults.model import Fault, FaultGraph


class TestEval3:
    def test_and_with_x(self):
        assert eval3(GateType.AND, [0, X]) == 0
        assert eval3(GateType.AND, [1, X]) == X
        assert eval3(GateType.AND, [1, 1]) == 1

    def test_or_with_x(self):
        assert eval3(GateType.OR, [1, X]) == 1
        assert eval3(GateType.OR, [0, X]) == X

    def test_xor_with_x(self):
        assert eval3(GateType.XOR, [1, X]) == X
        assert eval3(GateType.XNOR, [0, 0]) == 1

    def test_not_with_x(self):
        assert eval3(GateType.NOT, [X]) == X
        assert eval3(GateType.NOT, [0]) == 1

    def test_consts(self):
        assert eval3(GateType.CONST0, []) == 0
        assert eval3(GateType.CONST1, []) == 1


def redundant_circuit() -> Circuit:
    """z = OR(a, AND(a, b)) == a: the AND output s-a-0 is undetectable."""
    c = Circuit("red")
    c.add_input("a")
    c.add_input("b")
    c.add_output("z")
    c.add_gate("t", GateType.AND, ["a", "b"])
    c.add_gate("z", GateType.OR, ["a", "t"])
    return c


class TestPodem:
    def test_s27_all_collapsed_faults_detectable(self, s27_graph):
        """The real s27 has no redundant faults -- a literature fact."""
        podem = Podem(s27_graph)
        for fault in collapse_faults(s27_graph.circuit):
            res = podem.run(fault)
            assert res.status is PodemStatus.DETECTED, str(fault)

    def test_found_tests_actually_detect(self, s27_graph):
        """Soundness: every PODEM test must detect its fault when
        fault-simulated as a full-scan single-vector test."""
        podem = Podem(s27_graph)
        sim = FaultSimulator(s27_graph)
        for fault in collapse_faults(s27_graph.circuit):
            res = podem.run(fault)
            test = ScanTest(si=res.si_bits, vectors=[res.pi_bits])
            assert fault in sim.simulate([test], [fault]), str(fault)

    def test_redundant_fault_proved_undetectable(self):
        graph = FaultGraph(redundant_circuit())
        podem = Podem(graph)
        res = podem.run(Fault(site="t", value=0))
        assert res.status is PodemStatus.UNDETECTABLE

    def test_detectable_fault_in_redundant_circuit(self):
        graph = FaultGraph(redundant_circuit())
        podem = Podem(graph)
        res = podem.run(Fault(site="z", value=1))
        assert res.status is PodemStatus.DETECTED

    def test_constant_gate_faults(self):
        c = Circuit("const")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("k", GateType.CONST1, [])
        c.add_gate("y", GateType.AND, ["a", "k"])
        graph = FaultGraph(c)
        podem = Podem(graph)
        # k s-a-1 is undetectable (it IS 1); k s-a-0 is detectable.
        assert podem.run(Fault(site="k", value=1)).status is PodemStatus.UNDETECTABLE
        assert podem.run(Fault(site="k", value=0)).status is PodemStatus.DETECTED

    def test_backtrack_limit_aborts(self, medium_synth):
        graph = FaultGraph(medium_synth)
        podem = Podem(graph, backtrack_limit=0)
        statuses = set()
        for fault in collapse_faults(medium_synth)[:40]:
            statuses.add(podem.run(fault).status)
        # With zero backtracks allowed, hard faults abort.
        assert PodemStatus.DETECTED in statuses  # easy ones still work


class TestClassify:
    def test_s27_classification(self, s27):
        cls = classify_faults(s27)
        assert len(cls.detectable) == 32
        assert not cls.undetectable
        assert not cls.aborted

    def test_partition_is_disjoint_and_total(self, tiny_synth):
        faults = collapse_faults(tiny_synth)
        cls = classify_faults(tiny_synth, faults=faults)
        all_out = cls.detectable + cls.undetectable + cls.aborted
        assert sorted(map(str, all_out)) == sorted(map(str, faults))

    def test_undetectable_faults_never_detected(self, tiny_synth):
        """Soundness of redundancy proofs: massive random testing must
        not detect any fault PODEM called undetectable."""
        cls = classify_faults(tiny_synth)
        if not cls.undetectable:
            pytest.skip("this synthetic instance has no redundancy")
        from repro.rpg.prng import make_source

        sim = FaultSimulator(tiny_synth)
        src = make_source(5)
        tests = [
            ScanTest(
                si=src.bits(tiny_synth.num_state_vars),
                vectors=[
                    src.bits(tiny_synth.num_inputs) for _ in range(4)
                ],
            )
            for _ in range(200)
        ]
        hit = sim.simulate_grouped(tests, cls.undetectable)
        assert not hit

    def test_deterministic(self, tiny_synth):
        a = classify_faults(tiny_synth)
        b = classify_faults(tiny_synth)
        assert list(map(str, a.detectable)) == list(map(str, b.detectable))

    def test_zero_random_patterns(self, s27):
        cls = classify_faults(s27, random_patterns=0)
        assert len(cls.detectable) == 32

    def test_summary_format(self, s27):
        text = classify_faults(s27).summary()
        assert "32 detectable" in text
