"""Tests for SCOAP testability analysis."""

import pytest

from repro.atpg.scoap import INFINITY, compute_scoap
from repro.atpg.scoap import testability_profile as profile_of  # avoid pytest name collision
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault


def single_gate(gtype, n=2):
    c = Circuit("g")
    names = [f"i{k}" for k in range(n)]
    for name in names:
        c.add_input(name)
    c.add_output("y")
    c.add_gate("y", gtype, names)
    return c


class TestControllability:
    def test_inputs_cost_one(self, s27):
        scoap = compute_scoap(s27)
        for net in s27.inputs + s27.state_vars:
            assert scoap.cc0[net] == 1
            assert scoap.cc1[net] == 1

    def test_and_gate(self):
        scoap = compute_scoap(single_gate(GateType.AND))
        assert scoap.cc0["y"] == 2  # one input 0 + level
        assert scoap.cc1["y"] == 3  # both inputs 1 + level

    def test_nand_swaps(self):
        scoap = compute_scoap(single_gate(GateType.NAND))
        assert scoap.cc0["y"] == 3
        assert scoap.cc1["y"] == 2

    def test_or_gate(self):
        scoap = compute_scoap(single_gate(GateType.OR))
        assert scoap.cc0["y"] == 3
        assert scoap.cc1["y"] == 2

    def test_xor_gate(self):
        scoap = compute_scoap(single_gate(GateType.XOR))
        assert scoap.cc0["y"] == 3  # equal inputs (two assignments) + 1
        assert scoap.cc1["y"] == 3

    def test_wide_and_costs_grow(self):
        s2 = compute_scoap(single_gate(GateType.AND, 2))
        s4 = compute_scoap(single_gate(GateType.AND, 4))
        assert s4.cc1["y"] > s2.cc1["y"]
        assert s4.cc0["y"] >= s2.cc0["y"]

    def test_constants(self):
        c = Circuit("k")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("k1", GateType.CONST1, [])
        c.add_gate("y", GateType.AND, ["a", "k1"])
        scoap = compute_scoap(c)
        assert scoap.cc1["k1"] == 0
        assert scoap.cc0["k1"] >= INFINITY

    def test_depth_increases_cost(self):
        c = Circuit("chain")
        c.add_input("a")
        c.add_output("y")
        prev = "a"
        for i in range(5):
            c.add_gate(f"b{i}", GateType.BUF, [prev])
            prev = f"b{i}"
        c.add_gate("y", GateType.BUF, [prev])
        scoap = compute_scoap(c)
        assert scoap.cc1["y"] == 1 + 6


class TestObservability:
    def test_outputs_cost_zero(self, s27):
        scoap = compute_scoap(s27)
        assert scoap.co["G17"] == 0

    def test_flop_d_net_observable(self, s27):
        scoap = compute_scoap(s27)
        for d in s27.next_state_nets:
            assert scoap.co[d] == 0

    def test_and_side_input(self):
        scoap = compute_scoap(single_gate(GateType.AND))
        # Observing i0 requires i1 = 1 (cost 1) + depth 1.
        assert scoap.co["i0"] == 2

    def test_unobservable_net(self):
        c = Circuit("dangle")
        c.add_input("a")
        c.add_output("y")
        c.add_gate("y", GateType.BUF, ["a"])
        c.add_gate("dead", GateType.NOT, ["a"])
        scoap = compute_scoap(c)
        assert scoap.co["dead"] >= INFINITY


class TestFaultDifficulty:
    def test_difficulty_composition(self):
        scoap = compute_scoap(single_gate(GateType.AND))
        # y s-a-0: control y to 1 (3) + observe y (0).
        assert scoap.fault_difficulty(Fault(site="y", value=0)) == 3
        # i0 s-a-1: control i0 to 0 (1) + observe i0 (2).
        assert scoap.fault_difficulty(Fault(site="i0", value=1)) == 3

    def test_hardest_faults_order(self, s27):
        from repro.faults.collapse import collapse_faults

        scoap = compute_scoap(s27)
        faults = collapse_faults(s27)
        hardest = scoap.hardest_faults(faults, k=5)
        assert len(hardest) == 5
        d = [scoap.fault_difficulty(f) for f in hardest]
        assert d == sorted(d, reverse=True)

    def test_profile_keys(self, s27):
        profile = profile_of(s27)
        assert profile["num_faults"] == 32.0
        assert profile["unreachable_fraction"] == 0.0
        assert profile["p50"] <= profile["p90"] <= profile["p99"]
