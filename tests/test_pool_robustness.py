"""Chaos injection against the persistent worker pool.

The persistent pool must survive the same failure modes the legacy
sharded executor does -- worker crash, hang, corrupted payload, task
error, retry exhaustion, an unusable pool -- with shard-granular
recovery and a final result identical to the serial run.  On top of
that it owns a shared-memory segment whose lifetime must end with the
evaluator on *every* path, including SIGKILLed workers.

All tests are marked ``chaos`` (run with ``-m chaos``).
"""

from __future__ import annotations

import glob
import os
import signal

import pytest

from repro.bench_circuits.synthetic import SyntheticSpec, synthesize
from repro.core.config import BistConfig
from repro.core.limited_scan import build_limited_scan_test_set
from repro.core.test_set import generate_ts0
from repro.faults.collapse import collapse_faults
from repro.faults.fault_sim import FaultSimulator
from repro.faults.pool import CandidateEvaluator, PersistentWorkerPool
from repro.faults.sharding import RecoveryPolicy
from repro.robustness.chaos import ChaosPlan

pytestmark = pytest.mark.chaos

#: No backoff sleeps and no timeout: chaos tests should be fast.
FAST = dict(shard_timeout=None, max_retries=2, backoff_base=0.0)


@pytest.fixture(scope="module")
def rig():
    """Circuit with > 128 faults (real multi-shard dispatches)."""
    circuit = synthesize(
        SyntheticSpec(name="mini208", n_pi=10, n_po=1, n_ff=8, n_gates=96,
                      seed=5)
    )
    cfg = BistConfig(la=4, lb=8, n=4, candidate_batch=4, n_jobs=2)
    sim = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    assert len(faults) > 128  # >= 3 words: at least 3 real shards
    ts0 = generate_ts0(circuit, cfg)
    n_sv = circuit.num_state_vars
    specs = [(1, d1) for d1 in cfg.d1_values[:4]]
    serial = {}
    for spec in specs:
        tests = build_limited_scan_test_set(ts0, spec[0], spec[1], cfg, n_sv)
        serial[spec] = list(sim.simulate_grouped(tests, faults).items())
    return circuit, cfg, sim, ts0, faults, specs, serial


def make_evaluator(rig, chaos=None, recovery=None, shards=3):
    circuit, cfg, sim, ts0, faults, _specs, _serial = rig
    return CandidateEvaluator(
        sim, ts0, cfg, circuit.num_state_vars, None,
        n_jobs=2, targets=faults, circuit_name=circuit.name,
        recovery=recovery or RecoveryPolicy(**FAST),
        chaos=chaos, shards=shards,
    )


def assert_identical(rig, evaluator):
    """Evaluate all specs through ``evaluator``; compare against serial."""
    _c, _cfg, _sim, _ts0, faults, specs, serial = rig
    tables = evaluator.evaluate_specs(specs, faults)
    for spec, table in zip(specs, tables):
        assert list(table.hits_for(faults).items()) == serial[spec], (
            f"spec {spec} diverged from the serial result"
        )


class TestShardRecovery:
    def test_worker_crash_recovers(self, rig):
        with make_evaluator(rig, chaos=ChaosPlan(crash_shards=(0,))) as ev:
            assert_identical(rig, ev)
            kinds = {e.kind for e in ev.degradation.events}
            assert "crash" in kinds
            assert ev.degradation.pool_respawns >= 1
            # The retried shard succeeded in the pool; nothing went serial.
            assert all(e.action == "retry" for e in ev.degradation.events)

    def test_hung_worker_times_out_and_recovers(self, rig):
        recovery = RecoveryPolicy(
            shard_timeout=1.5, max_retries=2, backoff_base=0.0
        )
        chaos = ChaosPlan(hang_shards=(1,), hang_seconds=60.0)
        with make_evaluator(rig, chaos=chaos, recovery=recovery) as ev:
            assert_identical(rig, ev)
            assert "timeout" in {e.kind for e in ev.degradation.events}
            assert ev.degradation.pool_respawns >= 1

    def test_corrupted_payload_is_rejected_and_retried(self, rig):
        with make_evaluator(rig, chaos=ChaosPlan(corrupt_shards=(1,))) as ev:
            assert_identical(rig, ev)
            assert "invalid-result" in {e.kind for e in ev.degradation.events}

    def test_task_error_is_retried(self, rig):
        with make_evaluator(rig, chaos=ChaosPlan(error_shards=(0, 2))) as ev:
            assert_identical(rig, ev)
            assert "error" in {e.kind for e in ev.degradation.events}

    def test_retry_exhaustion_falls_back_to_serial_shard(self, rig):
        chaos = ChaosPlan(error_shards=(1,), fire_attempts=99)
        with make_evaluator(rig, chaos=chaos) as ev:
            assert_identical(rig, ev)
            assert ev.degradation.degraded
            rescued = [
                e for e in ev.degradation.events if e.action == "serial"
            ]
            assert rescued and all(e.shard == 1 for e in rescued)

    def test_pool_unavailable_rescues_everything(self, rig, monkeypatch):
        ev = make_evaluator(rig)
        monkeypatch.setattr(
            ev, "_make_pool",
            lambda: (_ for _ in ()).throw(OSError("no forks today")),
        )
        with ev:
            assert_identical(rig, ev)
            assert ev._pool_unavailable
            assert ev.degradation.degraded
            assert {e.kind for e in ev.degradation.events} == {
                "pool-unavailable"
            }
            # Later windows stay in-process: no further pool attempts,
            # results still serial-identical.
            assert_identical(rig, ev)


class TestSegmentLifecycle:
    def test_segment_named_by_fingerprint_and_released(self, rig):
        ev = make_evaluator(rig)
        assert_identical(rig, ev)
        pool = ev._pool
        assert pool is not None
        assert pool.segment_name.startswith("rlspool_")
        path = f"/dev/shm/{pool.segment_name}"
        if os.path.exists("/dev/shm"):
            assert os.path.exists(path)
        ev.close()
        if os.path.exists("/dev/shm"):
            assert not os.path.exists(path)

    def test_segment_survives_sigkilled_workers(self, rig):
        """SIGKILL on every worker: respawn works, then cleanup is exact."""
        ev = make_evaluator(rig)
        _c, _cfg, _sim, _ts0, faults, specs, _serial = rig
        assert_identical(rig, ev)
        pool = ev._pool
        procs = list(getattr(pool._executor, "_processes", {}).values())
        assert procs, "pool should have live workers after a dispatch"
        for proc in procs:
            os.kill(proc.pid, signal.SIGKILL)
        # The evaluator recovers (respawn re-attaches to the published
        # segment) and the result is still exact.
        assert_identical(rig, ev)
        assert ev.degradation.pool_respawns >= 1
        name = pool.segment_name
        ev.close()
        if os.path.exists("/dev/shm"):
            assert not glob.glob(f"/dev/shm/{name}")

    def test_kill_keeps_segment_close_unlinks(self, rig):
        ev = make_evaluator(rig)
        assert_identical(rig, ev)
        pool = ev._pool
        path = f"/dev/shm/{pool.segment_name}"
        pool.kill()
        if os.path.exists("/dev/shm"):
            assert os.path.exists(path), "kill() must keep the segment"
        assert_identical(rig, ev)  # respawned workers re-attach
        ev.close()
        if os.path.exists("/dev/shm"):
            assert not os.path.exists(path)


class TestChaosDeterminism:
    def test_chaos_run_is_reproducible(self, rig):
        chaos = ChaosPlan(corrupt_shards=(0,), error_shards=(2,))
        reports = []
        for _ in range(2):
            with make_evaluator(rig, chaos=chaos) as ev:
                assert_identical(rig, ev)
                reports.append(
                    [(e.dispatch, e.shard, e.attempt, e.kind, e.action)
                     for e in ev.degradation.events]
                )
        assert reports[0] == reports[1]
